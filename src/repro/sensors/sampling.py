"""Samplers and the sample payload codec.

Payloads are opaque to the middleware (Section 4.3); their format is an
agreement between sensors and the consumers of their streams. The format
here carries a timestamp plus one quantised reading:

```
bytes 0-7 : sample time, microseconds, big-endian
byte  8   : precision (bits per reading, 1..32)
bytes 9.. : ceil(precision / 8) bytes of quantised reading
```

Quantisation maps a reading from the stream's declared value range onto
``2**precision - 1`` levels, so the ``SET_PRECISION`` stream update
command (Section 4.2's dynamic control) trades payload bytes — and hence
transmission energy — against fidelity, measurably.

Samplers produce the physical readings. The field-driven samplers used by
the workloads package conform to the same :class:`Sampler` protocol.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol

from repro.errors import CodecError
from repro.simnet.geometry import Point


class Sampler(Protocol):
    """Produces one physical reading given time and sensor position."""

    def sample(self, time: float, position: Point) -> float:
        ...


@dataclass(frozen=True, slots=True)
class Sample:
    """A decoded sensor reading."""

    time_us: int
    value: float
    precision: int

    @property
    def time_seconds(self) -> float:
        return self.time_us / 1_000_000.0


class SampleCodec:
    """Quantising codec for one stream's payloads.

    Parameters
    ----------
    low, high:
        The declared value range; readings are clamped into it.
    """

    def __init__(self, low: float, high: float) -> None:
        if not high > low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        self._low = low
        self._high = high

    @property
    def value_range(self) -> tuple[float, float]:
        return (self._low, self._high)

    def quantisation_error(self, precision: int) -> float:
        """Worst-case absolute error introduced at ``precision`` bits."""
        self._check_precision(precision)
        levels = (1 << precision) - 1
        return (self._high - self._low) / (2 * levels)

    def payload_size(self, precision: int) -> int:
        """Encoded payload size in bytes at ``precision`` bits."""
        self._check_precision(precision)
        return 9 + (precision + 7) // 8

    def encode(self, time_us: int, value: float, precision: int) -> bytes:
        self._check_precision(precision)
        if time_us < 0 or time_us >= 1 << 64:
            raise CodecError(f"time_us {time_us} outside uint64")
        clamped = min(max(value, self._low), self._high)
        levels = (1 << precision) - 1
        quantised = round(
            (clamped - self._low) / (self._high - self._low) * levels
        )
        width = (precision + 7) // 8
        return (
            time_us.to_bytes(8, "big")
            + bytes([precision])
            + quantised.to_bytes(width, "big")
        )

    def decode(self, payload: bytes) -> Sample:
        if len(payload) < 10:
            raise CodecError(
                f"sample payload too short: {len(payload)} bytes"
            )
        time_us = int.from_bytes(payload[:8], "big")
        precision = payload[8]
        self._check_precision(precision)
        width = (precision + 7) // 8
        if len(payload) != 9 + width:
            raise CodecError(
                f"sample payload is {len(payload)} bytes; expected "
                f"{9 + width} for precision {precision}"
            )
        quantised = int.from_bytes(payload[9 : 9 + width], "big")
        levels = (1 << precision) - 1
        value = self._low + (quantised / levels) * (self._high - self._low)
        return Sample(time_us=time_us, value=value, precision=precision)

    @staticmethod
    def _check_precision(precision: int) -> None:
        if not 1 <= precision <= 32:
            raise CodecError(
                f"precision must be in [1, 32], got {precision}"
            )


# ----------------------------------------------------------------------
# Stock samplers
# ----------------------------------------------------------------------

class ConstantSampler:
    """Always the same reading — the degenerate sampler for tests."""

    def __init__(self, value: float) -> None:
        self._value = value

    def sample(self, time: float, position: Point) -> float:
        return self._value


class SineSampler:
    """A clean periodic signal, e.g. a diurnal temperature cycle."""

    def __init__(
        self,
        mean: float,
        amplitude: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._mean = mean
        self._amplitude = amplitude
        self._period = period
        self._phase = phase

    def sample(self, time: float, position: Point) -> float:
        angle = 2.0 * math.pi * (time / self._period) + self._phase
        return self._mean + self._amplitude * math.sin(angle)


class GaussianNoiseSampler:
    """A noisy signal around another sampler (sensor measurement noise)."""

    def __init__(
        self, base: Sampler, sigma: float, rng: random.Random
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._base = base
        self._sigma = sigma
        self._rng = rng

    def sample(self, time: float, position: Point) -> float:
        return self._base.sample(time, position) + self._rng.gauss(
            0.0, self._sigma
        )


class CallbackSampler:
    """Adapts any ``f(time, position) -> float`` into a sampler."""

    def __init__(self, callback: Callable[[float, Point], float]) -> None:
        self._callback = callback

    def sample(self, time: float, position: Point) -> float:
        return self._callback(time, position)
