"""Control-message handling on receive-capable sensors.

A sophisticated sensor's firmware decodes control frames heard on the
radio, decides whether they are addressed to this node, de-duplicates
them (the Message Replicator broadcasts from several transmitters and the
Actuation Service retransmits, so the same request routinely arrives more
than once), applies the configuration change, and queues an
acknowledgement to ride out on the next data message (the ``ACK`` header
field of Section 4.3).

Duplicates are acknowledged again without re-applying: the original ack
may have been lost, and re-acking is what completes the retransmission
loop.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.control import (
    ControlCodec,
    FrameKind,
    StreamUpdateRequest,
    peek_frame_kind,
)
from repro.errors import CodecError

APPLY_OK = 0
APPLY_UNSUPPORTED = 1
APPLY_BAD_PARAMS = 2

ApplyCallback = Callable[[StreamUpdateRequest], int]


@dataclass(slots=True)
class FirmwareStats:
    frames: int = 0
    not_addressed: int = 0
    duplicates: int = 0
    applied: int = 0
    rejected: int = 0
    corrupt: int = 0


class SensorFirmware:
    """The control-plane half of a receive-capable sensor node."""

    def __init__(
        self,
        sensor_id: int,
        apply_update: ApplyCallback,
        recent_capacity: int = 64,
    ) -> None:
        if recent_capacity < 1:
            raise ValueError("recent_capacity must be at least 1")
        self._sensor_id = sensor_id
        self._apply_update = apply_update
        self._codec = ControlCodec()
        self._recent: OrderedDict[int, int] = OrderedDict()
        self._recent_capacity = recent_capacity
        self._ack_queue: list[tuple[int, int]] = []
        self.stats = FirmwareStats()

    # ------------------------------------------------------------------
    def handle_frame(self, frame: bytes) -> StreamUpdateRequest | None:
        """Process one radio frame; returns the request if it was for us."""
        if peek_frame_kind(frame) is not FrameKind.CONTROL:
            return None
        self.stats.frames += 1
        try:
            request = self._codec.decode(frame)
        except CodecError:
            self.stats.corrupt += 1
            return None
        if request.target.sensor_id != self._sensor_id:
            self.stats.not_addressed += 1
            return None
        previous_status = self._recent.get(request.request_id)
        if previous_status is not None:
            # Already applied: re-queue the ack (ours may have been lost)
            # but do not re-apply the change.
            self.stats.duplicates += 1
            self._queue_ack(request.request_id, previous_status)
            return request
        status = self._apply_update(request)
        if status == APPLY_OK:
            self.stats.applied += 1
        else:
            self.stats.rejected += 1
        self._remember(request.request_id, status)
        self._queue_ack(request.request_id, status)
        return request

    def _remember(self, request_id: int, status: int) -> None:
        self._recent[request_id] = status
        while len(self._recent) > self._recent_capacity:
            self._recent.popitem(last=False)

    def _queue_ack(self, request_id: int, status: int) -> None:
        entry = (request_id, status)
        if entry not in self._ack_queue:
            self._ack_queue.append(entry)

    # ------------------------------------------------------------------
    def pending_acks(self) -> int:
        return len(self._ack_queue)

    def drain_acks(self, limit: int) -> list[tuple[int, int]]:
        """Take up to ``limit`` queued ``(request_id, status)`` acks.

        The node attaches the first to the message's ACK header field and
        the rest as REQUEST_STATUS extensions.
        """
        if limit < 0:
            raise ValueError("limit must be non-negative")
        taken = self._ack_queue[:limit]
        del self._ack_queue[:limit]
        return taken
