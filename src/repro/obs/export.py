"""Snapshot exporters: JSON documents and Prometheus text format.

Both operate on :meth:`MetricsRegistry.snapshot` output, so anything that
can produce a snapshot dict — a live registry, a file written by the
benchmark harness — can be re-rendered without the original objects.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.obs.registry import MetricsRegistry

_NAME_SANITISER = re.compile(r"[^a-zA-Z0-9_:]")


def _as_snapshot(source: MetricsRegistry | dict) -> dict:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def render_json(
    source: MetricsRegistry | dict,
    extra: dict[str, Any] | None = None,
    indent: int = 2,
) -> str:
    """The snapshot as a JSON document, optionally with run metadata."""
    snapshot = dict(_as_snapshot(source))
    if extra:
        snapshot = {**extra, **snapshot}
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def write_json(
    source: MetricsRegistry | dict,
    path: str,
    extra: dict[str, Any] | None = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_json(source, extra=extra))
        handle.write("\n")


def prometheus_name(name: str) -> str:
    """``filtering.received`` -> ``garnet_filtering_received``."""
    flat = _NAME_SANITISER.sub("_", name.replace(".", "_"))
    if not flat.startswith("garnet_"):
        flat = f"garnet_{flat}"
    return flat


def render_prometheus(source: MetricsRegistry | dict) -> str:
    """The snapshot in Prometheus text exposition format.

    Counters/gauges become single samples; histograms expand into
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``, matching the
    cumulative-bucket convention scrapers expect.
    """
    snapshot = _as_snapshot(source)
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        flat = prometheus_name(name)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_fmt(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        flat = prometheus_name(name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_fmt(value)}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        flat = prometheus_name(name)
        lines.append(f"# TYPE {flat} histogram")
        # Snapshots loaded from JSON may carry buckets in key-sorted
        # (lexical) order; the exposition format requires increasing le.
        buckets = sorted(
            data.get("buckets", {}).items(),
            key=lambda item: (
                math.inf if item[0] == "+Inf" else float(item[0])
            ),
        )
        for bound, count in buckets:
            lines.append(f'{flat}_bucket{{le="{bound}"}} {int(count)}')
        lines.append(f"{flat}_sum {_fmt(data.get('sum', 0.0))}")
        lines.append(f"{flat}_count {int(data.get('count', 0))}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if value is None:
        return "NaN"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)
