"""Lightweight span tracing and kernel probing.

Two hooks make the simulation's hot paths observable without changing
their behaviour:

- :class:`Tracer` records *spans* — named intervals of virtual time with
  attributes. :class:`~repro.simnet.fixednet.FixedNetwork` opens one span
  per ``send`` and closes it at ``_deliver``, so bus transit becomes a
  queryable latency distribution instead of folklore.
- :class:`KernelProbe` plugs into :class:`~repro.simnet.kernel.Simulator`
  (``set_probe``) and counts scheduled/executed events, queue depth and
  the scheduling delay distribution.

Both feed the same :class:`~repro.obs.registry.MetricsRegistry` as every
service's counters; span ids are sequential integers so traces are
deterministic run-to-run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.obs.registry import MetricsRegistry

#: Bucket bounds tuned to fixed-network hop latencies (sub-millisecond).
SPAN_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    1.0,
)


@dataclass(slots=True)
class Span:
    """One named interval of virtual time."""

    span_id: int
    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    @property
    def finished(self) -> bool:
        return self.end is not None


class Tracer:
    """Opens and finishes spans against a registry's virtual clock.

    Finished spans are kept in a bounded ring buffer (``max_spans``); the
    aggregate picture — span counts per name and the duration histogram —
    lives in the registry and is never truncated.
    """

    def __init__(
        self, metrics: MetricsRegistry | None = None, max_spans: int = 4096
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be at least 1")
        self._registry = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._next_span_id = 1
        self._open = 0
        self._started = self._registry.counter("trace.spans_started")
        self._completed = self._registry.counter("trace.spans_finished")
        # Per-name duration histograms, cached so finish() — called once
        # per network send — skips the f-string build and registry lookup.
        # Safe because registry instruments are get-or-create for life.
        self._span_histograms: dict[str, Any] = {}

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def open_spans(self) -> int:
        return self._open

    def begin(self, name: str, **attributes: Any) -> Span:
        span = Span(
            span_id=self._next_span_id,
            name=name,
            start=self._registry.now(),
            attributes=attributes,
        )
        self._next_span_id += 1
        self._open += 1
        self._started.inc()
        return span

    def finish(self, span: Span, **attributes: Any) -> Span:
        if span.finished:
            return span
        span.end = self._registry.now()
        if attributes:
            span.attributes.update(attributes)
        self._open -= 1
        self._completed.inc()
        histogram = self._span_histograms.get(span.name)
        if histogram is None:
            histogram = self._span_histograms[span.name] = (
                self._registry.histogram(
                    f"trace.{span.name}.seconds", SPAN_BUCKETS
                )
            )
        histogram.observe(span.end - span.start)
        self._finished.append(span)
        return span

    def finished_spans(self, name: str | None = None) -> list[Span]:
        """Recently finished spans, optionally filtered by name."""
        if name is None:
            return list(self._finished)
        return [span for span in self._finished if span.name == name]


class KernelProbe:
    """Feeds :class:`~repro.simnet.kernel.Simulator` activity into metrics.

    Installed via ``Simulator.set_probe``; the kernel calls
    :meth:`on_schedule` for every accepted event and :meth:`on_executed`
    after each callback runs.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self._scheduled = metrics.counter("kernel.events_scheduled")
        self._executed = metrics.counter("kernel.events_executed")
        self._queue_depth = metrics.gauge("kernel.queue_depth")
        self._delay = metrics.histogram(
            "kernel.schedule_delay_seconds",
            buckets=(0.0005, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 30.0),
        )

    def on_schedule(self, handle, delay: float) -> None:
        # Fires once per scheduled event — the hottest callback in a
        # probed simulation. Write the instrument slots directly
        # (identical results to inc(1.0)/set()) to drop one method call
        # per event from the kernel's critical path.
        self._scheduled._value += 1.0
        self._delay.observe(delay)

    def on_executed(self, handle, queue_depth: int) -> None:
        self._executed._value += 1.0
        self._queue_depth._value = float(queue_depth)
