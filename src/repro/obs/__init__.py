"""Garnet's unified observability layer.

One :class:`MetricsRegistry` per deployment holds every service's
counters, gauges and histograms; :class:`RegistryBackedStats` keeps the
legacy ``service.stats`` attributes alive as write-through views;
:class:`Tracer`/:class:`KernelProbe` add span tracing over the fixed
network and the simulation kernel; :mod:`repro.obs.export` serialises it
all as JSON snapshots or Prometheus text.

>>> from repro.obs import MetricsRegistry
>>> registry = MetricsRegistry()
>>> registry.counter("demo.events").inc()
>>> registry.snapshot()["counters"]["demo.events"]
1.0
"""

from repro.obs.export import render_json, render_prometheus, write_json
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    add_creation_hook,
    iter_registries,
)
from repro.obs.stats import RegistryBackedStats
from repro.obs.tracing import KernelProbe, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProbe",
    "MetricError",
    "MetricsRegistry",
    "RegistryBackedStats",
    "Span",
    "Tracer",
    "add_creation_hook",
    "iter_registries",
    "render_json",
    "render_prometheus",
    "write_json",
]
