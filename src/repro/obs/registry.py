"""The unified metrics registry: counters, gauges and histograms.

Before this package existed every service kept its own ``*Stats``
dataclass and EXPERIMENTS scraped eight of them with no common snapshot,
timing or export path. :class:`MetricsRegistry` is the one measurement
substrate: services create named instruments here, the exporters in
:mod:`repro.obs.export` serialise them, and the legacy ``service.stats``
attributes survive as :class:`RegistryBackedStats` write-through views so
nothing that reads them had to change.

Time-derived metrics (histogram timers, span durations) are keyed off the
deployment's *virtual* clock: the registry takes a ``clock`` callable and
:class:`~repro.core.middleware.Garnet` passes ``Simulator.now``, so a
latency histogram measures simulated seconds, reproducibly, not host
wall-clock jitter.
"""

from __future__ import annotations

import math
import weakref
from bisect import bisect_left
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.errors import GarnetError

#: Default histogram bucket upper bounds, in seconds. Spans the range from
#: one fixed-network hop (0.5 ms) to a multi-retry actuation round trip.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class MetricError(GarnetError):
    """Raised on metric misuse: name collisions across types, bad values."""


class Counter:
    """A named cumulative value.

    ``set`` exists so the legacy write-through stats views can assign
    (``stats.received += 1`` reads then writes); new instrumentation
    should stick to :meth:`inc`.
    """

    __slots__ = ("name", "help", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    def set(self, value: float) -> None:
        self._value = float(value)


class Gauge:
    """A named value that can move in both directions."""

    __slots__ = ("name", "help", "_value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount


class Histogram:
    """Cumulative-bucket distribution of observed values.

    Buckets are Prometheus-style upper bounds with an implicit ``+Inf``;
    count, sum, min and max are tracked exactly alongside.
    """

    __slots__ = ("name", "help", "buckets", "_bucket_counts", "_count",
                 "_sum", "_min", "_max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(
                f"histogram {name!r} buckets must be sorted and non-empty"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        # _bucket_counts is per-bucket (non-cumulative); a single bisect
        # replaces a full scan on what is one of the simulator's hottest
        # calls (every scheduled event and finished span lands here).
        # The <= re-check keeps NaN observations out of bucket 0, exactly
        # as the old linear scan did.
        buckets = self.buckets
        i = bisect_left(buckets, value)
        if i < len(buckets) and value <= buckets[i]:
            self._bucket_counts[i] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._count else math.nan

    def cumulative_buckets(self) -> dict[str, int]:
        """``{upper_bound: cumulative count}`` including ``+Inf``."""
        out: dict[str, int] = {}
        running = 0
        for bound, in_bucket in zip(self.buckets, self._bucket_counts):
            running += in_bucket  # stored per-bucket; cumulate on read
            out[format_bound(bound)] = running
        out["+Inf"] = self._count
        return out

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self._count),
            "sum": self._sum,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


def format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus text format expects."""
    if bound == math.inf:
        return "+Inf"
    text = f"{bound:g}"
    return text


class MetricsRegistry:
    """Named instruments shared by one deployment's services.

    Instruments are get-or-create: asking twice for the same name returns
    the same object, so a service and an exporter never disagree about
    identity. Asking for the same name as a *different* instrument kind
    is a :class:`MetricError` — silent type confusion is how telemetry
    rots.
    """

    _instances: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()
    _creation_hooks: list[Callable[["MetricsRegistry"], None]] = []

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._clock = clock
        MetricsRegistry._instances.add(self)
        for hook in list(MetricsRegistry._creation_hooks):
            hook(self)

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        help: str = "",
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise MetricError(
                    f"metric {name!r} already exists as {existing.kind}"
                )
            return existing
        metric = Histogram(name, buckets or DEFAULT_BUCKETS, help=help)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name: str, help: str = ""):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already exists as {existing.kind}"
                )
            return existing
        metric = cls(name, help=help)
        self._metrics[name] = metric
        return metric

    # ------------------------------------------------------------------
    # Clock & timing
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Callable[[], float] | None:
        return self._clock

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def now(self) -> float:
        """The registry's time source (0.0 when no clock is installed)."""
        return self._clock() if self._clock is not None else 0.0

    @contextmanager
    def timer(self, name: str, buckets: tuple[float, ...] | None = None):
        """Time a block into histogram ``name`` using the virtual clock.

        >>> registry = MetricsRegistry(clock=lambda: 4.0)
        >>> with registry.timer("demo.seconds"):
        ...     pass
        >>> registry.histogram("demo.seconds").count
        1
        """
        histogram = self.histogram(name, buckets)
        start = self.now()
        try:
            yield histogram
        finally:
            histogram.observe(max(0.0, self.now() - start))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def value(self, name: str) -> float:
        """A counter/gauge's value (0.0 when absent) — snapshot helper."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def drop(self, name: str) -> None:
        """Forget a metric (used when a stats view re-homes elsewhere)."""
        self._metrics.pop(name, None)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def is_empty(self) -> bool:
        """True when nothing was ever recorded (all zero, no histograms)."""
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                if metric.count:
                    return False
            elif metric.value != 0.0:
                return False
        return True

    def snapshot(self) -> dict:
        """One JSON-serialisable dict of every instrument's current state."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                summary = metric.summary()
                if metric.count == 0:
                    # NaNs are not JSON; an empty histogram reports nulls.
                    summary = {
                        "count": 0.0, "sum": 0.0,
                        "mean": None, "min": None, "max": None,
                    }
                summary["buckets"] = metric.cumulative_buckets()
                histograms[name] = summary
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def iter_registries() -> list[MetricsRegistry]:
    """Every live registry (weakly tracked; order unspecified)."""
    return list(MetricsRegistry._instances)


def add_creation_hook(
    hook: Callable[[MetricsRegistry], None],
) -> Callable[[], None]:
    """Observe registry creation; returns an unregister callable.

    The benchmark harness uses this to find every registry a single
    experiment created so it can dump one snapshot file per run.
    """
    MetricsRegistry._creation_hooks.append(hook)

    def unregister() -> None:
        try:
            MetricsRegistry._creation_hooks.remove(hook)
        except ValueError:
            pass

    return unregister
