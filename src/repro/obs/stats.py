"""Registry-backed stats views: the legacy ``service.stats`` surface.

Every service used to own a plain dataclass of counters. Those classes
still exist with the same names and attributes, but each numeric field is
now a property backed by a :class:`~repro.obs.registry.Counter` in a
:class:`~repro.obs.registry.MetricsRegistry` — reads and writes flow
through the registry, so ``deployment.metrics()`` and ``service.stats``
can never disagree. Existing code (``stats.received += 1``, benchmark
scrapes, ``Garnet.report()``) works unchanged.

A view constructed without a registry creates a private one, so services
remain usable standalone in unit tests; :meth:`RegistryBackedStats.bind`
re-homes the counters (values included) into a shared registry, which is
how a :class:`~repro.core.consumer.Consumer` created before attachment
joins the deployment's registry at ``add_consumer`` time.
"""

from __future__ import annotations

import re

from repro.obs.registry import Counter, MetricsRegistry

_NUMERIC_ANNOTATIONS = {"int", "float", int, float}


def _derive_prefix(class_name: str) -> str:
    """``FilteringStats`` -> ``filtering`` (fallback when PREFIX unset)."""
    stem = class_name.removesuffix("Stats") or class_name
    return re.sub(r"(?<!^)(?=[A-Z])", "_", stem).lower()


def _make_field_property(name: str, as_int: bool) -> property:
    def fget(self: "RegistryBackedStats"):
        value = self._counters[name].value
        return int(value) if as_int else value

    def fset(self: "RegistryBackedStats", value) -> None:
        self._counters[name].set(value)

    return property(fget, fset, doc=f"registry-backed counter {name!r}")


class RegistryBackedStats:
    """Base for the per-service stats views.

    Subclasses declare numeric fields exactly like the old dataclasses::

        class FilteringStats(RegistryBackedStats):
            PREFIX = "filtering"
            received: int = 0
            delivered: int = 0

    Each annotated ``int``/``float`` field becomes a read/write property
    over a counter named ``<PREFIX>.<field>``. Non-numeric state (e.g. a
    trace list) is set as ordinary attributes by the subclass's
    ``__init__`` after calling ``super().__init__``.
    """

    PREFIX: str = ""
    _metric_fields: tuple[tuple[str, bool], ...] = ()

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        fields: dict[str, bool] = {}
        for klass in reversed(cls.__mro__):
            annotations = klass.__dict__.get("__annotations__", {})
            for name, annotation in annotations.items():
                if name.startswith("_") or name == "PREFIX":
                    continue
                if annotation in _NUMERIC_ANNOTATIONS:
                    fields[name] = annotation in ("int", int)
        cls._metric_fields = tuple(fields.items())
        for name, as_int in cls._metric_fields:
            setattr(cls, name, _make_field_property(name, as_int))

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        prefix: str | None = None,
    ) -> None:
        self._registry = metrics if metrics is not None else MetricsRegistry()
        self._prefix = (
            prefix
            if prefix is not None
            else (self.PREFIX or _derive_prefix(type(self).__name__))
        )
        self._counters: dict[str, Counter] = {
            name: self._registry.counter(f"{self._prefix}.{name}")
            for name, _ in self._metric_fields
        }

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def counter(self, name: str) -> Counter:
        """The live backing counter for declared field ``name``.

        Hot paths cache this and call ``inc()`` directly: a plain
        ``stats.field += 1`` costs two property round-trips (read via
        ``value``, write via ``set``) per increment. Caches go stale
        across :meth:`bind`, which re-homes the counters — re-fetch
        after binding.
        """
        return self._counters[name]

    @property
    def prefix(self) -> str:
        return self._prefix

    def bind(
        self, metrics: MetricsRegistry, prefix: str | None = None
    ) -> None:
        """Re-home this view's counters into ``metrics``, keeping values.

        The old registry forgets the counters so a later merged snapshot
        does not double-count them.
        """
        new_prefix = prefix if prefix is not None else self._prefix
        if metrics is self._registry and new_prefix == self._prefix:
            return
        moved: dict[str, Counter] = {}
        for name, counter in self._counters.items():
            target = metrics.counter(f"{new_prefix}.{name}")
            target.set(target.value + counter.value)
            self._registry.drop(counter.name)
            moved[name] = target
        self._registry = metrics
        self._prefix = new_prefix
        self._counters = moved

    def as_dict(self) -> dict[str, float]:
        """Field name -> current value (ints stay ints)."""
        return {name: getattr(self, name) for name, _ in self._metric_fields}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name, _ in self._metric_fields
        )
        return f"{type(self).__name__}({body})"
