"""Helpers for packing fixed-width big-endian integer fields.

The Figure 2 wire format is defined in terms of exact bit widths; these
helpers enforce those widths at encode time (raising
:class:`repro.errors.FieldRangeError` on overflow) and provide bounds-checked
reads that raise :class:`repro.errors.TruncatedMessageError` rather than
silently mis-parsing short buffers.
"""

from __future__ import annotations

from repro.errors import FieldRangeError, TruncatedMessageError


def check_range(field: str, value: int, bits: int) -> int:
    """Validate that ``value`` fits in ``bits`` unsigned bits.

    Returns the value unchanged so callers can use it inline.
    """
    maximum = (1 << bits) - 1
    if value.__class__ is int:
        # Exact-int fast path: the overwhelmingly common case on the
        # codec hot paths, and cannot be a bool.
        if 0 <= value <= maximum:
            return value
        raise FieldRangeError(field, value, maximum)
    if not isinstance(value, int) or isinstance(value, bool):
        raise FieldRangeError(field, value, maximum)
    if value < 0 or value > maximum:
        raise FieldRangeError(field, value, maximum)
    return value


def write_uint(buffer: bytearray, value: int, nbytes: int, field: str) -> None:
    """Append ``value`` to ``buffer`` as a big-endian unsigned integer."""
    check_range(field, value, nbytes * 8)
    buffer.extend(value.to_bytes(nbytes, "big"))


def read_uint(data: bytes, offset: int, nbytes: int, field: str) -> tuple[int, int]:
    """Read a big-endian unsigned integer from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    end = offset + nbytes
    if end > len(data):
        raise TruncatedMessageError(
            f"buffer of {len(data)} bytes too short for field {field!r} "
            f"at offset {offset} ({nbytes} bytes)"
        )
    return int.from_bytes(data[offset:end], "big"), end
