"""Shared retry/backoff policy used by every resilience mechanism.

The Actuation Service's acknowledgement retransmissions, the fixed
network's redelivery queue and the session heartbeat loop all need the
same primitive: a bounded sequence of retry delays that grows
exponentially and can be spread with jitter. Centralising the schedule
in one frozen dataclass keeps all three paths tunable from
:class:`~repro.core.config.GarnetConfig` and — crucially for the
reproducibility guarantees of ``benchmarks/`` — keeps the jitter draws
on an explicit, seed-forked RNG rather than hidden module state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class BackoffPolicy:
    """A bounded exponential-backoff schedule with optional jitter.

    Attempt ``n`` (1-based) nominally waits ``base * multiplier**(n-1)``
    seconds, capped at ``max_delay``. When ``jitter`` is non-zero the
    delay is perturbed uniformly within ``±jitter`` *fraction* of the
    nominal value (so ``jitter=0.1`` spreads retries by up to 10%),
    drawn from the RNG the caller supplies — always a stream forked from
    the simulation seed, never wall-clock entropy.
    """

    base: float
    multiplier: float = 2.0
    max_delay: float | None = None
    jitter: float = 0.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(
                f"backoff base must be positive, got {self.base}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay is not None and self.max_delay < self.base:
            raise ConfigurationError(
                "backoff max_delay must be >= base "
                f"({self.max_delay} < {self.base})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"backoff jitter must be in [0, 1), got {self.jitter}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"backoff max_attempts must be >= 1, got {self.max_attempts}"
            )

    def nominal_delay(self, attempt: int) -> float:
        """The un-jittered delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = self.base * self.multiplier ** (attempt - 1)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """The actual delay before retry ``attempt``, jitter applied.

        When jitter is configured the RNG is *required*: silently
        returning the un-jittered nominal delay would hand every caller
        that forgot to fork an RNG a synchronized retry storm with no
        signal that the configured spread never happened.
        """
        nominal = self.nominal_delay(attempt)
        if self.jitter <= 0.0:
            return nominal
        if rng is None:
            raise ConfigurationError(
                f"BackoffPolicy(jitter={self.jitter}) needs an rng: "
                "callers must fork one from the simulation seed or "
                "configure jitter=0"
            )
        spread = nominal * self.jitter
        return max(0.0, nominal + rng.uniform(-spread, spread))

    def schedule(self) -> tuple[float, ...]:
        """Every nominal delay in order — handy for tests and docs."""
        return tuple(
            self.nominal_delay(attempt)
            for attempt in range(1, self.max_attempts + 1)
        )
