"""Cyclic redundancy checks used by the Garnet wire formats.

Section 4.3 of the paper notes that "the usual checksums associated with
the data messages" are elided from Figure 2 for simplicity; the Actuation
Service explicitly adds checksums to control messages (Section 4.2). We
use CRC-16/CCITT-FALSE for message checksums (compact enough for the small
control frames) and expose CRC-32 for bulk payload integrity.

Both implementations are table-driven and pure Python so the library has
no binary dependencies.
"""

from __future__ import annotations


def _build_crc16_table(poly: int) -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


def _build_crc32_table(poly: int) -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _build_crc16_table(0x1021)
_CRC32_TABLE = _build_crc32_table(0xEDB88320)


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """Return the CRC-16/CCITT-FALSE checksum of ``data``.

    Parameters
    ----------
    data:
        The bytes to checksum.
    initial:
        Starting register value; chain calls by passing a previous result.
    """
    crc = initial & 0xFFFF
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc32_ieee(data: bytes, initial: int = 0) -> int:
    """Return the CRC-32 (IEEE 802.3) checksum of ``data``.

    Compatible with :func:`zlib.crc32`; implemented locally so the wire
    format is self-contained and portable.
    """
    crc = (initial ^ 0xFFFFFFFF) & 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
