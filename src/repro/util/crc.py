"""Cyclic redundancy checks used by the Garnet wire formats.

Section 4.3 of the paper notes that "the usual checksums associated with
the data messages" are elided from Figure 2 for simplicity; the Actuation
Service explicitly adds checksums to control messages (Section 4.2). We
use CRC-16/CCITT-FALSE for message checksums (compact enough for the small
control frames) and expose CRC-32 for bulk payload integrity.

Both algorithms keep a table-driven pure-Python implementation as the
executable spec (``*_reference``) and take a stdlib C fast path when one
exists: :func:`zlib.crc32` computes the same IEEE 802.3 polynomial with
identical chaining semantics, and :func:`binascii.crc_hqx` is the same
0x1021 MSB-first register update as CRC-16/CCITT-FALSE — seeding it with
0xFFFF (or any chained ``initial``) yields bit-identical checksums.
Equivalence of fast and reference paths, including arbitrary initial
values, is pinned by ``tests/test_util_crc.py``.
"""

from __future__ import annotations

from binascii import crc_hqx as _crc_hqx

try:
    from zlib import crc32 as _zlib_crc32
except ImportError:  # pragma: no cover - CPython always ships zlib
    _zlib_crc32 = None


def _build_crc16_table(poly: int) -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ poly) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


def _build_crc32_table(poly: int) -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _build_crc16_table(0x1021)
_CRC32_TABLE = _build_crc32_table(0xEDB88320)


def crc16_ccitt_reference(data: bytes, initial: int = 0xFFFF) -> int:
    """Byte-at-a-time CRC-16/CCITT-FALSE; the executable spec for
    :func:`crc16_ccitt`."""
    crc = initial & 0xFFFF
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[((crc >> 8) ^ byte) & 0xFF]
    return crc


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """Return the CRC-16/CCITT-FALSE checksum of ``data``.

    Parameters
    ----------
    data:
        The bytes to checksum (any bytes-like object).
    initial:
        Starting register value; chain calls by passing a previous result.

    Delegates to :func:`binascii.crc_hqx`: "CRC-HQX" is the identical
    polynomial (0x1021), shift direction (MSB-first) and register update
    — the only difference from CRC-16/CCITT-FALSE is convention over the
    *default* seed, which this wrapper supplies.
    """
    return _crc_hqx(data, initial & 0xFFFF)


def crc32_ieee_reference(data: bytes, initial: int = 0) -> int:
    """Pure-Python CRC-32 (IEEE 802.3); the executable spec for
    :func:`crc32_ieee` and the fallback when zlib is unavailable."""
    crc = (initial ^ 0xFFFFFFFF) & 0xFFFFFFFF
    table = _CRC32_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_ieee(data: bytes, initial: int = 0) -> int:
    """Return the CRC-32 (IEEE 802.3) checksum of ``data``.

    Delegates to :func:`zlib.crc32` (same polynomial, same finalised
    chaining convention: pass a previous result as ``initial`` to
    continue a running checksum) when available, falling back to the
    self-contained table-driven implementation otherwise.
    """
    if _zlib_crc32 is not None:
        return _zlib_crc32(data, initial & 0xFFFFFFFF)
    return crc32_ieee_reference(data, initial)
