"""Identifier allocation utilities.

Garnet identifies sensors with 24-bit ids, internal streams with 8-bit
indices and stream update requests with short wrapping counters (the paper
compares these ephemeral request ids to RETRI transaction identifiers,
Section 7). Two allocators cover those needs:

- :class:`IdPool` hands out unique ids from a bounded space and supports
  release/reuse (sensor ids, consumer ids).
- :class:`WrappingCounter` produces modular sequence numbers (message
  sequence fields, actuation request ids).
"""

from __future__ import annotations

from repro.errors import GarnetError


class IdExhaustedError(GarnetError):
    """Raised when an :class:`IdPool` has no free ids left."""


class IdPool:
    """Allocate unique integer ids in ``[first, last]`` with reuse.

    Allocation is O(1): a monotonically advancing cursor serves fresh ids
    until the range is exhausted, after which released ids are recycled in
    LIFO order.
    """

    def __init__(self, first: int = 0, last: int = (1 << 24) - 1) -> None:
        if first < 0 or last < first:
            raise ValueError(f"invalid id range [{first}, {last}]")
        self._first = first
        self._last = last
        self._next = first
        # LIFO recycling order lives in the list; membership lives in the
        # set. reserve() removes from the set only (O(1)) and allocate()
        # skips list entries no longer in the set — without this, a churn
        # of release/reserve cycles pays list.remove's O(n) each time,
        # O(n^2) overall.
        self._released: list[int] = []
        self._released_set: set[int] = set()
        self._in_use: set[int] = set()

    @property
    def capacity(self) -> int:
        """Total number of ids the pool can ever hold concurrently."""
        return self._last - self._first + 1

    @property
    def in_use(self) -> int:
        """Number of ids currently allocated."""
        return len(self._in_use)

    def _pop_released(self) -> int | None:
        """The most recently released id still free, or None."""
        while self._released:
            value = self._released.pop()
            if value in self._released_set:
                self._released_set.remove(value)
                return value
            # Stale entry: the id was reserve()d since release; skip it.
        return None

    def allocate(self) -> int:
        """Return a fresh id, recycling released ids once the range is spent."""
        value = self._pop_released()
        if value is None:
            if self._next <= self._last:
                value = self._next
                self._next += 1
            else:
                raise IdExhaustedError(
                    f"id pool [{self._first}, {self._last}] exhausted"
                )
        self._in_use.add(value)
        return value

    def reserve(self, value: int) -> int:
        """Claim a specific id (e.g. a pre-configured sensor id). O(1)."""
        if value < self._first or value > self._last:
            raise ValueError(
                f"id {value} outside pool range [{self._first}, {self._last}]"
            )
        if value in self._in_use:
            raise IdExhaustedError(f"id {value} already allocated")
        if value >= self._next:
            # Mark everything skipped over as released so it is not lost.
            skipped = range(self._next, value)
            self._released.extend(skipped)
            self._released_set.update(skipped)
            self._next = value + 1
        else:
            if value not in self._released_set:
                raise IdExhaustedError(f"id {value} already allocated")
            # Lazy deletion: the list entry is skipped by _pop_released.
            self._released_set.remove(value)
        self._in_use.add(value)
        return value

    def release(self, value: int) -> None:
        """Return an id to the pool for reuse."""
        try:
            self._in_use.remove(value)
        except KeyError as exc:
            raise ValueError(f"id {value} is not allocated") from exc
        self._released.append(value)
        self._released_set.add(value)

    def __contains__(self, value: int) -> bool:
        return value in self._in_use


class WrappingCounter:
    """A modular counter over ``bits`` unsigned bits.

    ``next()`` returns the current value then advances, wrapping to zero
    after ``2**bits - 1`` — exactly the behaviour of the 16-bit sequence
    field in Figure 2.
    """

    def __init__(self, bits: int, start: int = 0) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self._modulus = 1 << bits
        if not 0 <= start < self._modulus:
            raise ValueError(f"start {start} outside [0, {self._modulus})")
        self._value = start

    @property
    def modulus(self) -> int:
        return self._modulus

    @property
    def value(self) -> int:
        """The value the next call to :meth:`next` will return."""
        return self._value

    def next(self) -> int:
        value = self._value
        self._value = (self._value + 1) % self._modulus
        return value

    def distance_to(self, other: int) -> int:
        """Forward distance from the current value to ``other`` (mod 2^bits)."""
        return (other - self._value) % self._modulus


def sequence_is_newer(candidate: int, reference: int, bits: int = 16) -> bool:
    """Serial-number arithmetic (RFC 1982 style) for wrapping sequences.

    Returns True when ``candidate`` is ahead of ``reference`` by less than
    half the sequence space — the standard rule for deciding whether a
    wrapped sequence number is "new" rather than a stale duplicate.
    """
    modulus = 1 << bits
    half = modulus // 2
    diff = (candidate - reference) % modulus
    return 0 < diff < half
