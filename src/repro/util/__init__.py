"""Shared low-level utilities: CRC checksums, bitfield packing, id pools."""

from repro.util.bitfields import (
    check_range,
    read_uint,
    write_uint,
)
from repro.util.crc import crc16_ccitt, crc32_ieee
from repro.util.ids import IdExhaustedError, IdPool, WrappingCounter

__all__ = [
    "IdExhaustedError",
    "IdPool",
    "WrappingCounter",
    "check_range",
    "crc16_ccitt",
    "crc32_ieee",
    "read_uint",
    "write_uint",
]
