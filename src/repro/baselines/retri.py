"""RETRI: Random, Ephemeral TRansaction Identifiers (Elson & Estrin).

Section 7 of the Garnet paper discuses RETRI as an energy optimisation:
instead of Garnet's fixed 32-bit StreamID + 16-bit sequence, each
*transaction* picks a short random identifier, sized so that concurrent
transactions rarely collide. "Their approach scales with the increasing
transaction density and not the sheer size of the network."

The paper's verdict, which experiment E7 quantifies: because Garnet
depends on unique, *consistent* stream ids, RETRI's ephemeral ids are
inappropriate for the data path — but Garnet's 16-bit actuation request
id is "loosely comparable to a RETRI".

This module implements:

- the collision mathematics (birthday bound) and the minimum id width
  for a target collision rate at a given transaction density;
- a Monte-Carlo :class:`RetriScheme` that draws ids and counts actual
  collisions, validating the closed form;
- per-transaction header-size and radio-energy accounting for both
  schemes, using :class:`repro.sensors.energy.RadioEnergyModel`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.sensors.energy import RadioEnergyModel

GARNET_ID_BITS = 48
"""Garnet's per-message identification cost: 32-bit StreamID + 16-bit
sequence (Figure 2)."""


def collision_probability(density: int, id_bits: int) -> float:
    """Probability that ``density`` concurrent transactions collide.

    Birthday-problem approximation: ``1 - exp(-n(n-1) / 2^(k+1))`` for
    ``n`` transactions over ``2^k`` identifiers.
    """
    if density < 0:
        raise ValueError(f"density must be non-negative, got {density}")
    if id_bits < 1:
        raise ValueError(f"id_bits must be positive, got {id_bits}")
    if density < 2:
        return 0.0
    exponent = -(density * (density - 1)) / float(1 << (id_bits + 1))
    return 1.0 - math.exp(exponent)


def minimum_id_bits(
    density: int, target_collision_rate: float = 0.01, max_bits: int = 64
) -> int:
    """Fewest id bits keeping collision probability under the target.

    This is the RETRI sizing rule: the width scales with *transaction
    density*, independent of the network's total size.
    """
    if not 0.0 < target_collision_rate < 1.0:
        raise ValueError("target_collision_rate must be in (0, 1)")
    for bits in range(1, max_bits + 1):
        if collision_probability(density, bits) <= target_collision_rate:
            return bits
    raise ValueError(
        f"no width up to {max_bits} bits meets "
        f"{target_collision_rate} at density {density}"
    )


@dataclass(frozen=True, slots=True)
class TransactionCost:
    """Identification overhead of one transaction under one scheme."""

    scheme: str
    id_bits: int
    energy_joules: float


class RetriScheme:
    """Monte-Carlo model of RETRI identifier allocation.

    Transactions arrive, hold their id for a lifetime of ``hold`` draws,
    and release it. A collision is a fresh draw landing on a held id.
    """

    def __init__(self, id_bits: int, rng: random.Random) -> None:
        if id_bits < 1:
            raise ValueError("id_bits must be positive")
        self._id_bits = id_bits
        self._space = 1 << id_bits
        self._rng = rng
        self._held: set[int] = set()
        self.draws = 0
        self.collisions = 0

    @property
    def id_bits(self) -> int:
        return self._id_bits

    @property
    def held_count(self) -> int:
        return len(self._held)

    def begin_transaction(self) -> int:
        """Draw a random id; a draw hitting a held id is a collision
        (recorded, and re-drawn as real implementations retry)."""
        self.draws += 1
        candidate = self._rng.randrange(self._space)
        if candidate in self._held:
            self.collisions += 1
            # Linear probe models the retry without unbounded loops when
            # the space is nearly full.
            for _ in range(self._space):
                candidate = (candidate + 1) % self._space
                if candidate not in self._held:
                    break
            else:
                raise RuntimeError("identifier space exhausted")
        self._held.add(candidate)
        return candidate

    def end_transaction(self, identifier: int) -> None:
        self._held.discard(identifier)

    def observed_collision_rate(self) -> float:
        if self.draws == 0:
            return 0.0
        return self.collisions / self.draws


def garnet_transaction_cost(
    payload_bits: int,
    distance: float,
    energy: RadioEnergyModel | None = None,
) -> TransactionCost:
    """Energy of one Garnet message's identification overhead."""
    model = energy or RadioEnergyModel()
    return TransactionCost(
        scheme="garnet",
        id_bits=GARNET_ID_BITS,
        energy_joules=model.tx_cost(GARNET_ID_BITS + payload_bits, distance)
        - model.tx_cost(payload_bits, distance),
    )


def retri_transaction_cost(
    density: int,
    payload_bits: int,
    distance: float,
    target_collision_rate: float = 0.01,
    energy: RadioEnergyModel | None = None,
) -> TransactionCost:
    """Energy of one RETRI transaction's identification overhead.

    The id is sized for ``density`` concurrent transactions; the expected
    cost of collision retries (a full retransmission with probability
    p/(1-p)) is folded in, reproducing the diminishing-returns shape of
    very narrow identifiers.
    """
    model = energy or RadioEnergyModel()
    bits = minimum_id_bits(density, target_collision_rate)
    per_try = model.tx_cost(bits + payload_bits, distance)
    p = collision_probability(density, bits)
    expected_retries = p / (1.0 - p) if p < 1.0 else float("inf")
    id_cost = (
        per_try - model.tx_cost(payload_bits, distance)
    ) + expected_retries * per_try
    return TransactionCost(
        scheme="retri", id_bits=bits, energy_joules=id_cost
    )
