"""Comparison systems from the paper's Related Work (Section 7).

Each baseline is a working implementation of the *mechanism* the paper
compares Garnet against, sized to support the corresponding experiment:

- :mod:`repro.baselines.retri` — Elson & Estrin's Random Ephemeral
  TRansaction Identifiers: id-width vs. collision-probability vs.
  energy-per-transaction trade (experiment E7);
- :mod:`repro.baselines.fjords` — Madden & Franklin's sensor proxies
  sharing one stream across simultaneous queries (experiment E8);
- :mod:`repro.baselines.database_centric` — the query-only,
  no-actuation access model of habitat-monitoring deployments
  (experiments E8/E9);
- :mod:`repro.baselines.corie` — CORIE-style close coupling between
  high-rate sensor output and a small number of applications
  (experiment E9);
- :mod:`repro.baselines.diffusion` — directed diffusion's in-network
  interest/gradient/reinforcement routing, which Garnet's address-free,
  infrastructure-receiver design is contrasted against (experiment E13).
"""

from repro.baselines.corie import CoupledDeployment
from repro.baselines.database_centric import SensorDatabase, TemplateQuery
from repro.baselines.diffusion import (
    DiffusionNetwork,
    DiffusionNode,
    Interest,
)
from repro.baselines.fjords import FjordEngine, FjordQuery, SensorProxy
from repro.baselines.retri import (
    RetriScheme,
    collision_probability,
    minimum_id_bits,
)

__all__ = [
    "CoupledDeployment",
    "DiffusionNetwork",
    "DiffusionNode",
    "FjordEngine",
    "FjordQuery",
    "Interest",
    "RetriScheme",
    "SensorDatabase",
    "SensorProxy",
    "TemplateQuery",
    "collision_probability",
    "minimum_id_bits",
]
