"""CORIE-style close coupling between sensor output and applications.

Section 7: CORIE's "sensor nodes are capable of generating megabytes of
data per second ... the authors assume that at most a few competing
applications will run concurrently. This suggests a close coupling
between the output data and the applications, a shortcoming that Garnet
is designed to address."

The baseline models that coupling: applications bind *directly* to a
high-rate sensor feed. The deployment has a fixed processing budget (the
feed is heavy); each bound application must ingest the full feed, so the
sustainable per-application throughput collapses as applications are
added, and beyond ``slot_capacity`` new applications are refused
outright. Garnet's decoupled dispatch, by contrast, fans a single
middleware-side stream out to any number of subscribers and lets each
subscribe to a *derived* (down-sampled, aggregated) stream instead of the
raw feed.

Experiment E9 sweeps application count against both designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GarnetError


class CouplingLimitExceeded(GarnetError):
    """The tightly-coupled deployment has no free application slot."""


@dataclass(slots=True)
class CoupledApplication:
    """One application bound directly to the raw feed."""

    name: str
    tuples_ingested: int = 0
    tuples_dropped: int = 0
    results: list[float] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class CoupledRunReport:
    applications: int
    feed_tuples: int
    total_processing: int
    per_app_delivery_ratio: float
    refused_applications: int


class CoupledDeployment:
    """A fixed-budget, directly-coupled sensor-to-application binding.

    Parameters
    ----------
    slot_capacity:
        Hard limit on concurrently bound applications ("at most a few").
    processing_budget_per_tuple:
        How many application-deliveries of one feed tuple the back end
        can afford; with N bound applications each tuple needs N
        deliveries, and the shortfall is dropped evenly.
    """

    def __init__(
        self,
        slot_capacity: int = 3,
        processing_budget_per_tuple: int = 4,
    ) -> None:
        if slot_capacity < 1:
            raise ValueError("slot_capacity must be at least 1")
        if processing_budget_per_tuple < 1:
            raise ValueError("processing budget must be at least 1")
        self._capacity = slot_capacity
        self._budget = processing_budget_per_tuple
        self._applications: list[CoupledApplication] = []
        self.refused = 0

    @property
    def application_count(self) -> int:
        return len(self._applications)

    def bind(self, name: str) -> CoupledApplication:
        """Attach an application to the raw feed; may be refused."""
        if len(self._applications) >= self._capacity:
            self.refused += 1
            raise CouplingLimitExceeded(
                f"deployment supports at most {self._capacity} "
                f"concurrently bound applications"
            )
        application = CoupledApplication(name)
        self._applications.append(application)
        return application

    def unbind(self, application: CoupledApplication) -> None:
        self._applications.remove(application)

    def pump(self, tuples: list[float]) -> CoupledRunReport:
        """Drive the raw feed through every bound application.

        Each tuple can be delivered to at most ``budget`` applications;
        with more applications bound, deliveries rotate so the shortfall
        is shared (and visible as a delivery ratio below 1).
        """
        apps = self._applications
        if not apps:
            return CoupledRunReport(0, len(tuples), 0, 0.0, self.refused)
        total_processing = 0
        rotation = 0
        for value in tuples:
            deliveries = min(len(apps), self._budget)
            for offset in range(len(apps)):
                application = apps[(rotation + offset) % len(apps)]
                if offset < deliveries:
                    application.tuples_ingested += 1
                    application.results.append(value)
                    total_processing += 1
                else:
                    application.tuples_dropped += 1
            rotation += 1
        ideal = len(tuples) * len(apps)
        return CoupledRunReport(
            applications=len(apps),
            feed_tuples=len(tuples),
            total_processing=total_processing,
            per_app_delivery_ratio=(
                total_processing / ideal if ideal else 0.0
            ),
            refused_applications=self.refused,
        )
