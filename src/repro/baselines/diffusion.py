"""Directed diffusion (Intanagonwiwat, Govindan & Estrin, MobiCom 2000).

Section 7: "The dynamic variation in consumers and our desire for
multiple receivers requires that the sensor nodes do not participate in
the routing of the data. Our approach differs from the data-diffusion
technique in [13], which permits nodes to judge the best hop for data
routing. Garnet transparently supports such node level activity,
although no means are currently provided to process and route such
multi hop data to its source."

This is a compact two-phase-pull implementation of the mechanism Garnet
is contrasted against, sufficient for experiment E13:

1. **Interest propagation** — a sink floods a named interest through the
   multi-hop radio graph; every node receiving it records a *gradient*
   toward the neighbour it heard it from.
2. **Exploratory data** — matching sources send low-rate exploratory
   events along *all* gradients (flooding back toward the sink).
3. **Reinforcement** — the sink reinforces the neighbour that delivered
   the first exploratory event; reinforcement propagates hop-by-hop back
   to the source, creating one preferred path.
4. **Data delivery** — subsequent events travel only the reinforced
   path at the requested rate.

The implementation runs on the shared discrete-event kernel with
per-link Bernoulli loss and per-node energy accounting, so its delivery
ratio and energy-per-event are directly comparable with a Garnet
deployment over the same node geometry.

What the comparison surfaces (and E13 asserts): diffusion pays routing
state and relay transmissions *inside the sensor field* and couples each
data consumer to an in-network dissemination tree, whereas Garnet keeps
nodes stateless, single-hop, and mutually unaware of consumers — at the
price of requiring receiver infrastructure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sensors.energy import Battery, RadioEnergyModel
from repro.simnet.geometry import Point
from repro.simnet.kernel import PeriodicTask, Simulator


@dataclass(frozen=True, slots=True)
class Interest:
    """A named data request disseminated by a sink."""

    name: str
    interval: float
    """Requested event interval in seconds (the full data rate)."""

    exploratory_interval: float = 10.0


@dataclass(slots=True)
class _Gradient:
    toward: int
    """Neighbour node id the interest arrived from."""

    reinforced: bool = False


@dataclass(slots=True)
class DiffusionStats:
    interests_sent: int = 0
    exploratory_sent: int = 0
    data_sent: int = 0
    reinforcements_sent: int = 0
    events_generated: int = 0
    events_delivered: int = 0
    duplicates_suppressed: int = 0
    link_losses: int = 0

    @property
    def transmissions(self) -> int:
        return (
            self.interests_sent
            + self.exploratory_sent
            + self.data_sent
            + self.reinforcements_sent
        )


class DiffusionNode:
    """One in-network node: sensor, router, or both."""

    def __init__(
        self,
        node_id: int,
        position: Point,
        is_source: bool = False,
        battery: Battery | None = None,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.is_source = is_source
        self.battery = battery
        self.gradients: dict[str, list[_Gradient]] = {}
        self.seen_events: set[tuple[str, int]] = set()
        self.seen_interests: set[str] = set()
        self.last_upstream: dict[str, int] = {}
        """Per interest, the neighbour the latest fresh event arrived
        from — the reverse path reinforcement follows."""
        self.reinforcement_done: set[str] = set()
        self.energy_used = 0.0

    @property
    def alive(self) -> bool:
        return self.battery is None or not self.battery.depleted

    def routing_entries(self) -> int:
        """In-network state this node must hold (Garnet nodes hold none)."""
        return sum(len(gradients) for gradients in self.gradients.values())


class DiffusionNetwork:
    """A multi-hop sensor field running directed diffusion."""

    def __init__(
        self,
        sim: Simulator,
        radio_range: float = 180.0,
        link_loss: float = 0.0,
        per_hop_latency: float = 0.01,
        energy_model: RadioEnergyModel | None = None,
        frame_bits: int = 400,
    ) -> None:
        if radio_range <= 0:
            raise ValueError("radio_range must be positive")
        if not 0.0 <= link_loss < 1.0:
            raise ValueError("link_loss must be in [0, 1)")
        self._sim = sim
        self._range = radio_range
        self._loss = link_loss
        self._latency = per_hop_latency
        self._energy = energy_model or RadioEnergyModel()
        self._frame_bits = frame_bits
        self._rng = sim.fork_rng()
        self.nodes: dict[int, DiffusionNode] = {}
        self._neighbors: dict[int, list[int]] = {}
        self._sinks: dict[str, int] = {}
        self._event_counter = 0
        self._source_tasks: list[PeriodicTask] = []
        self._sink_deliveries: dict[str, list[tuple[float, int]]] = {}
        self._first_exploratory_from: dict[tuple[str, int], int] = {}
        self.stats = DiffusionStats()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(
        self,
        position: Point,
        is_source: bool = False,
        battery: Battery | None = None,
    ) -> DiffusionNode:
        node_id = len(self.nodes)
        node = DiffusionNode(node_id, position, is_source, battery)
        self.nodes[node_id] = node
        self._neighbors[node_id] = []
        for other_id, other in self.nodes.items():
            if other_id == node_id:
                continue
            if position.distance_to(other.position) <= self._range:
                self._neighbors[node_id].append(other_id)
                self._neighbors[other_id].append(node_id)
        return node

    def neighbor_count(self, node_id: int) -> int:
        return len(self._neighbors[node_id])

    def is_connected_to(self, start: int, goal: int) -> bool:
        """BFS reachability (topology sanity check for experiments)."""
        frontier = [start]
        visited = {start}
        while frontier:
            current = frontier.pop()
            if current == goal:
                return True
            for neighbor in self._neighbors[current]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return False

    # ------------------------------------------------------------------
    # Radio primitive
    # ------------------------------------------------------------------
    def _transmit(self, sender: DiffusionNode, deliver, *args) -> None:
        """Broadcast one frame from ``sender`` to all live neighbours."""
        if not sender.alive:
            return
        cost = self._energy.tx_cost(self._frame_bits, self._range)
        sender.energy_used += cost
        if sender.battery is not None:
            sender.battery.drain(cost)
        for neighbor_id in self._neighbors[sender.node_id]:
            neighbor = self.nodes[neighbor_id]
            if not neighbor.alive:
                continue
            if self._loss > 0 and self._rng.random() < self._loss:
                self.stats.link_losses += 1
                continue
            rx_cost = self._energy.rx_cost(self._frame_bits)
            neighbor.energy_used += rx_cost
            if neighbor.battery is not None:
                neighbor.battery.drain(rx_cost)
            self._sim.schedule(self._latency, deliver, neighbor, *args)

    # ------------------------------------------------------------------
    # Phase 1: interests
    # ------------------------------------------------------------------
    def inject_interest(self, sink_id: int, interest: Interest) -> None:
        """A sink starts pulling named data."""
        if sink_id not in self.nodes:
            raise ValueError(f"unknown node {sink_id}")
        self._sinks[interest.name] = sink_id
        self._sink_deliveries.setdefault(interest.name, [])
        sink = self.nodes[sink_id]
        sink.seen_interests.add(interest.name)
        self.stats.interests_sent += 1
        self._transmit(sink, self._on_interest, interest, sink_id)
        # Sources begin exploratory sampling once interests settle.
        self._sim.schedule(1.0, self._start_sources, interest)

    def _on_interest(
        self, node: DiffusionNode, interest: Interest, from_id: int
    ) -> None:
        gradients = node.gradients.setdefault(interest.name, [])
        if all(g.toward != from_id for g in gradients):
            gradients.append(_Gradient(toward=from_id))
        if interest.name in node.seen_interests:
            return
        node.seen_interests.add(interest.name)
        self.stats.interests_sent += 1
        self._transmit(node, self._on_interest, interest, node.node_id)

    def _start_sources(self, interest: Interest) -> None:
        for node in self.nodes.values():
            if not node.is_source:
                continue
            task = PeriodicTask(
                self._sim,
                interest.interval,
                lambda n=node, i=interest: self._generate_event(n, i),
            )
            self._source_tasks.append(task)

    def stop(self) -> None:
        for task in self._source_tasks:
            task.stop()

    # ------------------------------------------------------------------
    # Phases 2-4: data, reinforcement, delivery
    # ------------------------------------------------------------------
    def _generate_event(self, source: DiffusionNode, interest: Interest) -> None:
        if not source.alive:
            return
        self._event_counter += 1
        event_id = self._event_counter
        self.stats.events_generated += 1
        source.seen_events.add((interest.name, event_id))
        reinforced = [
            g
            for g in source.gradients.get(interest.name, [])
            if g.reinforced
        ]
        if reinforced:
            self.stats.data_sent += 1
            self._transmit(
                source, self._on_data, interest, event_id, source.node_id, True
            )
        elif source.gradients.get(interest.name):
            # Exploratory phase: flood along all gradients.
            self.stats.exploratory_sent += 1
            self._transmit(
                source, self._on_data, interest, event_id, source.node_id, False
            )

    def _on_data(
        self,
        node: DiffusionNode,
        interest: Interest,
        event_id: int,
        from_id: int,
        reinforced_path: bool,
    ) -> None:
        key = (interest.name, event_id)
        if key in node.seen_events:
            self.stats.duplicates_suppressed += 1
            return
        node.seen_events.add(key)
        node.last_upstream[interest.name] = from_id
        if self._sinks.get(interest.name) == node.node_id:
            self._sink_deliveries[interest.name].append(
                (self._sim.now, event_id)
            )
            self.stats.events_delivered += 1
            # Reinforce the first neighbour to deliver an exploratory
            # event (two-phase pull's positive reinforcement); once the
            # path is reinforced, deliveries stop triggering this.
            if (
                not reinforced_path
                and interest.name not in node.reinforcement_done
            ):
                node.reinforcement_done.add(interest.name)
                self._send_reinforcement(node, interest, from_id)
            return
        gradients = node.gradients.get(interest.name, [])
        if not gradients:
            return
        if reinforced_path:
            chosen = [g for g in gradients if g.reinforced]
            if not chosen:
                return
            self.stats.data_sent += 1
        else:
            self.stats.exploratory_sent += 1
        self._transmit(
            node, self._on_data, interest, event_id, node.node_id,
            reinforced_path,
        )

    def _send_reinforcement(
        self, node: DiffusionNode, interest: Interest, toward: int
    ) -> None:
        self.stats.reinforcements_sent += 1
        neighbor = self.nodes[toward]
        self._sim.schedule(
            self._latency, self._on_reinforce, neighbor, interest,
            node.node_id,
        )

    def _on_reinforce(
        self, node: DiffusionNode, interest: Interest, from_id: int
    ) -> None:
        if interest.name in node.reinforcement_done:
            return  # idempotent: one reinforced path per interest
        node.reinforcement_done.add(interest.name)
        # Mark the downstream gradient (toward the sink) as reinforced:
        # this node now forwards full-rate data only toward from_id. In
        # directed diffusion a reinforcement *is* a (higher-rate)
        # interest, so it (re)creates the gradient if the original
        # interest frame was lost on this link.
        gradients = node.gradients.setdefault(interest.name, [])
        if all(g.toward != from_id for g in gradients):
            gradients.append(_Gradient(toward=from_id))
        for gradient in gradients:
            gradient.reinforced = gradient.toward == from_id
        if node.is_source:
            return
        # Follow the reverse of the exploratory data path toward the
        # source (the neighbour the first fresh event arrived from).
        upstream = node.last_upstream.get(interest.name)
        if upstream is not None:
            self._send_reinforcement(node, interest, upstream)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def deliveries(self, name: str) -> list[tuple[float, int]]:
        return list(self._sink_deliveries.get(name, []))

    def delivery_ratio(self, name: str) -> float:
        if self.stats.events_generated == 0:
            return 0.0
        return len(self._sink_deliveries.get(name, [])) / (
            self.stats.events_generated
        )

    def total_energy(self) -> float:
        return sum(node.energy_used for node in self.nodes.values())

    def energy_per_delivered_event(self, name: str) -> float:
        delivered = len(self._sink_deliveries.get(name, []))
        if delivered == 0:
            return float("inf")
        return self.total_energy() / delivered

    def total_routing_state(self) -> int:
        """Gradient entries across the field — the in-network state cost
        Garnet's stateless sensors avoid entirely."""
        return sum(node.routing_entries() for node in self.nodes.values())
