"""The database-centric access model Garnet argues against (Section 2).

"Our approach contrasts with others such as [14, 15], which adopt a
database-centric view of querying and sharing sensor data, and where the
extent of application-level involvement is restricted to issuing queries
on the data. Such approaches lack the flexibility required to support a
suitable abstraction for direct programmer manipulation. Also, the
restricted view of the sensed data only allows specific combinations of
queries to be answered."

This baseline makes those restrictions executable:

- sensor readings land in a central :class:`SensorDatabase`;
- applications may only issue :class:`TemplateQuery` instances drawn
  from a fixed template catalogue (latest / window-aggregate /
  threshold-count) — arbitrary processing is *not expressible*;
- there is no return path: :meth:`SensorDatabase.actuate` always raises
  :class:`ActuationNotSupported`.

Experiment E9 runs the same application workload against Garnet and this
baseline and reports which application requirements each can satisfy.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.errors import GarnetError


class ActuationNotSupported(GarnetError):
    """Database-centric deployments expose no sensor control path."""


class QueryTemplate(enum.Enum):
    """The fixed query combinations the database can answer."""

    LATEST = "latest"
    WINDOW_MEAN = "window_mean"
    WINDOW_MIN = "window_min"
    WINDOW_MAX = "window_max"
    COUNT_ABOVE = "count_above"


@dataclass(frozen=True, slots=True)
class TemplateQuery:
    """A query instance: a template plus its parameters."""

    template: QueryTemplate
    stream_key: str
    window: int = 1
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be at least 1")


@dataclass(frozen=True, slots=True)
class Reading:
    time: float
    value: float


class SensorDatabase:
    """Central store of recent readings, queryable by template only."""

    def __init__(self, history_per_stream: int = 1024) -> None:
        if history_per_stream < 1:
            raise ValueError("history_per_stream must be at least 1")
        self._history = history_per_stream
        self._tables: dict[str, deque[Reading]] = {}
        self.inserts = 0
        self.queries_served = 0

    # ------------------------------------------------------------------
    def insert(self, stream_key: str, time: float, value: float) -> None:
        """Ingest one reading (called by the gateway consumer)."""
        table = self._tables.get(stream_key)
        if table is None:
            table = deque(maxlen=self._history)
            self._tables[stream_key] = table
        table.append(Reading(time, value))
        self.inserts += 1

    def streams(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    def query(self, query: TemplateQuery) -> float | None:
        """Answer one template query; None when no data matches."""
        self.queries_served += 1
        table = self._tables.get(query.stream_key)
        if not table:
            return None
        if query.template is QueryTemplate.LATEST:
            return table[-1].value
        recent = [r.value for r in list(table)[-query.window :]]
        if query.template is QueryTemplate.WINDOW_MEAN:
            return sum(recent) / len(recent)
        if query.template is QueryTemplate.WINDOW_MIN:
            return min(recent)
        if query.template is QueryTemplate.WINDOW_MAX:
            return max(recent)
        if query.template is QueryTemplate.COUNT_ABOVE:
            return float(
                sum(1 for value in recent if value > query.threshold)
            )
        raise ValueError(f"unknown template {query.template!r}")

    # ------------------------------------------------------------------
    def actuate(self, stream_key: str, command: str, value=None) -> None:
        """The missing return path: always refused.

        Habitat-monitoring deployments permit "only short-range, direct
        diagnostic level network interfacing" (Section 7) — application-
        level reconfiguration is simply not part of the model.
        """
        raise ActuationNotSupported(
            "database-centric access provides no application-level "
            f"control path (attempted {command!r} on {stream_key!r}); "
            "reconfiguration requires direct diagnostic access to the node"
        )

    def supports(self, requirement: str) -> bool:
        """Capability probe used by the E9 comparison matrix."""
        return requirement in {
            "query.latest",
            "query.aggregate",
            "query.threshold",
        }
