"""Fjords-style sensor proxies and query sharing (Madden & Franklin).

Section 7: "They advocate the use of sensor proxies to permit a set of
queries to operate over the same sensor stream, and show that the sharing
resulted in significant improvements to their ability to handle
simultaneous queries. Both the Fjord and Garnet architectures share the
notion of separating the consumer of the data from its source."

This is a compact but honest implementation of the mechanism: a
:class:`SensorProxy` fronts one physical sensor stream and feeds N
standing queries. The :class:`FjordEngine` can run in two modes —

- ``shared=True``: one tuple enters the proxy once and is pushed through
  every query (the Fjords design);
- ``shared=False``: each query maintains its own connection, so every
  tuple is fetched and processed once *per query* (the strawman Fjords
  improves on; with real sensors this also multiplies the sensor's
  transmission work).

Experiment E8 measures tuples processed and sensor transmissions under
both modes and compares against Garnet's dispatcher, which shares by
construction.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(slots=True)
class FjordQuery:
    """One standing query over a sensor stream.

    ``predicate`` filters tuples; ``window`` tuples are aggregated by
    ``aggregate`` into each result.
    """

    name: str
    predicate: Callable[[float], bool] = lambda value: True
    window: int = 1
    aggregate: Callable[[list[float]], float] = lambda xs: xs[-1]
    _buffer: list[float] = field(default_factory=list)
    results: list[float] = field(default_factory=list)
    tuples_processed: int = 0

    def push(self, value: float) -> None:
        self.tuples_processed += 1
        if not self.predicate(value):
            return
        self._buffer.append(value)
        if len(self._buffer) >= self.window:
            self.results.append(self.aggregate(self._buffer))
            self._buffer.clear()


class SensorProxy:
    """Fronts one sensor stream; the unit of sharing in Fjords.

    The proxy also models the demand-adaptation behaviour the paper
    likens to Garnet's Resource Manager: :meth:`desired_rate` is the
    highest rate any attached query wants, which the proxy would push
    down to the physical sensor.
    """

    def __init__(self, stream_name: str) -> None:
        self.stream_name = stream_name
        self._queries: list[tuple[FjordQuery, float]] = []
        self.tuples_ingested = 0

    def attach(self, query: FjordQuery, desired_rate: float = 1.0) -> None:
        self._queries.append((query, desired_rate))

    def detach(self, query: FjordQuery) -> None:
        self._queries = [
            (q, r) for q, r in self._queries if q is not query
        ]

    @property
    def query_count(self) -> int:
        return len(self._queries)

    def desired_rate(self) -> float:
        """The sampling rate the proxy asks of the sensor (max demand)."""
        if not self._queries:
            return 0.0
        return max(rate for _, rate in self._queries)

    def ingest(self, value: float) -> None:
        """One sensor tuple in, fanned to every query (shared path)."""
        self.tuples_ingested += 1
        for query, _ in self._queries:
            query.push(value)


@dataclass(slots=True)
class FjordRunReport:
    """What one engine run cost."""

    mode: str
    queries: int
    sensor_tuples: int
    sensor_transmissions: int
    tuples_processed: int
    results_produced: int


class FjordEngine:
    """Evaluates a set of queries over a recorded sensor tuple stream."""

    def __init__(self, shared: bool) -> None:
        self.shared = shared

    def run(
        self, tuples: list[float], queries: list[FjordQuery]
    ) -> FjordRunReport:
        """Process every tuple through every query; returns the bill.

        In shared mode the stream flows through one proxy; in unshared
        mode each query pulls its own copy of the stream, so the sensor
        effectively transmits once per query.
        """
        if self.shared:
            proxy = SensorProxy("bench")
            for query in queries:
                proxy.attach(query)
            for value in tuples:
                proxy.ingest(value)
            transmissions = len(tuples)
        else:
            for query in queries:
                for value in tuples:
                    query.push(value)
            transmissions = len(tuples) * len(queries)
        return FjordRunReport(
            mode="shared" if self.shared else "unshared",
            queries=len(queries),
            sensor_tuples=len(tuples),
            sensor_transmissions=transmissions,
            tuples_processed=sum(q.tuples_processed for q in queries),
            results_produced=sum(len(q.results) for q in queries),
        )
