"""Garnet: middleware for distributing wireless-sensor data streams.

A full Python reproduction of L. St. Ville and P. Dickman, "Garnet: A
Middleware Architecture for Distributing Data Streams Originating in
Wireless Sensor Networks" (ICDCSW 2003), including the discrete-event
wireless substrate the original Java prototype ran over, every Figure 1
middleware service, the Figure 2 wire format, and the Section 7
comparison baselines.

Quickstart::

    from repro import Garnet, SensorStreamSpec, SampleCodec, SineSampler
    from repro.core.operators import CollectingConsumer
    from repro.core.dispatching import SubscriptionPattern

    deployment = Garnet(seed=1)
    deployment.define_sensor_type("thermometer", {"rate": "rate <= 10"})
    codec = SampleCodec(-10.0, 40.0)
    deployment.add_sensor(
        "thermometer",
        [SensorStreamSpec(0, SineSampler(15, 10, 3600), codec, kind="temp")],
    )
    sink = CollectingConsumer("sink", SubscriptionPattern(kind="temp"), codec)
    deployment.add_consumer(sink)
    deployment.run(60.0)
    print(len(sink.values), "readings")
"""

from repro.core.adaptive import AdaptiveRateController
from repro.core.config import GarnetConfig
from repro.core.consumer import Consumer
from repro.core.control import StreamUpdateCommand
from repro.core.dispatching import SubscriptionPattern
from repro.core.message import DataMessage, MessageCodec
from repro.core.middleware import Garnet
from repro.core.resource import StreamConfig
from repro.core.security import PayloadCipher, Permission
from repro.core.session import GarnetSession
from repro.core.streamid import StreamId
from repro.util.backoff import BackoffPolicy
from repro.sensors.node import SensorNode, SensorStreamSpec
from repro.sensors.sampling import SampleCodec, SineSampler

__version__ = "1.0.0"

__all__ = [
    "AdaptiveRateController",
    "BackoffPolicy",
    "Consumer",
    "DataMessage",
    "Garnet",
    "GarnetConfig",
    "GarnetSession",
    "MessageCodec",
    "PayloadCipher",
    "Permission",
    "SampleCodec",
    "SensorNode",
    "SensorStreamSpec",
    "SineSampler",
    "StreamConfig",
    "StreamId",
    "StreamUpdateCommand",
    "SubscriptionPattern",
    "__version__",
]
