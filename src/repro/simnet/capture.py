"""Radio-trace capture and replay.

Operational tooling a deployed Garnet installation needs: record the raw
frames crossing the wireless medium (timestamps, transmit position,
bytes), persist them, and replay them later into a fresh middleware
stack — for debugging, regression-testing middleware changes against
production traffic, or feeding recorded field campaigns through new
consumers.

Replay exercises a strong architectural property: because sensors are
decoupled from the fixed network by the wire format alone (Section 5's
plug-and-play argument), a replayed trace is indistinguishable from live
sensors to every middleware service.

Format: one frame per line, ``<time> <x> <y> <hex payload>`` — trivially
greppable and diffable, which is the point of an ops trace format.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TextIO

from repro.errors import CodecError
from repro.simnet.geometry import Point
from repro.simnet.kernel import Simulator
from repro.simnet.wireless import WirelessMedium


@dataclass(frozen=True, slots=True)
class CapturedFrame:
    """One transmission as seen at the medium."""

    time: float
    origin: Point
    payload: bytes

    def to_line(self) -> str:
        return (
            f"{self.time:.9f} {self.origin.x:.3f} {self.origin.y:.3f} "
            f"{self.payload.hex()}"
        )

    @classmethod
    def from_line(cls, line: str) -> "CapturedFrame":
        parts = line.split()
        if len(parts) != 4:
            raise CodecError(
                f"malformed trace line ({len(parts)} fields): {line!r}"
            )
        try:
            return cls(
                time=float(parts[0]),
                origin=Point(float(parts[1]), float(parts[2])),
                payload=bytes.fromhex(parts[3]),
            )
        except ValueError as exc:
            raise CodecError(f"malformed trace line: {line!r}") from exc


class FrameCapture:
    """Records every transmission on a medium via its snooper hook.

    The capture sees all frames regardless of loss — it records what was
    *sent*, so a replay reproduces the transmissions and lets the replay
    medium make its own (seeded) loss decisions.
    """

    def __init__(self, sim: Simulator, medium: WirelessMedium) -> None:
        self._sim = sim
        self.frames: list[CapturedFrame] = []
        self._enabled = True
        medium.add_snooper(self._on_frame)

    def _on_frame(self, payload: bytes, origin: Point) -> None:
        if self._enabled:
            self.frames.append(
                CapturedFrame(
                    time=self._sim.now, origin=origin, payload=payload
                )
            )

    def pause(self) -> None:
        self._enabled = False

    def resume(self) -> None:
        self._enabled = True

    def __len__(self) -> int:
        return len(self.frames)

    def save(self, path: str | Path) -> int:
        """Write the trace; returns the number of frames written."""
        with open(path, "w") as handle:
            return self.write(handle)

    def write(self, handle: TextIO) -> int:
        for frame in self.frames:
            handle.write(frame.to_line() + "\n")
        return len(self.frames)


def load_trace(path: str | Path) -> list[CapturedFrame]:
    """Read a trace file; blank lines and ``#`` comments are skipped."""
    frames = []
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            frames.append(CapturedFrame.from_line(stripped))
    frames.sort(key=lambda f: f.time)
    return frames


class TraceReplayer:
    """Re-broadcasts a captured trace into a (fresh) wireless medium.

    Frame times are replayed relative to the first frame, offset from
    the moment :meth:`start` is called, so a trace captured at t≈1000 s
    plays back correctly into a simulation starting at t=0.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        frames: list[CapturedFrame],
        tx_range: float = 300.0,
    ) -> None:
        if tx_range <= 0:
            raise ValueError("tx_range must be positive")
        self._sim = sim
        self._medium = medium
        self._frames = sorted(frames, key=lambda f: f.time)
        self._tx_range = tx_range
        self.replayed = 0
        self._started = False

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def duration(self) -> float:
        """Virtual time span the replay will cover."""
        if len(self._frames) < 2:
            return 0.0
        return self._frames[-1].time - self._frames[0].time

    def start(self, time_scale: float = 1.0) -> None:
        """Schedule every frame; ``time_scale`` > 1 slows the replay."""
        if self._started:
            raise RuntimeError("replay already started")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._started = True
        if not self._frames:
            return
        base = self._frames[0].time
        for frame in self._frames:
            self._sim.schedule(
                (frame.time - base) * time_scale, self._replay_one, frame
            )

    def _replay_one(self, frame: CapturedFrame) -> None:
        self._medium.broadcast(
            frame.origin, frame.payload, tx_range=self._tx_range
        )
        self.replayed += 1
