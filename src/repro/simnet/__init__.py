"""Discrete-event simulation substrate for the Garnet reproduction.

The paper ran its Java prototype over real/simulated wireless hardware
(iPAQs and notebook PCs on IEEE 802.11b, Section 8). This package replaces
that testbed with a deterministic discrete-event simulation: a kernel with
a virtual clock (:mod:`repro.simnet.kernel`), an unreliable broadcast
wireless medium (:mod:`repro.simnet.wireless`), a reliable fixed network
for the middleware services (:mod:`repro.simnet.fixednet`), node mobility
models (:mod:`repro.simnet.mobility`) and metric collection
(:mod:`repro.simnet.trace`).
"""

from repro.simnet.capture import (
    CapturedFrame,
    FrameCapture,
    TraceReplayer,
    load_trace,
)
from repro.simnet.fixednet import FixedNetwork, RpcEndpoint
from repro.simnet.geometry import Circle, Point, Rect
from repro.simnet.kernel import EventHandle, Simulator
from repro.simnet.mobility import (
    MobilityModel,
    PathFollower,
    RandomWalk,
    RandomWaypoint,
    Stationary,
)
from repro.simnet.trace import LatencyRecorder, MetricRegistry, TimeSeries
from repro.simnet.wireless import RadioFrame, RadioListener, WirelessMedium

__all__ = [
    "CapturedFrame",
    "Circle",
    "EventHandle",
    "FixedNetwork",
    "FrameCapture",
    "TraceReplayer",
    "load_trace",
    "LatencyRecorder",
    "MetricRegistry",
    "MobilityModel",
    "PathFollower",
    "Point",
    "RadioFrame",
    "RadioListener",
    "RandomWalk",
    "RandomWaypoint",
    "Rect",
    "RpcEndpoint",
    "Simulator",
    "Stationary",
    "TimeSeries",
    "WirelessMedium",
]
