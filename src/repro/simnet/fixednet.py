"""The fixed network interconnecting Garnet's middleware services.

Figure 1 distinguishes two interaction styles on the fixed side:
*event-based message passing* (the data path: receivers → filtering →
dispatching → consumers) and *remote procedure call* (the control path:
consumers → resource manager → actuation service). :class:`FixedNetwork`
provides both over the simulation kernel:

- :meth:`send` delivers a one-way message to a named endpoint after a
  configurable latency (asynchronous message exchange, Section 3);
- :meth:`call` invokes a registered :class:`RpcEndpoint` method and
  delivers the result to a callback after a round trip.

The fixed network is reliable (Section 3 presumes replication for
fault-tolerance); unreliability lives exclusively in the wireless medium.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.errors import ConfigurationError, RegistrationError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.obs.tracing import Span, Tracer
from repro.simnet.kernel import Simulator


class FixedNetStats(RegistryBackedStats):
    """Counters for fixed-network traffic, used in overhead experiments."""

    PREFIX = "fixednet"

    messages: int = 0
    rpc_calls: int = 0
    dropped: int = 0
    """Messages whose destination had no inbox at delivery time."""


class RpcEndpoint:
    """Base class for services reachable by RPC.

    Subclasses expose methods named ``rpc_<operation>``; :meth:`FixedNetwork.call`
    dispatches to them by operation name. Keeping the prefix explicit means
    a service's internal methods are never remotely callable by accident.
    """

    def rpc_dispatch(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        handler = getattr(self, f"rpc_{operation}", None)
        if handler is None or not callable(handler):
            raise RegistrationError(
                f"{type(self).__name__} has no RPC operation {operation!r}"
            )
        return handler(*args, **kwargs)


class FixedNetwork:
    """Reliable asynchronous bus + RPC fabric among middleware services."""

    def __init__(
        self,
        sim: Simulator,
        message_latency: float = 0.0005,
        rpc_latency: float = 0.001,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if message_latency < 0 or rpc_latency < 0:
            raise ConfigurationError("latencies must be non-negative")
        self._sim = sim
        self._message_latency = message_latency
        self._rpc_latency = rpc_latency
        self._inboxes: dict[str, Callable[[Any], None]] = {}
        self._services: dict[str, RpcEndpoint] = {}
        self.stats = FixedNetStats(metrics)
        self._tracer = tracer

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def tracer(self) -> Tracer | None:
        return self._tracer

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Install (or remove) span tracing over send/deliver pairs."""
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Event-based message passing
    # ------------------------------------------------------------------
    def register_inbox(
        self, name: str, handler: Callable[[Any], None]
    ) -> None:
        """Attach a one-way message handler under a unique endpoint name."""
        if name in self._inboxes:
            raise RegistrationError(f"inbox {name!r} already registered")
        self._inboxes[name] = handler

    def unregister_inbox(self, name: str) -> None:
        self._inboxes.pop(name, None)

    def has_inbox(self, name: str) -> bool:
        return name in self._inboxes

    def send(self, destination: str, message: Any) -> None:
        """Deliver ``message`` to ``destination`` after the bus latency.

        The handler lookup happens at delivery time so a consumer that
        deregisters mid-flight simply drops the message, mirroring a
        process that exits with messages queued.
        """
        self.stats.messages += 1
        span = (
            self._tracer.begin("fixednet.deliver", destination=destination)
            if self._tracer is not None
            else None
        )
        self._sim.schedule(
            self._message_latency, self._deliver, destination, message, span
        )

    def _deliver(
        self, destination: str, message: Any, span: Span | None = None
    ) -> None:
        handler = self._inboxes.get(destination)
        if handler is None:
            self.stats.dropped += 1
            if span is not None and self._tracer is not None:
                self._tracer.finish(span, delivered=False)
            return
        if span is not None and self._tracer is not None:
            self._tracer.finish(span, delivered=True)
        handler(message)

    # ------------------------------------------------------------------
    # Remote procedure call
    # ------------------------------------------------------------------
    def register_service(self, name: str, service: RpcEndpoint) -> None:
        if name in self._services:
            raise RegistrationError(f"service {name!r} already registered")
        self._services[name] = service

    def call(
        self,
        service_name: str,
        operation: str,
        *args: Any,
        on_result: Callable[[Any], None] | None = None,
        **kwargs: Any,
    ) -> None:
        """Invoke ``operation`` on a registered service asynchronously.

        The call executes after one latency; ``on_result`` (if given) fires
        after the return latency. Exceptions raised by the service
        propagate to the caller's result callback as the result value when
        it accepts them, otherwise they abort the event — tests rely on
        loud failures rather than silently swallowed errors.
        """
        if service_name not in self._services:
            raise RegistrationError(f"unknown service {service_name!r}")
        self.stats.rpc_calls += 1
        self._sim.schedule(
            self._rpc_latency,
            self._invoke,
            service_name,
            operation,
            args,
            kwargs,
            on_result,
        )

    def call_sync(
        self, service_name: str, operation: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Invoke an operation immediately, bypassing simulated latency.

        Intended for tests and for intra-service queries where Figure 1
        shows a direct lookup (e.g. replicator → location service), where
        modelling the latency separately would double-count it.
        """
        service = self._services.get(service_name)
        if service is None:
            raise RegistrationError(f"unknown service {service_name!r}")
        self.stats.rpc_calls += 1
        return service.rpc_dispatch(operation, *args, **kwargs)

    def _invoke(
        self,
        service_name: str,
        operation: str,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        on_result: Callable[[Any], None] | None,
    ) -> None:
        service = self._services[service_name]
        result = service.rpc_dispatch(operation, *args, **kwargs)
        if on_result is not None:
            self._sim.schedule(self._rpc_latency, on_result, result)
