"""The fixed network interconnecting Garnet's middleware services.

Figure 1 distinguishes two interaction styles on the fixed side:
*event-based message passing* (the data path: receivers → filtering →
dispatching → consumers) and *remote procedure call* (the control path:
consumers → resource manager → actuation service). :class:`FixedNetwork`
provides both over the simulation kernel:

- :meth:`send` delivers a one-way message to a named endpoint after a
  configurable latency (asynchronous message exchange, Section 3);
- :meth:`call` invokes a registered :class:`RpcEndpoint` method and
  delivers the result to a callback after a round trip.

Section 3 presumes replication for fault-tolerance on the fixed side; the
reproduction makes that assumption explicit and *testable*. The network
can be partitioned and healed (:meth:`partition` / :meth:`heal`), its
latency inflated (:meth:`set_latency_factor`), and — when a
:class:`~repro.util.backoff.BackoffPolicy` is installed — a delivery that
finds its destination unreachable is parked on a retry queue with
jittered exponential backoff instead of silently vanishing. Deliveries
that exhaust their retries (or fail with no retry policy configured) go
through the *dead-letter hook* so callers can react, and are counted as
``fixednet.dead_lettered``.

With a breaker policy installed (:meth:`set_breaker_policy`,
``repro.qos``), each delivery destination additionally sits behind a
circuit breaker: repeated dead-letters trip it open, further sends (and
queued retries) are dropped immediately as ``"circuit open"``, and after
the reset timeout a single half-open probe decides whether to close it.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from typing import Any

from repro.errors import ConfigurationError, RegistrationError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.obs.tracing import Span, Tracer
from repro.simnet.kernel import Simulator
from repro.transport.base import Transport
from repro.util.backoff import BackoffPolicy

#: ``hook(destination, message, reason)`` invoked for every dead letter.
DeadLetterHook = Callable[[str, Any, str], None]


class FixedNetStats(RegistryBackedStats):
    """Counters for fixed-network traffic, used in overhead experiments."""

    PREFIX = "fixednet"

    messages: int = 0
    rpc_calls: int = 0
    dropped: int = 0
    """Messages whose destination was unreachable at (final) delivery time."""
    dead_lettered: int = 0
    """Messages handed to the dead-letter hook after delivery gave up."""
    dead_letter_errors: int = 0
    """Dead-letter hook invocations that raised (and were isolated)."""


class RpcEndpoint:
    """Base class for services reachable by RPC.

    Subclasses expose methods named ``rpc_<operation>``; :meth:`FixedNetwork.call`
    dispatches to them by operation name. Keeping the prefix explicit means
    a service's internal methods are never remotely callable by accident.
    """

    def rpc_dispatch(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        handler = getattr(self, f"rpc_{operation}", None)
        if handler is None or not callable(handler):
            raise RegistrationError(
                f"{type(self).__name__} has no RPC operation {operation!r}"
            )
        return handler(*args, **kwargs)


class FixedNetwork(Transport):
    """Reliable asynchronous bus + RPC fabric among middleware services.

    The simulated implementation of the :class:`~repro.transport.base.
    Transport` seam: inboxes and sends ride the discrete-event kernel,
    with partitions, retry backoff and circuit breakers layered on the
    delivery path. The RPC fabric is an extension beyond the transport
    contract — only simulated deployments use it.
    """

    def __init__(
        self,
        sim: Simulator,
        message_latency: float = 0.0005,
        rpc_latency: float = 0.001,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        retry_policy: BackoffPolicy | None = None,
    ) -> None:
        if message_latency < 0 or rpc_latency < 0:
            raise ConfigurationError("latencies must be non-negative")
        self._sim = sim
        self._message_latency = message_latency
        self._rpc_latency = rpc_latency
        self._inboxes: dict[str, Callable[[Any], None]] = {}
        self._services: dict[str, RpcEndpoint] = {}
        self.stats = FixedNetStats(metrics)
        # send() runs once per routed message; increment the backing
        # counter directly instead of paying the stats property pair.
        # (FixedNetStats is never re-bound, so the cache cannot go stale.)
        self._messages_total = self.stats.counter("messages")
        self._tracer = tracer
        self._retry_policy = retry_policy
        # Forked only when retries can jitter, so deployments without a
        # retry policy keep their historical RNG stream layout.
        self._retry_rng: random.Random | None = (
            sim.fork_rng()
            if retry_policy is not None and retry_policy.jitter > 0
            else None
        )
        self._dead_letter: DeadLetterHook | None = None
        self._partitioned: set[str] = set()
        self._latency_factor = 1.0
        #: destination -> outbound hook; installed by the multiprocess
        #: cluster bridge so sends to inboxes owned by another process
        #: are shipped over a pipe instead of delivered locally. None
        #: (the default) keeps send() on its historical fast path.
        self._remote_routes: dict[str, Callable[[float, str, Any], None]] | None = None
        self._breaker_policy: Any | None = None
        self._breakers: dict[str, Any] | None = None
        registry = self.stats.registry
        self._retries = registry.counter(
            "resilience.fixednet_retries",
            help="redelivery attempts scheduled for unreachable endpoints",
        )
        self._redelivered = registry.counter(
            "resilience.fixednet_redelivered",
            help="messages delivered successfully after at least one retry",
        )

    @property
    def sim(self) -> Simulator:
        return self._sim

    @property
    def tracer(self) -> Tracer | None:
        return self._tracer

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Install (or remove) span tracing over send/deliver pairs."""
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Fault & resilience controls
    # ------------------------------------------------------------------
    @property
    def retry_policy(self) -> BackoffPolicy | None:
        return self._retry_policy

    def set_retry_policy(self, policy: BackoffPolicy | None) -> None:
        """Install (or remove) redelivery for unreachable endpoints."""
        self._retry_policy = policy
        if policy is not None and policy.jitter > 0 and self._retry_rng is None:
            self._retry_rng = self._sim.fork_rng()

    def set_dead_letter(self, hook: DeadLetterHook | None) -> None:
        """Observe messages the network finally gave up on.

        ``hook(destination, message, reason)`` fires once per abandoned
        message, after any configured retries are exhausted. Exceptions
        from the hook are isolated and counted as
        ``fixednet.dead_letter_errors`` — the hook is observability
        riding on the delivery path, and a broken observer must not
        abort the retry-queue drain that invoked it (the same isolation
        PR 1 gave ControlPath actuation observers).
        """
        if hook is not None and not callable(hook):
            raise ConfigurationError("dead-letter hook must be callable")
        self._dead_letter = hook

    def _dead_lettered(self, destination: str, message: Any, reason: str) -> None:
        self.stats.dropped += 1
        self.stats.dead_lettered += 1
        # Breakers guard message-path endpoints: short-circuit drops have
        # already been recorded, and RPC "service down" losses are the
        # crash-fault model's territory, not an endpoint health signal.
        if (
            self._breakers is not None
            and not reason.startswith("circuit")
            and reason != "service down"
        ):
            breaker = self._breaker_for(destination)
            if breaker.record_failure(self._sim.now):
                self._breaker_opened.inc()
        if self._dead_letter is not None:
            try:
                self._dead_letter(destination, message, reason)
            except Exception:
                self.stats.dead_letter_errors += 1

    # ------------------------------------------------------------------
    # Circuit breakers (repro.qos)
    # ------------------------------------------------------------------
    def set_breaker_policy(self, policy: Any | None) -> None:
        """Install per-endpoint circuit breakers on the delivery path.

        ``policy`` is a :class:`~repro.qos.breaker.BreakerPolicy` (any
        object with a ``build()`` factory works; the network stays
        decoupled from the qos package). With breakers installed, an
        endpoint that keeps dead-lettering trips open: deliveries —
        including queued retries re-entering the path — are dropped
        immediately with reason ``"circuit open"`` instead of burning a
        retry schedule each, until a half-open probe succeeds.
        """
        if policy is None:
            self._breaker_policy = None
            self._breakers = None
            return
        if not hasattr(policy, "build"):
            raise ConfigurationError(
                f"breaker policy must provide build(), got {policy!r}"
            )
        self._breaker_policy = policy
        self._breakers = {}
        registry = self.stats.registry
        self._breaker_opened = registry.counter(
            "qos.breaker_opened",
            help="circuit breakers tripped open by repeated dead-letters",
        )
        self._breaker_closed = registry.counter(
            "qos.breaker_closed",
            help="circuit breakers closed again after a successful probe",
        )
        self._breaker_probes = registry.counter(
            "qos.breaker_probes",
            help="half-open probe deliveries attempted",
        )
        self._breaker_short_circuits = registry.counter(
            "qos.breaker_short_circuits",
            help="deliveries refused outright by an open breaker",
        )

    def _breaker_for(self, destination: str) -> Any:
        breaker = self._breakers.get(destination)
        if breaker is None:
            breaker = self._breaker_policy.build()
            self._breakers[destination] = breaker
        return breaker

    def breaker_state(self, destination: str) -> str | None:
        """The breaker state for ``destination`` (None = no breakers)."""
        if self._breakers is None:
            return None
        breaker = self._breakers.get(destination)
        return breaker.state if breaker is not None else "closed"

    def partition(self, endpoints: Iterable[str]) -> None:
        """Sever the named endpoints from the bus until :meth:`heal`.

        Messages to a partitioned endpoint behave exactly like messages
        to a missing inbox: they retry (when a policy is installed) and
        eventually dead-letter. RPC services are unaffected — a partition
        models losing the links to consumer processes, not the middleware
        host itself (crash faults model that).
        """
        self._partitioned.update(endpoints)

    def heal(self, endpoints: Iterable[str] | None = None) -> None:
        """Restore partitioned endpoints (all of them when None)."""
        if endpoints is None:
            self._partitioned.clear()
        else:
            self._partitioned.difference_update(endpoints)

    def is_partitioned(self, name: str) -> bool:
        return name in self._partitioned

    @property
    def latency_factor(self) -> float:
        return self._latency_factor

    def set_latency_factor(self, factor: float) -> None:
        """Scale both message and RPC latency (latency-spike faults)."""
        if factor <= 0:
            raise ConfigurationError(
                f"latency factor must be positive, got {factor}"
            )
        self._latency_factor = factor

    # ------------------------------------------------------------------
    # Event-based message passing
    # ------------------------------------------------------------------
    def register_inbox(
        self, name: str, handler: Callable[[Any], None]
    ) -> None:
        """Attach a one-way message handler under a unique endpoint name."""
        if name in self._inboxes:
            raise RegistrationError(f"inbox {name!r} already registered")
        self._inboxes[name] = handler

    def unregister_inbox(self, name: str) -> None:
        self._inboxes.pop(name, None)

    def inbox_names(self) -> list[str]:
        """Every registered inbox endpoint name (multiprocess routing)."""
        return list(self._inboxes)

    def set_remote_route(
        self,
        destination: str,
        outbound: Callable[[float, str, Any], None],
    ) -> None:
        """Divert sends to ``destination`` through ``outbound``.

        Installed by the multiprocess cluster bridge
        (:mod:`repro.cluster.mp`): instead of scheduling a local
        delivery, ``send`` calls ``outbound(arrival_time, destination,
        message)`` so the process that owns the inbox can
        :meth:`inject` the delivery at exactly the arrival time this
        network would have used.
        """
        if self._remote_routes is None:
            self._remote_routes = {}
        self._remote_routes[destination] = outbound

    def clear_remote_routes(self) -> None:
        """Drop every remote route; sends become local again."""
        self._remote_routes = None

    def inject(self, arrival_time: float, destination: str, message: Any) -> None:
        """Schedule a delivery shipped from another process.

        ``arrival_time`` was computed by the *sending* process's network
        (send time plus bus latency); the multiprocess barrier protocol
        guarantees it is still in this process's future, so a
        :class:`SchedulingError` here means a lookahead violation, not a
        recoverable condition.
        """
        self._sim.schedule_at(
            arrival_time, self._deliver, destination, message, None
        )

    def extract_pending_for(
        self, destinations: "set[str] | frozenset[str]"
    ) -> list[tuple[float, str, Any]]:
        """Cancel queued deliveries bound for ``destinations``.

        Returns ``(arrival_time, destination, message)`` triples in
        schedule order. The multiprocess bridge uses this at activation
        time: deliveries scheduled while the deployment was being built
        (interest broadcasts, advertisements) predate the remote routes,
        so the parent sweeps its queue and ships them to the owning
        worker, which :meth:`inject`\\ s them at their original times.
        """
        deliver = self._deliver
        matched = []
        for handle in self._sim.iter_pending():
            if handle.callback != deliver:
                continue
            args = handle.args
            if args and args[0] in destinations:
                matched.append(handle)
        matched.sort(key=lambda handle: (handle.time, handle.seq))
        extracted = []
        for handle in matched:
            handle.cancel()
            extracted.append((handle.time, handle.args[0], handle.args[1]))
        return extracted

    def has_inbox(self, name: str) -> bool:
        return name in self._inboxes

    def send(self, destination: str, message: Any) -> None:
        """Deliver ``message`` to ``destination`` after the bus latency.

        The handler lookup happens at delivery time so a consumer that
        deregisters mid-flight simply drops the message, mirroring a
        process that exits with messages queued — unless a retry policy
        is installed, in which case the message is retried with backoff
        and dead-lettered only after the policy gives up.
        """
        routes = self._remote_routes
        if routes is not None:
            outbound = routes.get(destination)
            if outbound is not None:
                # Ship (arrival_time, destination, message) to the
                # owning process; it schedules the delivery locally at
                # exactly the time this send() would have.
                self._messages_total.inc()
                outbound(
                    self._sim.now
                    + self._message_latency * self._latency_factor,
                    destination,
                    message,
                )
                return
        self._messages_total.inc()
        span = (
            self._tracer.begin("fixednet.deliver", destination=destination)
            if self._tracer is not None
            else None
        )
        self._sim.schedule(
            self._message_latency * self._latency_factor,
            self._deliver,
            destination,
            message,
            span,
        )

    def _deliver(
        self,
        destination: str,
        message: Any,
        span: Span | None = None,
        attempt: int = 0,
    ) -> None:
        breaker = (
            self._breaker_for(destination)
            if self._breakers is not None
            else None
        )
        if breaker is not None and not breaker.allow(self._sim.now):
            # Open breaker: drop now — no retry schedule, no probe. A
            # queued retry re-entering the path lands here too, so an
            # endpoint that tripped mid-backoff stops being hammered.
            if span is not None and self._tracer is not None:
                self._tracer.finish(span, delivered=False)
            self._breaker_short_circuits.inc()
            self._dead_lettered(destination, message, "circuit open")
            return
        probing = breaker is not None and breaker.state == "half_open"
        if probing:
            self._breaker_probes.inc()
        handler = self._inboxes.get(destination)
        reachable = (
            handler is not None and destination not in self._partitioned
        )
        if not reachable:
            if span is not None and self._tracer is not None:
                self._tracer.finish(span, delivered=False)
            if probing:
                # A failed probe re-opens immediately; retrying it would
                # defeat the point of probing one message at a time.
                breaker.record_failure(self._sim.now)
                self._breaker_opened.inc()
                self._dead_lettered(destination, message, "circuit probe failed")
                return
            policy = self._retry_policy
            if policy is not None and attempt < policy.max_attempts:
                next_attempt = attempt + 1
                self._retries.inc()
                self._sim.schedule(
                    policy.delay(next_attempt, self._retry_rng),
                    self._deliver,
                    destination,
                    message,
                    None,
                    next_attempt,
                )
                return
            reason = (
                "partitioned"
                if destination in self._partitioned
                else "no inbox"
            )
            if policy is not None:
                reason += f" after {attempt} retries"
            self._dead_lettered(destination, message, reason)
            return
        if span is not None and self._tracer is not None:
            self._tracer.finish(span, delivered=True)
        if attempt > 0:
            self._redelivered.inc()
        if breaker is not None and breaker.record_success(self._sim.now):
            self._breaker_closed.inc()
        handler(message)

    # ------------------------------------------------------------------
    # Remote procedure call
    # ------------------------------------------------------------------
    def register_service(self, name: str, service: RpcEndpoint) -> None:
        if name in self._services:
            raise RegistrationError(f"service {name!r} already registered")
        self._services[name] = service

    def unregister_service(self, name: str) -> None:
        """Remove a service from the RPC fabric (crash faults use this)."""
        self._services.pop(name, None)

    def has_service(self, name: str) -> bool:
        return name in self._services

    def call(
        self,
        service_name: str,
        operation: str,
        *args: Any,
        on_result: Callable[[Any], None] | None = None,
        **kwargs: Any,
    ) -> None:
        """Invoke ``operation`` on a registered service asynchronously.

        The call executes after one latency; ``on_result`` (if given) fires
        after the return latency. Exceptions raised by the service
        propagate to the caller's result callback as the result value when
        it accepts them, otherwise they abort the event — tests rely on
        loud failures rather than silently swallowed errors.
        """
        if service_name not in self._services:
            raise RegistrationError(f"unknown service {service_name!r}")
        self.stats.rpc_calls += 1
        self._sim.schedule(
            self._rpc_latency * self._latency_factor,
            self._invoke,
            service_name,
            operation,
            args,
            kwargs,
            on_result,
        )

    def call_sync(
        self, service_name: str, operation: str, *args: Any, **kwargs: Any
    ) -> Any:
        """Invoke an operation immediately, bypassing simulated latency.

        Intended for tests and for intra-service queries where Figure 1
        shows a direct lookup (e.g. replicator → location service), where
        modelling the latency separately would double-count it.
        """
        service = self._services.get(service_name)
        if service is None:
            raise RegistrationError(f"unknown service {service_name!r}")
        self.stats.rpc_calls += 1
        return service.rpc_dispatch(operation, *args, **kwargs)

    def _invoke(
        self,
        service_name: str,
        operation: str,
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        on_result: Callable[[Any], None] | None,
    ) -> None:
        service = self._services.get(service_name)
        if service is None:
            # The service crashed between call and invoke; the in-flight
            # RPC is lost exactly like a real request hitting a dead host.
            self._dead_lettered(
                service_name, (operation, args, kwargs), "service down"
            )
            return
        result = service.rpc_dispatch(operation, *args, **kwargs)
        if on_result is not None:
            self._sim.schedule(
                self._rpc_latency * self._latency_factor, on_result, result
            )
