"""Planar geometry for sensor fields, coverage zones and location estimates.

Sensors, receivers and transmitters live on a 2-D plane measured in
metres. Receivers have circular reception zones whose overlap produces
the duplicate messages the Filtering Service must eliminate (Section 4.2),
and the Location Service computes RSSI-weighted centroids over receiver
positions (Section 5, "Inferred location data").
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point (or displacement) in the 2-D sensor field, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        return Point(self.x * factor, self.y * factor)

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def unit(self) -> "Point":
        """Unit vector in this direction; the origin maps to itself."""
        length = self.norm()
        if length == 0.0:
            return Point(0.0, 0.0)
        return Point(self.x / length, self.y / length)

    def toward(self, target: "Point", step: float) -> "Point":
        """Move ``step`` metres toward ``target``, without overshooting."""
        gap = self.distance_to(target)
        if gap <= step or gap == 0.0:
            return target
        direction = (target - self).unit()
        return self + direction.scaled(step)


@dataclass(frozen=True, slots=True)
class Circle:
    """A circular region: reception zone, transmission footprint, estimate area."""

    center: Point
    radius: float

    def contains(self, point: Point) -> bool:
        return self.center.distance_to(point) <= self.radius

    def intersects(self, other: "Circle") -> bool:
        return (
            self.center.distance_to(other.center)
            <= self.radius + other.radius
        )

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle; deployments confine mobility inside one."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(f"degenerate rectangle {self}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def center(self) -> Point:
        return Point(
            (self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0
        )

    def contains(self, point: Point) -> bool:
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def clamp(self, point: Point) -> Point:
        """Project ``point`` onto the rectangle (nearest interior point)."""
        return Point(
            min(max(point.x, self.x_min), self.x_max),
            min(max(point.y, self.y_min), self.y_max),
        )

    def expanded(self, margin: float) -> "Rect":
        return Rect(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )


def weighted_centroid(
    points: Sequence[Point], weights: Sequence[float]
) -> Point:
    """Weighted mean of ``points``; the Location Service's core estimator.

    Raises ``ValueError`` on empty input or non-positive total weight.
    """
    if len(points) != len(weights):
        raise ValueError("points and weights must have the same length")
    if not points:
        raise ValueError("cannot take the centroid of no points")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError(f"total weight must be positive, got {total}")
    x = sum(p.x * w for p, w in zip(points, weights)) / total
    y = sum(p.y * w for p, w in zip(points, weights)) / total
    return Point(x, y)


def bounding_circle(points: Iterable[Point]) -> Circle:
    """A circle covering all ``points``: centroid-centred, max-distance radius.

    Not the minimal enclosing circle, but within a factor of two of it and
    O(n); used by the Message Replicator to turn a set of candidate sensor
    positions into a broadcast target area.
    """
    pts = list(points)
    if not pts:
        raise ValueError("cannot bound an empty point set")
    centroid = weighted_centroid(pts, [1.0] * len(pts))
    radius = max(centroid.distance_to(p) for p in pts)
    return Circle(centroid, radius)


def grid_positions(area: Rect, rows: int, cols: int) -> list[Point]:
    """Evenly spaced grid positions inside ``area`` (cell centres).

    Used to lay out receiver and transmitter arrays whose zones overlap by
    a controllable factor.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    cell_w = area.width / cols
    cell_h = area.height / rows
    return [
        Point(
            area.x_min + (c + 0.5) * cell_w,
            area.y_min + (r + 0.5) * cell_h,
        )
        for r in range(rows)
        for c in range(cols)
    ]
