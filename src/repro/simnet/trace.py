"""Metric collection: counters, time series and latency statistics.

Every experiment in ``benchmarks/`` reads its results through these
recorders instead of scraping service internals, which keeps the
measurement surface stable while services evolve.
"""

from __future__ import annotations

import math
from bisect import insort
from collections import defaultdict
from dataclasses import dataclass, field


class MetricRegistry:
    """Named counters shared by a deployment's services."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = defaultdict(float)

    def increment(self, name: str, amount: float = 1.0) -> None:
        self._counters[name] += amount

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def snapshot(self) -> dict[str, float]:
        """A copy of all counters, for reporting."""
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()


@dataclass(slots=True)
class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    name: str = ""
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time {time} precedes last sample {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.values[-1]

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def rate(self) -> float:
        """Samples per second over the observed span (0 if degenerate)."""
        if len(self.times) < 2:
            return 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return 0.0
        return (len(self.times) - 1) / span


class LatencyRecorder:
    """Streaming latency statistics with exact quantiles.

    Samples are kept in sorted order (``bisect.insort``); deployments in
    this library record at most tens of thousands of latencies per run, so
    the O(n) insert is cheaper than maintaining a sketch and keeps the
    quantiles exact for EXPERIMENTS.md.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._sorted: list[float] = []
        self._sum = 0.0

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        insort(self._sorted, latency)
        self._sum += latency

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        if not self._sorted:
            return math.nan
        return self._sum / len(self._sorted)

    @property
    def minimum(self) -> float:
        return self._sorted[0] if self._sorted else math.nan

    @property
    def maximum(self) -> float:
        return self._sorted[-1] if self._sorted else math.nan

    def quantile(self, q: float) -> float:
        """Exact q-quantile by linear interpolation; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self._sorted:
            return math.nan
        if len(self._sorted) == 1:
            return self._sorted[0]
        position = q * (len(self._sorted) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high or self._sorted[low] == self._sorted[high]:
            return self._sorted[low]
        fraction = position - low
        return self._sorted[low] * (1 - fraction) + self._sorted[high] * fraction

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p99": self.p99,
            "max": self.maximum,
        }
