"""Deterministic discrete-event simulation kernel.

All of Garnet's services, sensors and networks run on one
:class:`Simulator`: a priority queue of timestamped events, a virtual
clock and a single seeded random number generator. Determinism matters
because every experiment in ``benchmarks/`` must be reproducible
bit-for-bit; any component needing randomness must draw it from
:attr:`Simulator.rng` (or a stream forked via :meth:`Simulator.fork_rng`).

Events scheduled for the same instant fire in scheduling order (a
monotonic tiebreaker guarantees FIFO semantics), so causality within a
timestep is preserved.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Callable
from typing import Any

from repro.errors import SchedulingError, SimulationError


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        owner: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing. Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            # Let the simulator track live tombstone counts (and compact
            # the heap when they dominate). The owner is detached once
            # the event leaves the queue, so late cancels of executed
            # events cannot skew the count.
            owner._note_cancelled()

    def __lt__(self, other: "EventHandle") -> bool:
        # Branching beats building two tuples per comparison; heappush
        # compares O(log n) times per scheduled event.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time:.6f} {name} {state}>"


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random number generator.

    Examples
    --------
    >>> sim = Simulator(seed=7)
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list[EventHandle] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._cancelled = 0
        self.rng = random.Random(seed)
        self._seed = seed
        self._fork_count = 0
        self._probe: Any = None

    @property
    def probe(self) -> Any:
        """The installed kernel probe, if any (see :meth:`set_probe`)."""
        return self._probe

    def set_probe(self, probe: Any) -> None:
        """Install an observability probe (or None to remove it).

        A probe exposes ``on_schedule(handle, delay)``, called for every
        accepted event, and ``on_executed(handle, queue_depth)``, called
        after each callback runs. Probes observe only — they cannot alter
        event order, so determinism is unaffected.
        """
        if probe is not None and (
            not callable(getattr(probe, "on_schedule", None))
            or not callable(getattr(probe, "on_executed", None))
        ):
            raise SimulationError(
                "probe must expose on_schedule() and on_executed()"
            )
        self._probe = probe

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying queue slots as tombstones.

        Tombstones are dropped lazily: when one reaches the head of the
        queue, or wholesale when they outnumber live events (see
        :meth:`_note_cancelled`).
        """
        return self._cancelled

    def _note_cancelled(self) -> None:
        """Record one newly cancelled queued event; compact if warranted.

        Compaction rebuilds the heap without tombstones once they exceed
        half the queue (and are numerous enough to matter) — this keeps
        cancel-heavy workloads (ack timers, leases, retransmissions)
        from growing the queue without bound. The rebuild mutates
        ``self._queue`` in place because :meth:`run` holds a local
        reference to the list.
        """
        self._cancelled += 1
        queue = self._queue
        if self._cancelled > 64 and self._cancelled * 2 > len(queue):
            queue[:] = [h for h in queue if not h.cancelled]
            heapq.heapify(queue)
            self._cancelled = 0

    def iter_pending(self) -> list[EventHandle]:
        """Snapshot of the live (non-cancelled) queued events.

        Heap order, not execution order — callers needing execution
        order must sort on ``(time, seq)``. Used by process-migration
        sweeps (:meth:`FixedNetwork.extract_pending_for`) and debugging;
        not a hot path.
        """
        return [handle for handle in self._queue if not handle.cancelled]

    def clear_pending(self) -> int:
        """Drop every queued event; returns how many were discarded.

        Only sensible on a freshly forked worker process that must not
        replay the parent's timeline (the multiprocess cluster bridge
        re-seeds the worker's queue with injected deliveries instead).
        """
        dropped = len(self._queue) - self._cancelled
        self._queue.clear()
        self._cancelled = 0
        return dropped

    def fork_rng(self) -> random.Random:
        """Return an independent RNG derived deterministically from the seed.

        Components that consume randomness at data-dependent rates (e.g.
        the wireless loss model) should take a forked stream so that adding
        one component does not perturb every other component's draws.
        """
        self._fork_count += 1
        return random.Random(f"{self._seed}/{self._fork_count}")

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        # Body duplicated from schedule_at: this wrapper is the kernel's
        # hottest entry point (nearly every event arrives through it) and
        # the extra call frame was measurable end-to-end. Keep the two
        # bodies in lockstep — the probe must observe time - now computed
        # exactly as schedule_at would.
        now = self._now
        time = now + delay
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        handle = EventHandle(time, self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        probe = self._probe
        if probe is not None:
            probe.on_schedule(handle, time - now)
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        handle = EventHandle(time, self._seq, callback, args, self)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        probe = self._probe
        if probe is not None:
            probe.on_schedule(handle, time - self._now)
        return handle

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback`` at the current time, after pending same-time events."""
        return self.schedule_at(self._now, callback, *args)

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> int:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Parameters
        ----------
        until:
            Stop once the next event is later than this virtual time; the
            clock is advanced to ``until`` on a timed stop.
        max_events:
            Stop after executing this many events (guards runaway loops).

        Returns
        -------
        int
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        # Locals shave attribute lookups off the per-event cost; the
        # compaction in _note_cancelled mutates the queue list in place,
        # so this reference stays valid across callbacks that cancel.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                head = queue[0]
                if head.cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                if until is not None and head.time > until:
                    self._now = max(self._now, until)
                    break
                pop(queue)
                head.owner = None
                batch_time = head.time
                self._now = batch_time
                if not queue or queue[0].time != batch_time:
                    # Fast path: a lone event at this instant — skip the
                    # batch list allocation entirely.
                    head.callback(*head.args)
                    executed += 1
                    self._events_processed += 1
                    probe = self._probe
                    if probe is not None:
                        probe.on_executed(head, len(queue))
                    continue
                # Batch path: drain the whole same-instant run in one heap
                # sweep, then dispatch. Tombstones drop during the drain;
                # cancel-inside-batch (an earlier callback cancelling a
                # later same-instant event) is honoured by re-checking the
                # cancelled flag at dispatch. Events a callback schedules
                # *at* batch_time land back on the heap with a higher seq
                # and are picked up by the next iteration, preserving FIFO
                # order exactly as the one-at-a-time kernel did.
                batch = [head]
                append = batch.append
                budget = None if max_events is None else max_events - executed
                while queue and queue[0].time == batch_time:
                    if budget is not None and len(batch) >= budget:
                        break
                    nxt = pop(queue)
                    nxt.owner = None
                    if nxt.cancelled:
                        self._cancelled -= 1
                        continue
                    append(nxt)
                remaining = len(batch)
                for handle in batch:
                    remaining -= 1
                    if handle.cancelled:
                        continue
                    handle.callback(*handle.args)
                    executed += 1
                    self._events_processed += 1
                    probe = self._probe
                    if probe is not None:
                        # Report the depth the one-at-a-time kernel would
                        # have seen: heap plus the not-yet-dispatched tail
                        # of this batch.
                        probe.on_executed(handle, len(queue) + remaining)
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return executed

    def step(self) -> bool:
        """Execute exactly one pending event. Returns False when idle."""
        return self.run(max_events=1) == 1


class PeriodicTask:
    """Re-schedules a callback at a fixed period until stopped.

    Used for sensor sampling loops, coordinator evaluation ticks and
    actuation retransmission timers.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        *,
        start_delay: float | None = None,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._handle: EventHandle | None = None
        self._stopped = False
        first = period if start_delay is None else start_delay
        self._handle = sim.schedule(self._with_jitter(first), self._fire)

    @property
    def period(self) -> float:
        return self._period

    @period.setter
    def period(self, value: float) -> None:
        """Change the period; takes effect from the next (re)scheduling."""
        if value <= 0:
            raise SchedulingError(f"period must be positive, got {value}")
        self._period = value

    def _with_jitter(self, delay: float) -> float:
        if self._jitter <= 0:
            return delay
        return max(0.0, delay + self._sim.rng.uniform(-self._jitter, self._jitter))

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(
                self._with_jitter(self._period), self._fire
            )

    def stop(self) -> None:
        """Cancel any pending firing. Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
