"""Unreliable broadcast wireless medium.

This module models the wireless side of Figure 1: mobile sensors transmit
frames that any listener in range may receive. The model reproduces the
three traffic properties the middleware is built to cope with:

- **loss** — per-link Bernoulli loss whose probability grows toward the
  edge of the radio range, so roaming sensors fade out gradually
  (Section 4.2: sensors "occasionally roam outside the reception zone");
- **duplication** — every listener in range receives its own copy, so
  overlapping receiver zones deliver the same message several times
  (Section 4.2: overlap "causes potential duplication of data messages");
- **delay** — propagation at the speed of light plus serialisation at the
  configured bitrate, so larger payloads arrive later and frames from
  different transmitters interleave realistically.

The medium is honest about what radios know: listeners receive bytes and
an RSSI, never the transmitter's coordinates — location must be *inferred*
(Section 5).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError
from repro.simnet.geometry import Point
from repro.simnet.kernel import Simulator

_SPEED_OF_LIGHT = 3.0e8  # m/s


@dataclass(frozen=True, slots=True)
class RadioFrame:
    """One received copy of a transmission, as seen by a single listener."""

    payload: bytes
    rssi: float
    """Received signal strength indicator in dBm (log-distance model)."""
    sent_at: float
    received_at: float
    channel: int = 0


class RadioListener(Protocol):
    """Anything attached to the medium: receivers and receive-capable sensors."""

    @property
    def position(self) -> Point:
        """Current antenna position (queried at delivery time)."""
        ...

    def on_radio_receive(self, frame: RadioFrame) -> None:
        """Handle one received frame copy."""
        ...


@dataclass(slots=True)
class LossModel:
    """Distance-dependent Bernoulli loss.

    Loss probability is ``base`` inside ``good_fraction`` of the range and
    rises polynomially to ``edge`` at the range boundary:

    ``p(d) = base + (edge - base) * max(0, (d/R - g)/(1 - g)) ** exponent``
    """

    base: float = 0.02
    edge: float = 0.6
    good_fraction: float = 0.7
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0 or not 0.0 <= self.edge <= 1.0:
            raise ConfigurationError("loss probabilities must be in [0, 1]")
        if not 0.0 <= self.good_fraction < 1.0:
            raise ConfigurationError("good_fraction must be in [0, 1)")

    def loss_probability(self, distance: float, radio_range: float) -> float:
        if radio_range <= 0:
            return 1.0
        ratio = distance / radio_range
        if ratio > 1.0:
            return 1.0
        excess = max(0.0, (ratio - self.good_fraction))
        span = 1.0 - self.good_fraction
        scaled = (excess / span) ** self.exponent if span > 0 else 0.0
        return min(1.0, self.base + (self.edge - self.base) * scaled)


def log_distance_rssi(
    distance: float,
    tx_power_dbm: float = 0.0,
    path_loss_exponent: float = 2.4,
    reference_distance: float = 1.0,
    reference_loss_db: float = 40.0,
) -> float:
    """RSSI under the log-distance path-loss model (dBm)."""
    d = max(distance, reference_distance)
    loss = reference_loss_db + 10.0 * path_loss_exponent * math.log10(
        d / reference_distance
    )
    return tx_power_dbm - loss


@dataclass(slots=True)
class MediumStats:
    """Aggregate counters the duplicate-filtering experiment (E2) reads."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    out_of_range: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    burst_losses: int = 0
    """Losses that occurred while an injected drop burst was active."""


class WirelessMedium:
    """Broadcast medium connecting sensors, receivers and transmitters.

    Parameters
    ----------
    sim:
        The simulation kernel frames are scheduled on.
    bitrate:
        Serialisation rate in bits/second (default 250 kbit/s, typical for
        low-power sensor radios; the paper's 802.11b testbed corresponds to
        ``11e6``).
    loss_model:
        Per-link loss; ``None`` gives a perfectly reliable medium, handy in
        unit tests.
    per_hop_latency:
        Fixed MAC/processing latency added to every delivery.
    """

    def __init__(
        self,
        sim: Simulator,
        bitrate: float = 250_000.0,
        loss_model: LossModel | None = None,
        per_hop_latency: float = 0.001,
    ) -> None:
        if bitrate <= 0:
            raise ConfigurationError(f"bitrate must be positive: {bitrate}")
        if per_hop_latency < 0:
            raise ConfigurationError("per_hop_latency must be non-negative")
        self._sim = sim
        self._bitrate = bitrate
        self._loss_model = loss_model
        self._per_hop_latency = per_hop_latency
        self._listeners: list[tuple[RadioListener, float, int]] = []
        self._rng = sim.fork_rng()
        self.stats = MediumStats()
        self._snoopers: list[Callable[[bytes, Point], None]] = []
        self._extra_loss = 0.0

    @property
    def listener_count(self) -> int:
        return len(self._listeners)

    @property
    def extra_loss(self) -> float:
        """Additional loss probability injected by an active drop burst."""
        return self._extra_loss

    def set_extra_loss(self, probability: float) -> None:
        """Overlay a burst loss probability on every link (fault injection).

        The burst composes with the distance-dependent loss model as
        independent failure modes: a frame survives only if it survives
        both draws. Set to 0.0 to end the burst.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"extra loss probability must be in [0, 1]: {probability}"
            )
        self._extra_loss = probability

    def attach(
        self, listener: RadioListener, radio_range: float, channel: int = 0
    ) -> None:
        """Register a listener with the sensitivity range of its radio."""
        if radio_range <= 0:
            raise ConfigurationError(
                f"radio_range must be positive: {radio_range}"
            )
        self._listeners.append((listener, radio_range, channel))

    def detach(self, listener: RadioListener) -> None:
        """Remove a listener; unknown listeners are ignored."""
        self._listeners = [
            entry for entry in self._listeners if entry[0] is not listener
        ]

    def add_snooper(self, snooper: Callable[[bytes, Point], None]) -> None:
        """Observe every transmission regardless of range/loss (test hook)."""
        self._snoopers.append(snooper)

    def broadcast(
        self,
        origin: Point,
        payload: bytes,
        tx_range: float,
        channel: int = 0,
        exclude: RadioListener | None = None,
    ) -> int:
        """Transmit ``payload`` from ``origin``; returns scheduled deliveries.

        Each in-range listener independently survives the loss draw and,
        if it does, receives its own :class:`RadioFrame` after propagation
        plus serialisation delay. The transmitter itself can be passed as
        ``exclude`` so nodes do not hear their own frames.
        """
        if tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive: {tx_range}")
        now = self._sim.now
        self.stats.transmissions += 1
        self.stats.bytes_sent += len(payload)
        for snooper in self._snoopers:
            snooper(payload, origin)
        serialisation = len(payload) * 8.0 / self._bitrate
        scheduled = 0
        for listener, rx_range, rx_channel in self._listeners:
            if rx_channel != channel or listener is exclude:
                continue
            distance = origin.distance_to(listener.position)
            reach = min(tx_range, rx_range)
            if distance > reach:
                self.stats.out_of_range += 1
                continue
            if self._loss_model is not None:
                p_loss = self._loss_model.loss_probability(distance, reach)
                if self._extra_loss > 0.0:
                    # Independent failure modes: survive both or lose.
                    p_loss = 1.0 - (1.0 - p_loss) * (1.0 - self._extra_loss)
                if self._rng.random() < p_loss:
                    self.stats.losses += 1
                    if self._extra_loss > 0.0:
                        self.stats.burst_losses += 1
                    continue
            elif self._extra_loss > 0.0:
                if self._rng.random() < self._extra_loss:
                    self.stats.losses += 1
                    self.stats.burst_losses += 1
                    continue
            delay = (
                self._per_hop_latency
                + serialisation
                + distance / _SPEED_OF_LIGHT
            )
            frame = RadioFrame(
                payload=payload,
                rssi=log_distance_rssi(distance),
                sent_at=now,
                received_at=now + delay,
                channel=channel,
            )
            self._sim.schedule(delay, self._deliver, listener, frame)
            scheduled += 1
        return scheduled

    def _deliver(self, listener: RadioListener, frame: RadioFrame) -> None:
        self.stats.deliveries += 1
        self.stats.bytes_delivered += len(frame.payload)
        listener.on_radio_receive(frame)
