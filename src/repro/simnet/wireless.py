"""Unreliable broadcast wireless medium.

This module models the wireless side of Figure 1: mobile sensors transmit
frames that any listener in range may receive. The model reproduces the
three traffic properties the middleware is built to cope with:

- **loss** — per-link Bernoulli loss whose probability grows toward the
  edge of the radio range, so roaming sensors fade out gradually
  (Section 4.2: sensors "occasionally roam outside the reception zone");
- **duplication** — every listener in range receives its own copy, so
  overlapping receiver zones deliver the same message several times
  (Section 4.2: overlap "causes potential duplication of data messages");
- **delay** — propagation at the speed of light plus serialisation at the
  configured bitrate, so larger payloads arrive later and frames from
  different transmitters interleave realistically.

The medium is honest about what radios know: listeners receive bytes and
an RSSI, never the transmitter's coordinates — location must be *inferred*
(Section 5).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from operator import attrgetter
from typing import Protocol

from repro.errors import ConfigurationError
from repro.simnet.geometry import Point
from repro.simnet.kernel import Simulator
from repro.simnet.spatial import UniformGridIndex

_SPEED_OF_LIGHT = 3.0e8  # m/s

#: Below this many static listeners the grid's bookkeeping costs more
#: than the linear scan it avoids.
_MIN_INDEXED_LISTENERS = 16


@dataclass(frozen=True, slots=True)
class RadioFrame:
    """One received copy of a transmission, as seen by a single listener."""

    payload: bytes
    rssi: float
    """Received signal strength indicator in dBm (log-distance model)."""
    sent_at: float
    received_at: float
    channel: int = 0


# broadcast() builds one frozen RadioFrame per delivery; __new__ plus
# direct slot writes skips the generated __init__ frame (same trick as
# the codec's DataMessage fast path).
_NEW_FRAME = RadioFrame.__new__
_SET_FRAME_FIELD = object.__setattr__
_RSSI_CACHE_MAX = 65536


class RadioListener(Protocol):
    """Anything attached to the medium: receivers and receive-capable sensors."""

    @property
    def position(self) -> Point:
        """Current antenna position (queried at delivery time)."""
        ...

    def on_radio_receive(self, frame: RadioFrame) -> None:
        """Handle one received frame copy."""
        ...


@dataclass(slots=True)
class LossModel:
    """Distance-dependent Bernoulli loss.

    Loss probability is ``base`` inside ``good_fraction`` of the range and
    rises polynomially to ``edge`` at the range boundary:

    ``p(d) = base + (edge - base) * max(0, (d/R - g)/(1 - g)) ** exponent``
    """

    base: float = 0.02
    edge: float = 0.6
    good_fraction: float = 0.7
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0 or not 0.0 <= self.edge <= 1.0:
            raise ConfigurationError("loss probabilities must be in [0, 1]")
        if not 0.0 <= self.good_fraction < 1.0:
            raise ConfigurationError("good_fraction must be in [0, 1)")

    def loss_probability(self, distance: float, radio_range: float) -> float:
        if radio_range <= 0:
            return 1.0
        ratio = distance / radio_range
        if ratio > 1.0:
            return 1.0
        excess = max(0.0, (ratio - self.good_fraction))
        span = 1.0 - self.good_fraction
        scaled = (excess / span) ** self.exponent if span > 0 else 0.0
        return min(1.0, self.base + (self.edge - self.base) * scaled)


def log_distance_rssi(
    distance: float,
    tx_power_dbm: float = 0.0,
    path_loss_exponent: float = 2.4,
    reference_distance: float = 1.0,
    reference_loss_db: float = 40.0,
) -> float:
    """RSSI under the log-distance path-loss model (dBm)."""
    d = max(distance, reference_distance)
    loss = reference_loss_db + 10.0 * path_loss_exponent * math.log10(
        d / reference_distance
    )
    return tx_power_dbm - loss


class _Attachment:
    """One ``attach()`` call: a listener plus its radio parameters.

    ``seq`` is the attach-order serial number; candidate iteration sorts
    on it so loss-model RNG draws happen in exactly the order the
    unindexed linear scan produced them. ``position`` caches the antenna
    location for static listeners (queried once, at attach time).
    """

    __slots__ = ("listener", "radio_range", "channel", "seq", "static", "position")

    def __init__(
        self,
        listener: "RadioListener",
        radio_range: float,
        channel: int,
        seq: int,
        static: bool,
        position: Point | None,
    ) -> None:
        self.listener = listener
        self.radio_range = radio_range
        self.channel = channel
        self.seq = seq
        self.static = static
        self.position = position


@dataclass(slots=True)
class MediumStats:
    """Aggregate counters the duplicate-filtering experiment (E2) reads."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    out_of_range: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    burst_losses: int = 0
    """Losses that occurred while an injected drop burst was active."""


class WirelessMedium:
    """Broadcast medium connecting sensors, receivers and transmitters.

    Parameters
    ----------
    sim:
        The simulation kernel frames are scheduled on.
    bitrate:
        Serialisation rate in bits/second (default 250 kbit/s, typical for
        low-power sensor radios; the paper's 802.11b testbed corresponds to
        ``11e6``).
    loss_model:
        Per-link loss; ``None`` gives a perfectly reliable medium, handy in
        unit tests.
    per_hop_latency:
        Fixed MAC/processing latency added to every delivery.
    spatial_index:
        Maintain a uniform-grid index over *static* listeners so
        ``broadcast`` prunes out-of-range ones without visiting them.
        Pruning is exact, so disabling the index (the kill switch for
        A/B benchmarking) changes timing only, never results.
    """

    def __init__(
        self,
        sim: Simulator,
        bitrate: float = 250_000.0,
        loss_model: LossModel | None = None,
        per_hop_latency: float = 0.001,
        spatial_index: bool = True,
    ) -> None:
        if bitrate <= 0:
            raise ConfigurationError(f"bitrate must be positive: {bitrate}")
        if per_hop_latency < 0:
            raise ConfigurationError("per_hop_latency must be non-negative")
        self._sim = sim
        self._bitrate = bitrate
        self._loss_model = loss_model
        self._per_hop_latency = per_hop_latency
        self._attach_seq = 0
        #: Listeners whose position may change between broadcasts; always
        #: scanned linearly, in attach order (the pre-index behaviour).
        self._mobile: list[_Attachment] = []
        #: Listeners attached with ``static=True``; binned in the grid.
        self._static: list[_Attachment] = []
        self._static_by_listener: dict[int, list[_Attachment]] = {}
        self._static_channel_counts: dict[int, int] = {}
        self._use_spatial_index = spatial_index
        self._grid: UniformGridIndex | None = None
        self._rng = sim.fork_rng()
        #: distance -> RSSI memo. Static topologies re-broadcast over the
        #: same sensor/listener pairs every sampling round, so the
        #: log-distance computation repeats with identical inputs.
        self._rssi_cache: dict[float, float] = {}
        self.stats = MediumStats()
        self._snoopers: list[Callable[[bytes, Point], None]] = []
        self._extra_loss = 0.0

    @property
    def listener_count(self) -> int:
        return len(self._mobile) + len(self._static)

    @property
    def indexed_listener_count(self) -> int:
        """How many listeners sit in the static (grid-indexed) tier."""
        return len(self._static)

    @property
    def extra_loss(self) -> float:
        """Additional loss probability injected by an active drop burst."""
        return self._extra_loss

    def set_extra_loss(self, probability: float) -> None:
        """Overlay a burst loss probability on every link (fault injection).

        The burst composes with the distance-dependent loss model as
        independent failure modes: a frame survives only if it survives
        both draws. Set to 0.0 to end the burst.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"extra loss probability must be in [0, 1]: {probability}"
            )
        self._extra_loss = probability

    def attach(
        self,
        listener: RadioListener,
        radio_range: float,
        channel: int = 0,
        *,
        static: bool = False,
    ) -> None:
        """Register a listener with the sensitivity range of its radio.

        Pass ``static=True`` only when the listener's ``position`` never
        changes (fixed receivers, :class:`~repro.simnet.mobility.Stationary`
        sensors): static listeners are binned into the broadcast pruning
        index at their current position and are never re-queried. Mobile
        listeners keep the exhaustive per-broadcast scan.
        """
        if radio_range <= 0:
            raise ConfigurationError(
                f"radio_range must be positive: {radio_range}"
            )
        entry = _Attachment(
            listener,
            radio_range,
            channel,
            self._attach_seq,
            static,
            listener.position if static else None,
        )
        self._attach_seq += 1
        if static:
            self._static.append(entry)
            self._static_by_listener.setdefault(id(listener), []).append(entry)
            self._static_channel_counts[channel] = (
                self._static_channel_counts.get(channel, 0) + 1
            )
            if self._grid is not None:
                self._grid.insert(entry, entry.position)
        else:
            self._mobile.append(entry)

    def detach(self, listener: RadioListener) -> None:
        """Remove a listener; unknown listeners are ignored."""
        self._mobile = [
            entry for entry in self._mobile if entry.listener is not listener
        ]
        doomed = self._static_by_listener.pop(id(listener), None)
        if not doomed:
            return
        self._static = [
            entry for entry in self._static if entry.listener is not listener
        ]
        for entry in doomed:
            self._static_channel_counts[entry.channel] -= 1
            if self._grid is not None:
                self._grid.remove(entry)

    def add_snooper(self, snooper: Callable[[bytes, Point], None]) -> None:
        """Observe every transmission regardless of range/loss (test hook)."""
        self._snoopers.append(snooper)

    def broadcast(
        self,
        origin: Point,
        payload: bytes,
        tx_range: float,
        channel: int = 0,
        exclude: RadioListener | None = None,
    ) -> int:
        """Transmit ``payload`` from ``origin``; returns scheduled deliveries.

        Each in-range listener independently survives the loss draw and,
        if it does, receives its own :class:`RadioFrame` after propagation
        plus serialisation delay. The transmitter itself can be passed as
        ``exclude`` so nodes do not hear their own frames.

        Static listeners beyond ``tx_range`` are pruned through the grid
        index without being visited; candidates are then walked in attach
        order, so for every in-range listener the loss-model RNG draws —
        and therefore all downstream behaviour — are bit-identical to the
        exhaustive linear scan.
        """
        if tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive: {tx_range}")
        now = self._sim.now
        stats = self.stats
        stats.transmissions += 1
        stats.bytes_sent += len(payload)
        for snooper in self._snoopers:
            snooper(payload, origin)
        serialisation = len(payload) * 8.0 / self._bitrate
        scheduled = 0

        static = self._static
        static_candidates = static
        if (
            self._use_spatial_index
            and len(static) >= _MIN_INDEXED_LISTENERS
            and math.isfinite(tx_range)
        ):
            grid = self._ensure_grid(tx_range)
            if grid.cells_for_radius(tx_range) < len(static):
                static_candidates = grid.query_disc(origin, tx_range)
                static_candidates.sort(key=_SEQ_KEY)
        candidates = _merge_attach_order(static_candidates, self._mobile)

        loss_model = self._loss_model
        extra_loss = self._extra_loss
        rng_random = self._rng.random
        schedule_at = self._sim.schedule_at
        rssi_cache = self._rssi_cache
        hypot = math.hypot
        origin_x = origin.x
        origin_y = origin.y
        examined_static = 0
        for entry in candidates:
            if entry.channel != channel or entry.listener is exclude:
                continue
            if entry.static:
                examined_static += 1
                position = entry.position
            else:
                position = entry.listener.position
            # Inlined Point.distance_to (hypot is sign-insensitive, so
            # this is bit-identical to origin.distance_to(position)).
            distance = hypot(position.x - origin_x, position.y - origin_y)
            rx_range = entry.radio_range
            reach = tx_range if tx_range < rx_range else rx_range
            if distance > reach:
                stats.out_of_range += 1
                continue
            if loss_model is not None:
                p_loss = loss_model.loss_probability(distance, reach)
                if extra_loss > 0.0:
                    # Independent failure modes: survive both or lose.
                    p_loss = 1.0 - (1.0 - p_loss) * (1.0 - extra_loss)
                if rng_random() < p_loss:
                    stats.losses += 1
                    if extra_loss > 0.0:
                        stats.burst_losses += 1
                    continue
            elif extra_loss > 0.0:
                if rng_random() < extra_loss:
                    stats.losses += 1
                    stats.burst_losses += 1
                    continue
            delay = (
                self._per_hop_latency
                + serialisation
                + distance / _SPEED_OF_LIGHT
            )
            rssi = rssi_cache.get(distance)
            if rssi is None:
                if len(rssi_cache) >= _RSSI_CACHE_MAX:
                    # Mobile listeners produce ever-fresh distances;
                    # reset rather than grow without bound.
                    rssi_cache.clear()
                rssi = rssi_cache[distance] = log_distance_rssi(distance)
            # Construct the (frozen, slots) frame without the dataclass
            # __init__ frame; delivery scheduling bypasses the schedule()
            # wrapper the same way. Both are per-delivery costs.
            frame = _NEW_FRAME(RadioFrame)
            _SET_FRAME_FIELD(frame, "payload", payload)
            _SET_FRAME_FIELD(frame, "rssi", rssi)
            _SET_FRAME_FIELD(frame, "sent_at", now)
            _SET_FRAME_FIELD(frame, "received_at", now + delay)
            _SET_FRAME_FIELD(frame, "channel", channel)
            schedule_at(now + delay, self._deliver, entry.listener, frame)
            scheduled += 1

        # Grid-pruned static listeners are out of range by construction;
        # count them exactly as the linear scan would have, without the
        # visit. (When no pruning happened the bracket is zero.)
        total_static = self._static_channel_counts.get(channel, 0)
        if total_static > examined_static:
            excluded = 0
            if exclude is not None:
                excluded = sum(
                    1
                    for entry in self._static_by_listener.get(id(exclude), ())
                    if entry.channel == channel
                )
            stats.out_of_range += total_static - excluded - examined_static
        return scheduled

    def _ensure_grid(self, tx_range: float) -> UniformGridIndex:
        """The static-listener grid, (re)built so cells stay near the
        largest radio range seen — the cell-count/candidate-count sweet
        spot for disc queries."""
        grid = self._grid
        if grid is None or tx_range > grid.cell_size * 4.0:
            # Cells at half the radio range: a disc query's cell
            # bounding box then covers ~2x the disc area (vs ~5x with
            # range-sized cells), so fewer false candidates per query
            # at a still-trivial per-query cell count (~36).
            grid = UniformGridIndex(tx_range * 0.5)
            for entry in self._static:
                grid.insert(entry, entry.position)
            self._grid = grid
        return grid

    def _deliver(self, listener: RadioListener, frame: RadioFrame) -> None:
        self.stats.deliveries += 1
        self.stats.bytes_delivered += len(frame.payload)
        listener.on_radio_receive(frame)


_SEQ_KEY = attrgetter("seq")


def _merge_attach_order(
    static: list[_Attachment], mobile: list[_Attachment]
) -> list[_Attachment]:
    """Merge two attach-order-sorted entry lists, preserving the order."""
    if not mobile:
        return static
    if not static:
        return mobile
    merged: list[_Attachment] = []
    append = merged.append
    i = j = 0
    n_static, n_mobile = len(static), len(mobile)
    while i < n_static and j < n_mobile:
        left, right = static[i], mobile[j]
        if left.seq < right.seq:
            append(left)
            i += 1
        else:
            append(right)
            j += 1
    merged.extend(static[i:])
    merged.extend(mobile[j:])
    return merged
