"""Unreliable broadcast wireless medium.

This module models the wireless side of Figure 1: mobile sensors transmit
frames that any listener in range may receive. The model reproduces the
three traffic properties the middleware is built to cope with:

- **loss** — per-link Bernoulli loss whose probability grows toward the
  edge of the radio range, so roaming sensors fade out gradually
  (Section 4.2: sensors "occasionally roam outside the reception zone");
- **duplication** — every listener in range receives its own copy, so
  overlapping receiver zones deliver the same message several times
  (Section 4.2: overlap "causes potential duplication of data messages");
- **delay** — propagation at the speed of light plus serialisation at the
  configured bitrate, so larger payloads arrive later and frames from
  different transmitters interleave realistically.

The medium is honest about what radios know: listeners receive bytes and
an RSSI, never the transmitter's coordinates — location must be *inferred*
(Section 5).
"""

from __future__ import annotations

import math
from bisect import insort
from collections.abc import Callable
from dataclasses import dataclass
from operator import attrgetter
from typing import TYPE_CHECKING, Protocol

from repro.errors import ConfigurationError
from repro.simnet.geometry import Point
from repro.simnet.kernel import Simulator
from repro.simnet.spatial import UniformGridIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

try:  # numpy backs the opt-in vectorized broadcast path only.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

_SPEED_OF_LIGHT = 3.0e8  # m/s

#: Below this many static listeners the grid's bookkeeping costs more
#: than the linear scan it avoids.
_MIN_INDEXED_LISTENERS = 16

#: Below this many candidates the numpy dispatch overhead costs more
#: than the scalar loop it replaces; the vectorized medium falls back.
_MIN_VECTOR_CANDIDATES = 16

#: Static-tier entries whose cached position is re-validated per
#: broadcast (rotating cursor), bounding staleness detection latency to
#: ``ceil(len(static) / _STALE_SWEEP_BATCH)`` broadcasts.
_STALE_SWEEP_BATCH = 8


@dataclass(frozen=True, slots=True)
class RadioFrame:
    """One received copy of a transmission, as seen by a single listener."""

    payload: bytes
    rssi: float
    """Received signal strength indicator in dBm (log-distance model)."""
    sent_at: float
    received_at: float
    channel: int = 0


# broadcast() builds one frozen RadioFrame per delivery; __new__ plus
# direct slot writes skips the generated __init__ frame (same trick as
# the codec's DataMessage fast path).
_NEW_FRAME = RadioFrame.__new__
_SET_FRAME_FIELD = object.__setattr__
_RSSI_CACHE_MAX = 65536


class RadioListener(Protocol):
    """Anything attached to the medium: receivers and receive-capable sensors."""

    @property
    def position(self) -> Point:
        """Current antenna position (queried at delivery time)."""
        ...

    def on_radio_receive(self, frame: RadioFrame) -> None:
        """Handle one received frame copy."""
        ...


@dataclass(slots=True)
class LossModel:
    """Distance-dependent Bernoulli loss.

    Loss probability is ``base`` inside ``good_fraction`` of the range and
    rises polynomially to ``edge`` at the range boundary:

    ``p(d) = base + (edge - base) * max(0, (d/R - g)/(1 - g)) ** exponent``
    """

    base: float = 0.02
    edge: float = 0.6
    good_fraction: float = 0.7
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0 or not 0.0 <= self.edge <= 1.0:
            raise ConfigurationError("loss probabilities must be in [0, 1]")
        if not 0.0 <= self.good_fraction < 1.0:
            raise ConfigurationError("good_fraction must be in [0, 1)")

    def loss_probability(self, distance: float, radio_range: float) -> float:
        if radio_range <= 0:
            return 1.0
        ratio = distance / radio_range
        if ratio > 1.0:
            return 1.0
        excess = max(0.0, (ratio - self.good_fraction))
        span = 1.0 - self.good_fraction
        scaled = (excess / span) ** self.exponent if span > 0 else 0.0
        return min(1.0, self.base + (self.edge - self.base) * scaled)

    def loss_probability_array(self, distances, radio_ranges):
        """Vectorized :meth:`loss_probability` over numpy arrays.

        ``radio_ranges`` entries must be positive (the medium validates
        ranges at attach time); distances beyond the range map to 1.0
        exactly like the scalar path.
        """
        ratio = distances / radio_ranges
        span = 1.0 - self.good_fraction
        if span > 0:
            excess = _np.maximum(ratio - self.good_fraction, 0.0)
            scaled = (excess / span) ** self.exponent
        else:
            scaled = _np.zeros_like(ratio)
        p = _np.minimum(1.0, self.base + (self.edge - self.base) * scaled)
        return _np.where(ratio > 1.0, 1.0, p)


def log_distance_rssi(
    distance: float,
    tx_power_dbm: float = 0.0,
    path_loss_exponent: float = 2.4,
    reference_distance: float = 1.0,
    reference_loss_db: float = 40.0,
) -> float:
    """RSSI under the log-distance path-loss model (dBm)."""
    d = max(distance, reference_distance)
    loss = reference_loss_db + 10.0 * path_loss_exponent * math.log10(
        d / reference_distance
    )
    return tx_power_dbm - loss


def log_distance_rssi_array(
    distances,
    tx_power_dbm: float = 0.0,
    path_loss_exponent: float = 2.4,
    reference_distance: float = 1.0,
    reference_loss_db: float = 40.0,
):
    """Vectorized :func:`log_distance_rssi` over a numpy distance array."""
    d = _np.maximum(distances, reference_distance)
    loss = reference_loss_db + 10.0 * path_loss_exponent * _np.log10(
        d / reference_distance
    )
    return tx_power_dbm - loss


class _Attachment:
    """One ``attach()`` call: a listener plus its radio parameters.

    ``seq`` is the attach-order serial number; candidate iteration sorts
    on it so loss-model RNG draws happen in exactly the order the
    unindexed linear scan produced them. ``position`` caches the antenna
    location for static listeners (queried once, at attach time).
    """

    __slots__ = (
        "listener",
        "radio_range",
        "channel",
        "seq",
        "static",
        "position",
        "vec_index",
    )

    def __init__(
        self,
        listener: "RadioListener",
        radio_range: float,
        channel: int,
        seq: int,
        static: bool,
        position: Point | None,
    ) -> None:
        self.listener = listener
        self.radio_range = radio_range
        self.channel = channel
        self.seq = seq
        self.static = static
        self.position = position
        #: Index into the vectorized static-tier arrays; refreshed on
        #: every array rebuild, meaningless for mobile entries.
        self.vec_index = -1


@dataclass(slots=True)
class MediumStats:
    """Aggregate counters the duplicate-filtering experiment (E2) reads."""

    transmissions: int = 0
    deliveries: int = 0
    losses: int = 0
    out_of_range: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    burst_losses: int = 0
    """Losses that occurred while an injected drop burst was active."""
    rssi_cache_evicted: int = 0
    """RSSI memo entries discarded when the cache hit its cap."""
    spatial_fallbacks: int = 0
    """Static-tier entries demoted to the linear scan after moving."""


class WirelessMedium:
    """Broadcast medium connecting sensors, receivers and transmitters.

    Parameters
    ----------
    sim:
        The simulation kernel frames are scheduled on.
    bitrate:
        Serialisation rate in bits/second (default 250 kbit/s, typical for
        low-power sensor radios; the paper's 802.11b testbed corresponds to
        ``11e6``).
    loss_model:
        Per-link loss; ``None`` gives a perfectly reliable medium, handy in
        unit tests.
    per_hop_latency:
        Fixed MAC/processing latency added to every delivery.
    spatial_index:
        Maintain a uniform-grid index over *static* listeners so
        ``broadcast`` prunes out-of-range ones without visiting them.
        Pruning is exact, so disabling the index (the kill switch for
        A/B benchmarking) changes timing only, never results.
    vectorized:
        Compute the whole broadcast disc — distances, loss
        probabilities, RSSI and the survival draws — as numpy array
        operations with a *single* ``Generator.random(n)`` call per
        transmission, and deliver all surviving copies through one
        batched kernel event. The RNG draw order necessarily differs
        from the scalar path, so vectorized runs are pinned by their own
        golden digest (``VECTOR_GOLDEN_DIGEST``); with the flag off the
        medium stays byte-identical to the scalar implementation.
    metrics:
        Optional metrics registry; when given, rare-path counters
        (``wireless.rssi_cache_evicted``, ``wireless.spatial_fallback``)
        are mirrored into it.
    """

    def __init__(
        self,
        sim: Simulator,
        bitrate: float = 250_000.0,
        loss_model: LossModel | None = None,
        per_hop_latency: float = 0.001,
        spatial_index: bool = True,
        vectorized: bool = False,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if bitrate <= 0:
            raise ConfigurationError(f"bitrate must be positive: {bitrate}")
        if per_hop_latency < 0:
            raise ConfigurationError("per_hop_latency must be non-negative")
        if vectorized and _np is None:
            raise ConfigurationError(
                "wireless vectorization requires numpy, which is not installed"
            )
        self._sim = sim
        self._bitrate = bitrate
        self._loss_model = loss_model
        self._per_hop_latency = per_hop_latency
        self._attach_seq = 0
        #: Listeners whose position may change between broadcasts; always
        #: scanned linearly, in attach order (the pre-index behaviour).
        self._mobile: list[_Attachment] = []
        #: Listeners attached with ``static=True``; binned in the grid.
        self._static: list[_Attachment] = []
        self._static_by_listener: dict[int, list[_Attachment]] = {}
        self._static_channel_counts: dict[int, int] = {}
        self._use_spatial_index = spatial_index
        self._grid: UniformGridIndex | None = None
        self._rng = sim.fork_rng()
        self._vectorized = vectorized
        self._np_rng = None
        if vectorized:
            # Seeded from the medium's own forked stream so the flag
            # does not consume an extra Simulator.fork_rng() (which
            # would shift every later fork and change the deployment).
            self._np_rng = _np.random.Generator(
                _np.random.PCG64(self._rng.getrandbits(128))
            )
        #: Cached static-tier arrays for the vectorized path; rebuilt
        #: lazily whenever the static tier changes.
        self._vec_state: tuple | None = None
        self._vec_dirty = True
        self._sweep_cursor = 0
        #: distance -> RSSI memo. Static topologies re-broadcast over the
        #: same sensor/listener pairs every sampling round, so the
        #: log-distance computation repeats with identical inputs.
        self._rssi_cache: dict[float, float] = {}
        self.stats = MediumStats()
        if metrics is not None:
            self._evicted_counter = metrics.counter(
                "wireless.rssi_cache_evicted",
                "RSSI memo entries discarded when the cache hit its cap",
            )
            self._fallback_counter = metrics.counter(
                "wireless.spatial_fallback",
                "static-tier listeners demoted to the linear scan after moving",
            )
        else:
            self._evicted_counter = None
            self._fallback_counter = None
        self._snoopers: list[Callable[[bytes, Point], None]] = []
        self._extra_loss = 0.0

    @property
    def listener_count(self) -> int:
        return len(self._mobile) + len(self._static)

    @property
    def indexed_listener_count(self) -> int:
        """How many listeners sit in the static (grid-indexed) tier."""
        return len(self._static)

    @property
    def extra_loss(self) -> float:
        """Additional loss probability injected by an active drop burst."""
        return self._extra_loss

    def set_extra_loss(self, probability: float) -> None:
        """Overlay a burst loss probability on every link (fault injection).

        The burst composes with the distance-dependent loss model as
        independent failure modes: a frame survives only if it survives
        both draws. Set to 0.0 to end the burst.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"extra loss probability must be in [0, 1]: {probability}"
            )
        self._extra_loss = probability

    def attach(
        self,
        listener: RadioListener,
        radio_range: float,
        channel: int = 0,
        *,
        static: bool = False,
    ) -> None:
        """Register a listener with the sensitivity range of its radio.

        Pass ``static=True`` only when the listener's ``position`` never
        changes (fixed receivers, :class:`~repro.simnet.mobility.Stationary`
        sensors): static listeners are binned into the broadcast pruning
        index at their current position and are never re-queried. Mobile
        listeners keep the exhaustive per-broadcast scan.
        """
        if radio_range <= 0:
            raise ConfigurationError(
                f"radio_range must be positive: {radio_range}"
            )
        entry = _Attachment(
            listener,
            radio_range,
            channel,
            self._attach_seq,
            static,
            listener.position if static else None,
        )
        self._attach_seq += 1
        if static:
            self._static.append(entry)
            self._static_by_listener.setdefault(id(listener), []).append(entry)
            self._static_channel_counts[channel] = (
                self._static_channel_counts.get(channel, 0) + 1
            )
            if self._grid is not None:
                self._grid.insert(entry, entry.position)
        else:
            self._mobile.append(entry)
        self._vec_dirty = True

    def detach(self, listener: RadioListener) -> None:
        """Remove a listener; unknown listeners are ignored."""
        self._mobile = [
            entry for entry in self._mobile if entry.listener is not listener
        ]
        self._vec_dirty = True
        doomed = self._static_by_listener.pop(id(listener), None)
        if not doomed:
            return
        self._static = [
            entry for entry in self._static if entry.listener is not listener
        ]
        for entry in doomed:
            self._static_channel_counts[entry.channel] -= 1
            if self._grid is not None:
                self._grid.remove(entry)

    def notify_moved(self, listener: RadioListener) -> int:
        """Tell the medium a ``static=True`` listener has moved.

        All of the listener's static-tier entries are demoted to the
        linear-scan (mobile) tier — their cached position and grid bin
        are stale, and from now on the listener's live ``position`` is
        queried per broadcast. Returns how many entries were demoted.
        Callers that relocate a nominally static listener should invoke
        this immediately; the per-broadcast staleness sweep will catch a
        missed move eventually, but only after up to
        ``len(static) / _STALE_SWEEP_BATCH`` broadcasts.
        """
        entries = list(self._static_by_listener.get(id(listener), ()))
        for entry in entries:
            self._demote(entry)
        return len(entries)

    def _demote(self, entry: _Attachment) -> None:
        """Move a stale static-tier entry onto the linear-scan tier.

        Attach order (``seq``) is preserved across the move, so the
        candidate walk — and with it the scalar RNG draw order — is
        exactly what it would have been had the listener been attached
        mobile from the start.
        """
        self._static.remove(entry)
        key = id(entry.listener)
        bucket = self._static_by_listener.get(key)
        if bucket is not None:
            bucket.remove(entry)
            if not bucket:
                del self._static_by_listener[key]
        self._static_channel_counts[entry.channel] -= 1
        if self._grid is not None:
            self._grid.remove(entry)
        entry.static = False
        entry.position = None
        insort(self._mobile, entry, key=_SEQ_KEY)
        self._vec_dirty = True
        self.stats.spatial_fallbacks += 1
        if self._fallback_counter is not None:
            self._fallback_counter.inc()

    def _sweep_static_positions(self) -> None:
        """Re-validate a rotating slice of cached static positions.

        Static entries cache the listener's position object at attach
        time; a listener that moves afterwards would otherwise be heard
        at its stale coordinates forever (and pruned by a stale grid
        bin). Every broadcast re-checks up to ``_STALE_SWEEP_BATCH``
        entries by object identity — all genuinely static listeners
        return the same ``Point`` instance on every query, so the check
        costs one attribute load per entry and never perturbs RNG state.
        """
        static = self._static
        count = len(static)
        if count == 0:
            return
        cursor = self._sweep_cursor
        stale: list[_Attachment] | None = None
        for _ in range(min(_STALE_SWEEP_BATCH, count)):
            if cursor >= count:
                cursor = 0
            entry = static[cursor]
            if entry.listener.position is not entry.position:
                if stale is None:
                    stale = []
                stale.append(entry)
            cursor += 1
        self._sweep_cursor = cursor
        if stale is not None:
            for entry in stale:
                self._demote(entry)

    def add_snooper(self, snooper: Callable[[bytes, Point], None]) -> None:
        """Observe every transmission regardless of range/loss (test hook)."""
        self._snoopers.append(snooper)

    def broadcast(
        self,
        origin: Point,
        payload: bytes,
        tx_range: float,
        channel: int = 0,
        exclude: RadioListener | None = None,
    ) -> int:
        """Transmit ``payload`` from ``origin``; returns scheduled deliveries.

        Each in-range listener independently survives the loss draw and,
        if it does, receives its own :class:`RadioFrame` after propagation
        plus serialisation delay. The transmitter itself can be passed as
        ``exclude`` so nodes do not hear their own frames.

        Static listeners beyond ``tx_range`` are pruned through the grid
        index without being visited; candidates are then walked in attach
        order, so for every in-range listener the loss-model RNG draws —
        and therefore all downstream behaviour — are bit-identical to the
        exhaustive linear scan.
        """
        if tx_range <= 0:
            raise ConfigurationError(f"tx_range must be positive: {tx_range}")
        now = self._sim.now
        stats = self.stats
        stats.transmissions += 1
        stats.bytes_sent += len(payload)
        for snooper in self._snoopers:
            snooper(payload, origin)
        serialisation = len(payload) * 8.0 / self._bitrate
        if self._static:
            self._sweep_static_positions()
        if self._vectorized and (
            len(self._static) + len(self._mobile) >= _MIN_VECTOR_CANDIDATES
        ):
            return self._broadcast_vector(
                origin, payload, tx_range, channel, exclude, now, serialisation
            )
        scheduled = 0

        static = self._static
        static_candidates = static
        if (
            self._use_spatial_index
            and len(static) >= _MIN_INDEXED_LISTENERS
            and math.isfinite(tx_range)
        ):
            grid = self._ensure_grid(tx_range)
            if grid.cells_for_radius(tx_range) < len(static):
                static_candidates = grid.query_disc(origin, tx_range)
                static_candidates.sort(key=_SEQ_KEY)
        candidates = _merge_attach_order(static_candidates, self._mobile)

        loss_model = self._loss_model
        extra_loss = self._extra_loss
        rng_random = self._rng.random
        schedule_at = self._sim.schedule_at
        rssi_cache = self._rssi_cache
        hypot = math.hypot
        origin_x = origin.x
        origin_y = origin.y
        examined_static = 0
        for entry in candidates:
            if entry.channel != channel or entry.listener is exclude:
                continue
            if entry.static:
                examined_static += 1
                position = entry.position
            else:
                position = entry.listener.position
            # Inlined Point.distance_to (hypot is sign-insensitive, so
            # this is bit-identical to origin.distance_to(position)).
            distance = hypot(position.x - origin_x, position.y - origin_y)
            rx_range = entry.radio_range
            reach = tx_range if tx_range < rx_range else rx_range
            if distance > reach:
                stats.out_of_range += 1
                continue
            if loss_model is not None:
                p_loss = loss_model.loss_probability(distance, reach)
                if extra_loss > 0.0:
                    # Independent failure modes: survive both or lose.
                    p_loss = 1.0 - (1.0 - p_loss) * (1.0 - extra_loss)
                if rng_random() < p_loss:
                    stats.losses += 1
                    if extra_loss > 0.0:
                        stats.burst_losses += 1
                    continue
            elif extra_loss > 0.0:
                if rng_random() < extra_loss:
                    stats.losses += 1
                    stats.burst_losses += 1
                    continue
            delay = (
                self._per_hop_latency
                + serialisation
                + distance / _SPEED_OF_LIGHT
            )
            rssi = rssi_cache.get(distance)
            if rssi is None:
                if len(rssi_cache) >= _RSSI_CACHE_MAX:
                    # Mobile listeners produce ever-fresh distances;
                    # reset rather than grow without bound.
                    evicted = len(rssi_cache)
                    rssi_cache.clear()
                    stats.rssi_cache_evicted += evicted
                    if self._evicted_counter is not None:
                        self._evicted_counter.inc(evicted)
                rssi = rssi_cache[distance] = log_distance_rssi(distance)
            # Construct the (frozen, slots) frame without the dataclass
            # __init__ frame; delivery scheduling bypasses the schedule()
            # wrapper the same way. Both are per-delivery costs.
            frame = _NEW_FRAME(RadioFrame)
            _SET_FRAME_FIELD(frame, "payload", payload)
            _SET_FRAME_FIELD(frame, "rssi", rssi)
            _SET_FRAME_FIELD(frame, "sent_at", now)
            _SET_FRAME_FIELD(frame, "received_at", now + delay)
            _SET_FRAME_FIELD(frame, "channel", channel)
            schedule_at(now + delay, self._deliver, entry.listener, frame)
            scheduled += 1

        # Grid-pruned static listeners are out of range by construction;
        # count them exactly as the linear scan would have, without the
        # visit. (When no pruning happened the bracket is zero.)
        total_static = self._static_channel_counts.get(channel, 0)
        if total_static > examined_static:
            excluded = 0
            if exclude is not None:
                excluded = sum(
                    1
                    for entry in self._static_by_listener.get(id(exclude), ())
                    if entry.channel == channel
                )
            stats.out_of_range += total_static - excluded - examined_static
        return scheduled

    def _ensure_grid(self, tx_range: float) -> UniformGridIndex:
        """The static-listener grid, (re)built so cells stay near the
        largest radio range seen — the cell-count/candidate-count sweet
        spot for disc queries."""
        grid = self._grid
        if grid is None or tx_range > grid.cell_size * 4.0:
            # Cells at half the radio range: a disc query's cell
            # bounding box then covers ~2x the disc area (vs ~5x with
            # range-sized cells), so fewer false candidates per query
            # at a still-trivial per-query cell count (~36).
            grid = UniformGridIndex(tx_range * 0.5)
            for entry in self._static:
                grid.insert(entry, entry.position)
            self._grid = grid
        return grid

    def _vector_state(self) -> tuple:
        """Static-tier candidate arrays, rebuilt when the tier changes.

        Returns ``(entries, xs, ys, ranges, channels)`` with the numpy
        arrays aligned to the ``entries`` tuple; each entry's
        ``vec_index`` is refreshed so ``exclude`` masking is O(1).
        """
        state = self._vec_state
        if state is not None and not self._vec_dirty:
            return state
        static = self._static
        count = len(static)
        xs = _np.empty(count)
        ys = _np.empty(count)
        ranges = _np.empty(count)
        channels = _np.empty(count, dtype=_np.int64)
        for index, entry in enumerate(static):
            position = entry.position
            xs[index] = position.x
            ys[index] = position.y
            ranges[index] = entry.radio_range
            channels[index] = entry.channel
            entry.vec_index = index
        state = (tuple(static), xs, ys, ranges, channels)
        self._vec_state = state
        self._vec_dirty = False
        return state

    def _broadcast_vector(
        self,
        origin: Point,
        payload: bytes,
        tx_range: float,
        channel: int,
        exclude: RadioListener | None,
        now: float,
        serialisation: float,
    ) -> int:
        """Whole-disc broadcast: one array pass, one RNG call.

        Candidates are ordered static tier first (array order = attach
        order within the tier), then mobile tier — *not* global attach
        order, which is why the vectorized medium carries its own golden
        digest. All surviving copies are delivered by a single kernel
        event at the latest arrival time; each frame still carries its
        exact per-link ``received_at`` (propagation skew within a
        broadcast disc is sub-microsecond, and receivers timestamp from
        the frame, not the clock).
        """
        stats = self.stats
        entries, xs, ys, ranges, channels = self._vector_state()
        n_static = len(entries)
        mobile = self._mobile
        if mobile:
            count = len(mobile)
            mobile_x = _np.empty(count)
            mobile_y = _np.empty(count)
            mobile_ranges = _np.empty(count)
            mobile_channels = _np.empty(count, dtype=_np.int64)
            for index, entry in enumerate(mobile):
                position = entry.listener.position
                mobile_x[index] = position.x
                mobile_y[index] = position.y
                mobile_ranges[index] = entry.radio_range
                mobile_channels[index] = entry.channel
            all_x = _np.concatenate((xs, mobile_x))
            all_y = _np.concatenate((ys, mobile_y))
            all_ranges = _np.concatenate((ranges, mobile_ranges))
            all_channels = _np.concatenate((channels, mobile_channels))
            all_entries = entries + tuple(mobile)
        else:
            all_x, all_y = xs, ys
            all_ranges, all_channels = ranges, channels
            all_entries = entries
        eligible = all_channels == channel
        if exclude is not None:
            for entry in self._static_by_listener.get(id(exclude), ()):
                eligible[entry.vec_index] = False
            for index, entry in enumerate(mobile):
                if entry.listener is exclude:
                    eligible[n_static + index] = False
        distances = _np.hypot(all_x - origin.x, all_y - origin.y)
        reach = _np.minimum(all_ranges, tx_range)
        hear = eligible & (distances <= reach)
        candidate_idx = _np.nonzero(hear)[0]
        stats.out_of_range += int(eligible.sum()) - candidate_idx.size
        if candidate_idx.size == 0:
            return 0
        candidate_dist = distances[candidate_idx]
        loss_model = self._loss_model
        extra_loss = self._extra_loss
        if loss_model is not None:
            p_loss = loss_model.loss_probability_array(
                candidate_dist, reach[candidate_idx]
            )
            if extra_loss > 0.0:
                # Independent failure modes: survive both or lose.
                p_loss = 1.0 - (1.0 - p_loss) * (1.0 - extra_loss)
            survived = self._np_rng.random(candidate_idx.size) >= p_loss
        elif extra_loss > 0.0:
            survived = self._np_rng.random(candidate_idx.size) >= extra_loss
        else:
            survived = None
        if survived is not None:
            lost = candidate_idx.size - int(survived.sum())
            if lost:
                stats.losses += lost
                if extra_loss > 0.0:
                    stats.burst_losses += lost
            candidate_idx = candidate_idx[survived]
            candidate_dist = candidate_dist[survived]
            if candidate_idx.size == 0:
                return 0
        rssi = log_distance_rssi_array(candidate_dist).tolist()
        arrivals = (
            now
            + self._per_hop_latency
            + serialisation
            + candidate_dist / _SPEED_OF_LIGHT
        ).tolist()
        batch: list[tuple[RadioListener, RadioFrame]] = []
        append = batch.append
        for position, entry_index in enumerate(candidate_idx.tolist()):
            frame = _NEW_FRAME(RadioFrame)
            _SET_FRAME_FIELD(frame, "payload", payload)
            _SET_FRAME_FIELD(frame, "rssi", rssi[position])
            _SET_FRAME_FIELD(frame, "sent_at", now)
            _SET_FRAME_FIELD(frame, "received_at", arrivals[position])
            _SET_FRAME_FIELD(frame, "channel", channel)
            append((all_entries[entry_index].listener, frame))
        self._sim.schedule_at(max(arrivals), self._deliver_batch, batch)
        return len(batch)

    def _deliver_batch(
        self, batch: list[tuple[RadioListener, RadioFrame]]
    ) -> None:
        stats = self.stats
        stats.deliveries += len(batch)
        # Every frame in a batch shares one payload object.
        stats.bytes_delivered += len(batch[0][1].payload) * len(batch)
        for listener, frame in batch:
            listener.on_radio_receive(frame)

    def _deliver(self, listener: RadioListener, frame: RadioFrame) -> None:
        self.stats.deliveries += 1
        self.stats.bytes_delivered += len(frame.payload)
        listener.on_radio_receive(frame)


_SEQ_KEY = attrgetter("seq")


def _merge_attach_order(
    static: list[_Attachment], mobile: list[_Attachment]
) -> list[_Attachment]:
    """Merge two attach-order-sorted entry lists, preserving the order."""
    if not mobile:
        return static
    if not static:
        return mobile
    merged: list[_Attachment] = []
    append = merged.append
    i = j = 0
    n_static, n_mobile = len(static), len(mobile)
    while i < n_static and j < n_mobile:
        left, right = static[i], mobile[j]
        if left.seq < right.seq:
            append(left)
            i += 1
        else:
            append(right)
            j += 1
    merged.extend(static[i:])
    merged.extend(mobile[j:])
    return merged
