"""Uniform-grid spatial index for broadcast candidate pruning.

:class:`WirelessMedium.broadcast` must decide which listeners can hear a
transmission. The naive scan is O(all listeners) per frame, which is
exactly where the §1 "scalable design" claim collapses at deployment
scale. This module provides the standard fix from network simulators: a
uniform grid of square cells; each entry is binned by position, and a
disc query only visits the cells overlapping the disc's bounding box.

The index is deliberately *dumb* about motion: entries are binned at the
position given to :meth:`insert`/:meth:`move` and never re-binned behind
the caller's back. The medium therefore only indexes listeners whose
positions are known to be fixed (receivers, :class:`Stationary`
sensors); roaming listeners stay on a linear-scan path. That split keeps
the pruning *exact* — a pruned entry is guaranteed to be outside the
query disc — which is what lets the medium skip them without perturbing
its RNG draw order (out-of-range listeners never drew loss randomness in
the unindexed implementation either).
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterator

from repro.errors import ConfigurationError
from repro.simnet.geometry import Point


class UniformGridIndex:
    """Bins hashable keys into square cells; answers disc queries.

    Parameters
    ----------
    cell_size:
        Edge length of the square cells, in metres. Any positive value
        is *correct*; values near the typical query radius minimise the
        number of cells visited per query.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0 or not math.isfinite(cell_size):
            raise ConfigurationError(
                f"cell_size must be positive and finite: {cell_size}"
            )
        self._cell = cell_size
        self._cells: dict[tuple[int, int], list[Hashable]] = {}
        self._where: dict[Hashable, tuple[int, int]] = {}

    @property
    def cell_size(self) -> float:
        return self._cell

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._where

    def _cell_of(self, point: Point) -> tuple[int, int]:
        return (
            math.floor(point.x / self._cell),
            math.floor(point.y / self._cell),
        )

    def insert(self, key: Hashable, point: Point) -> None:
        """Bin ``key`` at ``point``; re-bins if already present."""
        cell = self._cell_of(point)
        previous = self._where.get(key)
        if previous == cell:
            return
        if previous is not None:
            self._discard_from_cell(key, previous)
        self._where[key] = cell
        self._cells.setdefault(cell, []).append(key)

    move = insert

    def remove(self, key: Hashable) -> bool:
        """Drop ``key``; returns False when it was never inserted."""
        cell = self._where.pop(key, None)
        if cell is None:
            return False
        self._discard_from_cell(key, cell)
        return True

    def _discard_from_cell(self, key: Hashable, cell: tuple[int, int]) -> None:
        bucket = self._cells.get(cell)
        if bucket is None:
            return
        try:
            bucket.remove(key)
        except ValueError:
            return
        if not bucket:
            del self._cells[cell]

    def cells_for_radius(self, radius: float) -> int:
        """How many cells a disc query of ``radius`` would visit (upper
        bound); callers can compare against ``len(self)`` to decide
        whether a plain scan is cheaper."""
        span = math.floor(2.0 * radius / self._cell) + 4
        return span * span

    def query_disc(self, center: Point, radius: float) -> list[Hashable]:
        """All keys whose binned position lies within ``radius`` of
        ``center`` — plus possibly a few just outside (cell granularity);
        never *misses* a key inside the disc. Callers re-check exact
        distances. Result order is unspecified. Returns a concrete list
        (not a generator): result sets are small and the caller always
        consumes them whole, so list extension is cheaper than yields."""
        cell = self._cell
        cells = self._cells
        # One extra ring of cells beyond the floor-derived bounding box:
        # a key binned a hair's breadth across a cell boundary (or at a
        # coordinate whose squared distance underflows to zero) sits in
        # a cell the tight box excludes even though callers' float
        # distance checks count it as inside the disc. The ring cells
        # are rejected by the per-cell gap prune below in the common
        # case, so the widening costs a few comparisons, never a miss.
        x_lo = math.floor((center.x - radius) / cell) - 1
        x_hi = math.floor((center.x + radius) / cell) + 1
        y_lo = math.floor((center.y - radius) / cell) - 1
        y_hi = math.floor((center.y + radius) / cell) + 1
        radius_sq = radius * radius
        found: list[Hashable] = []
        extend = found.extend
        for cx in range(x_lo, x_hi + 1):
            # Nearest point of the cell column/row to the centre; cells
            # whose closest corner is beyond the radius hold no matches.
            dx = _axis_gap(center.x, cx, cell)
            dx_sq = dx * dx
            if dx_sq > radius_sq:
                continue
            for cy in range(y_lo, y_hi + 1):
                dy = _axis_gap(center.y, cy, cell)
                if dx_sq + dy * dy > radius_sq:
                    continue
                bucket = cells.get((cx, cy))
                if bucket is not None:
                    extend(bucket)
        return found

    def all_keys(self) -> Iterator[Hashable]:
        """Every indexed key (fallback path for oversized queries)."""
        return iter(self._where)


def _axis_gap(coordinate: float, cell_index: int, cell_size: float) -> float:
    """Distance from ``coordinate`` to cell ``cell_index`` along one axis."""
    lo = cell_index * cell_size
    hi = lo + cell_size
    if coordinate < lo:
        return lo - coordinate
    if coordinate > hi:
        return coordinate - hi
    return 0.0


__all__ = ["UniformGridIndex"]
