"""Mobility models for sensor nodes.

Section 4.2: "Sensors are expected to occasionally roam outside the
reception zone, which may cause data messages to be lost." Mobility is
therefore a first-class input to every experiment: it produces losses, it
makes location inference non-trivial, and it forces the Message Replicator
to target broadcast areas rather than fixed addresses.

Models are pull-based: callers ask for ``position_at(now)`` and the model
advances its internal state lazily. All randomness comes from an RNG
injected at construction so simulations stay deterministic.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.simnet.geometry import Point, Rect


class MobilityModel(ABC):
    """Base class: a trajectory through the sensor field."""

    @abstractmethod
    def position_at(self, time: float) -> Point:
        """The node's position at virtual time ``time`` (seconds).

        ``time`` must be non-decreasing across calls; models may advance
        internal state and are not required to answer queries in the past.
        """


class Stationary(MobilityModel):
    """A fixed node — the degenerate model used by most unit tests."""

    def __init__(self, position: Point) -> None:
        self._position = position

    def position_at(self, time: float) -> Point:
        return self._position


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint mobility inside a rectangle.

    The node picks a uniform destination, travels there at a speed drawn
    from ``[speed_min, speed_max]``, pauses for ``pause`` seconds, and
    repeats. This reproduces sensors drifting in and out of receiver
    coverage at realistic time scales.
    """

    def __init__(
        self,
        area: Rect,
        rng: random.Random,
        speed_min: float = 0.5,
        speed_max: float = 2.0,
        pause: float = 5.0,
        start: Point | None = None,
    ) -> None:
        if speed_min <= 0 or speed_max < speed_min:
            raise ValueError(
                f"invalid speed range [{speed_min}, {speed_max}]"
            )
        if pause < 0:
            raise ValueError(f"pause must be non-negative, got {pause}")
        self._area = area
        self._rng = rng
        self._speed_min = speed_min
        self._speed_max = speed_max
        self._pause = pause
        self._position = start if start is not None else self._random_point()
        self._time = 0.0
        self._target = self._random_point()
        self._speed = rng.uniform(speed_min, speed_max)
        self._pause_until = 0.0

    def _random_point(self) -> Point:
        return Point(
            self._rng.uniform(self._area.x_min, self._area.x_max),
            self._rng.uniform(self._area.y_min, self._area.y_max),
        )

    def position_at(self, time: float) -> Point:
        if time < self._time:
            return self._position
        # Advance in closed form leg by leg; legs are short relative to
        # typical query spacing so the loop runs a handful of iterations.
        remaining = time - self._time
        self._time = time
        while remaining > 0:
            if self._pause_until > 0:
                wait = min(remaining, self._pause_until)
                self._pause_until -= wait
                remaining -= wait
                continue
            gap = self._position.distance_to(self._target)
            travel_time = gap / self._speed if self._speed > 0 else 0.0
            if travel_time > remaining:
                self._position = self._position.toward(
                    self._target, self._speed * remaining
                )
                remaining = 0.0
            else:
                self._position = self._target
                remaining -= travel_time
                self._target = self._random_point()
                self._speed = self._rng.uniform(
                    self._speed_min, self._speed_max
                )
                self._pause_until = self._pause
        return self._position


class RandomWalk(MobilityModel):
    """Brownian-style walk: heading re-drawn every ``step_interval`` seconds.

    Positions are clamped to the deployment rectangle, so nodes linger
    near edges — useful for stressing edge-of-coverage loss behaviour.
    """

    def __init__(
        self,
        area: Rect,
        rng: random.Random,
        speed: float = 1.0,
        step_interval: float = 10.0,
        start: Point | None = None,
    ) -> None:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        if step_interval <= 0:
            raise ValueError(
                f"step_interval must be positive, got {step_interval}"
            )
        self._area = area
        self._rng = rng
        self._speed = speed
        self._step_interval = step_interval
        self._position = start if start is not None else Point(
            rng.uniform(area.x_min, area.x_max),
            rng.uniform(area.y_min, area.y_max),
        )
        self._time = 0.0
        self._heading = self._new_heading()
        self._heading_left = step_interval

    def _new_heading(self) -> Point:
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        return Point(math.cos(angle), math.sin(angle))

    def position_at(self, time: float) -> Point:
        if time < self._time:
            return self._position
        remaining = time - self._time
        self._time = time
        while remaining > 0:
            step = min(remaining, self._heading_left)
            displacement = self._heading.scaled(self._speed * step)
            self._position = self._area.clamp(self._position + displacement)
            self._heading_left -= step
            remaining -= step
            if self._heading_left <= 0:
                self._heading = self._new_heading()
                self._heading_left = self._step_interval
        return self._position


class PathFollower(MobilityModel):
    """Follows a fixed polyline at constant speed, then holds at the end.

    Used by the watercourse workload for drifting sensor platforms carried
    downstream, and by the tracking workload for targets crossing the
    surveilled area. Set ``loop=True`` for patrol routes.
    """

    def __init__(
        self,
        waypoints: Sequence[Point],
        speed: float,
        loop: bool = False,
    ) -> None:
        if len(waypoints) < 1:
            raise ValueError("at least one waypoint required")
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self._waypoints = list(waypoints)
        self._speed = speed
        self._loop = loop
        # Cumulative distance along the path, per waypoint.
        self._cumulative = [0.0]
        for previous, current in zip(self._waypoints, self._waypoints[1:]):
            self._cumulative.append(
                self._cumulative[-1] + previous.distance_to(current)
            )
        self._length = self._cumulative[-1]

    def position_at(self, time: float) -> Point:
        if self._length == 0.0 or time <= 0.0:
            return self._waypoints[0]
        travelled = self._speed * time
        if self._loop:
            travelled %= self._length
        elif travelled >= self._length:
            return self._waypoints[-1]
        # Binary search would be overkill for the short paths we use.
        for i in range(1, len(self._cumulative)):
            if travelled <= self._cumulative[i]:
                segment_start = self._waypoints[i - 1]
                segment_end = self._waypoints[i]
                into_segment = travelled - self._cumulative[i - 1]
                return segment_start.toward(segment_end, into_segment)
        return self._waypoints[-1]
