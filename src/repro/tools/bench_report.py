"""Aggregate committed ``BENCH_*.json`` baselines into one report.

Every experiment that tracks a perf trajectory commits its benchmark
output as ``BENCH_<experiment>.json`` at the repo root (see e.g.
``benchmarks/bench_e18_hotpath.py``). This tool collects those files
and renders a single Markdown document — the repo commits the result as
``docs/perf_trajectory.md`` so the trajectory is readable without
re-running anything.

Usage::

    garnet-bench-report                       # repo root -> stdout
    garnet-bench-report --root . --output docs/perf_trajectory.md
    python -m repro.tools.bench_report BENCH_e18_hotpath.json ...

Positional arguments name specific JSON files; without them every
``BENCH_*.json`` under ``--root`` (non-recursive) is included. The
report flattens each file's nested sections into dotted metric names,
so it needs no knowledge of individual benchmark shapes and never goes
stale when one gains a section.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterator

#: Metrics whose name ends with one of these render with extra emphasis:
#: they are the ratios the benchmarks themselves gate on.
_HEADLINE_SUFFIXES = ("speedup", "speedup_vs_seed", "speedup_vs_1")


def flatten(value: Any, prefix: str = "") -> Iterator[tuple[str, Any]]:
    """Yield ``(dotted_name, scalar)`` pairs from nested JSON data.

    Lists of scalars render as one comma-joined value; lists of objects
    are indexed. Non-scalar leaves (null) are skipped.
    """
    if isinstance(value, dict):
        for key, item in value.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(item, name)
    elif isinstance(value, list):
        if all(not isinstance(item, (dict, list)) for item in value):
            yield prefix, ", ".join(str(item) for item in value)
        else:
            for index, item in enumerate(value):
                yield from flatten(item, f"{prefix}[{index}]")
    elif isinstance(value, (int, float, str, bool)):
        yield prefix, value


def _format(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.2f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_report(files: list[Path]) -> str:
    """The full Markdown report for the given benchmark JSON files."""
    lines = [
        "# Performance trajectory",
        "",
        "Aggregated from the committed `BENCH_*.json` baselines by",
        "`garnet-bench-report`; regenerate with:",
        "",
        "```",
        "PYTHONPATH=src python -m repro.tools.bench_report \\",
        "    --output docs/perf_trajectory.md",
        "```",
        "",
    ]
    for path in files:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"garnet-bench-report: {path}: {exc}")
        experiment = data.get("experiment", path.stem)
        mode = data.get("mode")
        lines.append(f"## {experiment}")
        lines.append("")
        source = f"`{path.name}`"
        if mode:
            source += f" (mode: {mode})"
        lines.append(f"Source: {source}")
        lines.append("")
        lines.append("| Metric | Value |")
        lines.append("| --- | ---: |")
        for name, value in flatten(data):
            if name in ("experiment", "mode"):
                continue
            rendered = _format(value)
            if name.endswith(_HEADLINE_SUFFIXES):
                name = f"**{name}**"
                rendered = f"**{rendered}**"
            lines.append(f"| {name} | {rendered} |")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
    )
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="benchmark JSON files (default: BENCH_*.json under --root)",
    )
    parser.add_argument(
        "--root", type=Path, default=Path("."),
        help="directory scanned for BENCH_*.json when no files are named",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the Markdown here instead of stdout",
    )
    args = parser.parse_args(argv)
    files = args.files or sorted(args.root.glob("BENCH_*.json"))
    if not files:
        print(
            f"garnet-bench-report: no BENCH_*.json under {args.root}",
            file=sys.stderr,
        )
        return 1
    report = render_report(list(files))
    if args.output is None:
        print(report)
    else:
        args.output.write_text(report + "\n")
        print(f"wrote {args.output} ({len(files)} benchmark files)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
