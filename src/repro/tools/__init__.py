"""Operator command-line tools.

- ``python -m repro.tools.trace_dump <trace>`` — decode a captured radio
  trace (see :mod:`repro.simnet.capture`) into human-readable records.
"""
