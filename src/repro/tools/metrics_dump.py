"""Render a metrics snapshot written by :mod:`repro.obs` as text.

Usage::

    python -m repro.tools.metrics_dump run.metrics.json
    python -m repro.tools.metrics_dump --prometheus run.metrics.json
    python -m repro.tools.metrics_dump --grep filtering run.metrics.json

Accepts either a single registry snapshot (the shape produced by
``MetricsRegistry.snapshot()`` / ``Garnet.write_metrics``) or the
multi-registry envelope the benchmark harness writes
(``{"test": ..., "registries": [...]}``). ``--prometheus`` re-renders
the snapshot in Prometheus text exposition format; the default is a
name/value table.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

from repro.obs.export import render_prometheus


def _snapshots(data: dict) -> list[tuple[str, dict]]:
    """Normalise either accepted input shape to ``[(label, snapshot)]``."""
    if "registries" in data:
        label = str(data.get("test", "registry"))
        registries = data["registries"]
        if len(registries) == 1:
            return [(label, registries[0])]
        return [
            (f"{label}[{i}]", snap) for i, snap in enumerate(registries)
        ]
    return [(str(data.get("test", "registry")), data)]


def _grep(snapshot: dict, pattern: re.Pattern) -> dict:
    """A copy of ``snapshot`` keeping only matching metric names."""
    filtered = dict(snapshot)
    for section in ("counters", "gauges", "histograms"):
        if section in filtered:
            filtered[section] = {
                name: value
                for name, value in filtered[section].items()
                if pattern.search(name)
            }
    return filtered


def table_lines(label: str, snapshot: dict) -> list[str]:
    """Human-readable name/value lines for one registry snapshot."""
    lines = [f"== {label} =="]
    when = snapshot.get("time")
    if when is not None:
        lines.append(f"  time: {when}")
    for name in sorted(snapshot.get("counters", {})):
        lines.append(f"  {name} = {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        lines.append(f"  {name} = {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        mean = summary.get("mean")
        mean_text = "n/a" if mean is None else f"{mean:.6g}"
        lines.append(
            f"  {name} = count={summary.get('count', 0)} "
            f"sum={summary.get('sum', 0.0):.6g} mean={mean_text}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="metrics_dump",
        description="Render a Garnet metrics snapshot as text.",
    )
    parser.add_argument(
        "snapshot", help="JSON snapshot written by repro.obs exporters"
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of a table",
    )
    parser.add_argument(
        "--grep",
        metavar="PATTERN",
        default=None,
        help="only show metrics whose name matches this regex",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.snapshot, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not isinstance(data, dict):
        print("error: snapshot root must be a JSON object", file=sys.stderr)
        return 1

    try:
        pattern = re.compile(args.grep) if args.grep else None
    except re.error as exc:
        print(f"error: bad --grep pattern: {exc}", file=sys.stderr)
        return 1

    try:
        for label, snapshot in _snapshots(data):
            if pattern is not None:
                snapshot = _grep(snapshot, pattern)
            if args.prometheus:
                print(render_prometheus(snapshot), end="")
            else:
                for line in table_lines(label, snapshot):
                    print(line)
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe: normal for a dump
        # tool. Detach stdout so the interpreter's exit flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
