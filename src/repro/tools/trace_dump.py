"""Decode a captured radio trace into human-readable records.

Usage::

    python -m repro.tools.trace_dump session.trace
    python -m repro.tools.trace_dump --no-checksum session.trace
    python -m repro.tools.trace_dump --stats session.trace

Each frame is classified (data / control / garbage) and decoded with the
standard codecs; ``--stats`` prints per-stream summaries instead of
per-frame lines. Frames that fail to decode are reported, not fatal —
the tool's job is triage.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict

from repro.core.control import ControlCodec, FrameKind, peek_frame_kind
from repro.core.message import MessageCodec
from repro.errors import CodecError
from repro.simnet.capture import CapturedFrame, load_trace


def describe_frame(
    frame: CapturedFrame,
    data_codec: MessageCodec,
    control_codec: ControlCodec,
) -> str:
    """One human-readable line for one captured frame."""
    prefix = (
        f"{frame.time:12.6f}  ({frame.origin.x:8.1f},{frame.origin.y:8.1f})"
    )
    kind = peek_frame_kind(frame.payload)
    if kind is FrameKind.DATA:
        try:
            message = data_codec.decode(frame.payload)
        except CodecError as exc:
            return f"{prefix}  DATA    <undecodable: {exc}>"
        flags = []
        if message.fused:
            flags.append("fused")
        if message.encrypted:
            flags.append("encrypted")
        if message.is_relayed:
            flags.append(f"hops={message.hop_count}")
        if message.ack_request_id is not None:
            flags.append(f"ack#{message.ack_request_id}")
        suffix = f" [{' '.join(flags)}]" if flags else ""
        return (
            f"{prefix}  DATA    {message.stream_id} "
            f"seq={message.sequence} payload={len(message.payload)}B"
            f"{suffix}"
        )
    if kind is FrameKind.CONTROL:
        try:
            request = control_codec.decode(frame.payload)
        except CodecError as exc:
            return f"{prefix}  CONTROL <undecodable: {exc}>"
        return f"{prefix}  CONTROL {request.describe()}"
    return f"{prefix}  GARBAGE {len(frame.payload)}B"


def summarise(
    frames: list[CapturedFrame], data_codec: MessageCodec
) -> list[str]:
    """Per-stream summary lines for ``--stats`` mode."""
    per_stream: dict = defaultdict(lambda: {"count": 0, "bytes": 0,
                                            "first": None, "last": None})
    control = 0
    garbage = 0
    for frame in frames:
        kind = peek_frame_kind(frame.payload)
        if kind is FrameKind.CONTROL:
            control += 1
            continue
        if kind is not FrameKind.DATA:
            garbage += 1
            continue
        try:
            message = data_codec.decode(frame.payload)
        except CodecError:
            garbage += 1
            continue
        entry = per_stream[message.stream_id]
        entry["count"] += 1
        entry["bytes"] += len(message.payload)
        if entry["first"] is None:
            entry["first"] = frame.time
        entry["last"] = frame.time
    lines = [
        f"{len(frames)} frames: "
        f"{sum(e['count'] for e in per_stream.values())} data on "
        f"{len(per_stream)} streams, {control} control, {garbage} other"
    ]
    for stream_id in sorted(per_stream):
        entry = per_stream[stream_id]
        span = (entry["last"] or 0.0) - (entry["first"] or 0.0)
        rate = (entry["count"] - 1) / span if span > 0 else 0.0
        lines.append(
            f"  {stream_id}: {entry['count']} msgs, "
            f"{entry['bytes']} payload bytes, ~{rate:.2f} msg/s"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace_dump",
        description="Decode a captured Garnet radio trace.",
    )
    parser.add_argument("trace", help="trace file written by FrameCapture")
    parser.add_argument(
        "--no-checksum",
        action="store_true",
        help="decode data frames written by a checksum-free deployment",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-stream summaries instead of per-frame lines",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="decode at most this many frames",
    )
    args = parser.parse_args(argv)

    try:
        frames = load_trace(args.trace)
    except (OSError, CodecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.limit is not None:
        frames = frames[: args.limit]

    data_codec = MessageCodec(checksum=not args.no_checksum)
    if args.stats:
        for line in summarise(frames, data_codec):
            print(line)
        return 0
    control_codec = ControlCodec()
    for frame in frames:
        print(describe_frame(frame, data_codec, control_codec))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
