"""Fault plans: declarative, seed-reproducible failure schedules.

A :class:`FaultPlan` is a list of fault events pinned to *virtual* times
on the simulation clock. Because the events carry explicit timestamps
(no wall clock, no ambient randomness), the same plan against the same
deployment seed replays the same failure history byte-for-byte — the
property the determinism tests in ``tests/test_faults.py`` assert.

Event vocabulary (all windows are ``[at, at + duration)``):

- :class:`BrokerCrash` — the broker loses all session state and leaves
  the RPC fabric, then restarts empty;
- :class:`NetworkPartition` — named fixed-network endpoints become
  unreachable (sends retry/dead-letter, RPCs fail);
- :class:`LatencySpike` — every fixed-network delivery is slowed by a
  multiplicative factor;
- :class:`DropBurst` — extra i.i.d. loss on the wireless medium (burst
  interference on top of the configured loss model);
- :class:`ReceiverOutage` — receiver-array elements go deaf;
- :class:`TransmitterOutage` — transmitter-array antennas go dark (the
  Message Replicator fails over around them);
- :class:`FloodBurst` — synthetic publishers flood the Dispatching
  Service ingress (the overload lever behind ``bench_e17_overload``);
- :class:`ConsumerStall` — named consumer endpoints stop draining their
  QoS delivery queues (requires ``qos_consumer_queue``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True, kw_only=True)
class FaultEvent:
    """Base class: a fault active over one window of virtual time."""

    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("fault time must be non-negative")
        if self.duration <= 0:
            raise ConfigurationError("fault duration must be positive")

    @property
    def ends_at(self) -> float:
        return self.at + self.duration

    def describe(self) -> str:
        return (
            f"{type(self).__name__}@{self.at:g}s for {self.duration:g}s"
        )


@dataclass(frozen=True, slots=True, kw_only=True)
class BrokerCrash(FaultEvent):
    """The broker process dies at ``at`` and restarts at ``ends_at``.

    On clustered deployments ``broker`` names which broker node to kill
    (the whole node: session state, dispatch inbox and inter-broker
    link); None means the primary. Naming a broker on a single-broker
    deployment is a configuration error.
    """

    broker: str | None = None


@dataclass(frozen=True, slots=True, kw_only=True)
class NetworkPartition(FaultEvent):
    """Fixed-network endpoints unreachable for the window."""

    endpoints: tuple[str, ...]

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not self.endpoints:
            raise ConfigurationError(
                "a partition must name at least one endpoint"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class LatencySpike(FaultEvent):
    """Fixed-network deliveries slowed by ``factor`` for the window."""

    factor: float = 10.0

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.factor <= 1.0:
            raise ConfigurationError(
                f"latency spike factor must exceed 1: {self.factor}"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class DropBurst(FaultEvent):
    """Extra wireless loss probability for the window."""

    extra_loss: float = 0.1

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not 0.0 < self.extra_loss <= 1.0:
            raise ConfigurationError(
                f"extra_loss must be in (0, 1]: {self.extra_loss}"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class ReceiverOutage(FaultEvent):
    """Receiver-array elements deaf for the window."""

    receiver_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not self.receiver_ids:
            raise ConfigurationError(
                "a receiver outage must name at least one receiver"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class TransmitterOutage(FaultEvent):
    """Transmitter-array antennas out of service for the window."""

    transmitter_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not self.transmitter_ids:
            raise ConfigurationError(
                "a transmitter outage must name at least one transmitter"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class FloodBurst(FaultEvent):
    """Synthetic publishers flood the Dispatching Service ingress.

    ``rate`` is the aggregate message rate (messages per virtual
    second), spread round-robin across ``streams`` freshly allocated
    derived stream ids. The flood enters through the fixed network
    exactly like a session publish, so it contends with legitimate
    traffic at the admission controller — the intended victim.
    """

    rate: float
    streams: int = 1
    payload_bytes: int = 16

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.rate <= 0:
            raise ConfigurationError(
                f"flood rate must be positive: {self.rate}"
            )
        if self.streams < 1:
            raise ConfigurationError(
                f"a flood needs at least one stream: {self.streams}"
            )
        if self.payload_bytes < 0:
            raise ConfigurationError(
                f"payload_bytes must be non-negative: {self.payload_bytes}"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class ConsumerStall(FaultEvent):
    """Named consumer endpoints stop draining deliveries for the window.

    Models a consumer process that is alive (it may keep heartbeating
    its lease) but wedged — GC pause, deadlock, saturated downstream
    sink. Requires the deployment to run with per-consumer delivery
    queues (``qos_consumer_queue``), whose slow-consumer detection is
    the machinery under test.
    """

    endpoints: tuple[str, ...]

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not self.endpoints:
            raise ConfigurationError(
                "a consumer stall must name at least one endpoint"
            )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable schedule of fault events.

    Plans are data: build one, hand it to a
    :class:`~repro.faults.injector.FaultInjector`, and the same plan is
    reusable across deployments and seeds.
    """

    events: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "events",
            tuple(
                sorted(self.events, key=lambda event: (event.at, event.ends_at))
            ),
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Virtual time by which every fault has begun and ended."""
        return max((event.ends_at for event in self.events), default=0.0)

    def describe(self) -> list[str]:
        return [event.describe() for event in self.events]

    @classmethod
    def canonical(
        cls, *, scale: float = 1.0, endpoints: tuple[str, ...] = ()
    ) -> "FaultPlan":
        """The reference chaos schedule used by ``bench_e16_chaos``.

        One broker crash/restart, a 30-sim-second fixed-network
        partition of ``endpoints``, and a 10% wireless drop burst —
        staggered so each fault's recovery is individually visible in
        the metrics. ``scale`` compresses or stretches the whole
        timeline (the CI smoke run uses ``scale < 1``).
        """
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        events: list[FaultEvent] = [
            DropBurst(
                at=10.0 * scale, duration=20.0 * scale, extra_loss=0.10
            ),
            BrokerCrash(at=40.0 * scale, duration=15.0 * scale),
        ]
        if endpoints:
            events.append(
                NetworkPartition(
                    at=70.0 * scale,
                    duration=30.0 * scale,
                    endpoints=endpoints,
                )
            )
        return cls(events=tuple(events))
