"""The fault injector: replays a FaultPlan against a live deployment.

The injector translates each declarative event into begin/end callbacks
on the deployment's simulation clock, driving the concrete failure
levers the services expose:

==================  ====================================================
Event               Lever
==================  ====================================================
BrokerCrash         ``Broker.crash()`` / ``Broker.restart()``
NetworkPartition    ``FixedNetwork.partition()`` / ``heal()``
LatencySpike        ``FixedNetwork.set_latency_factor()``
DropBurst           ``WirelessMedium.set_extra_loss()``
ReceiverOutage      ``WirelessMedium.detach()`` / ``attach()``
TransmitterOutage   ``TransmitterArray.set_online()``
==================  ====================================================

Everything injected is counted under ``faults.*`` in the deployment's
metrics registry, so a post-run snapshot shows exactly which failures
the middleware survived; the matching recovery actions appear under
``resilience.*`` (session re-registrations, fixed-network redeliveries,
replicator failovers...).

Overlap semantics: windows of the *same* kind are reference-counted
(latency factors multiply; extra-loss windows take the maximum), so
overlapping events compose instead of clobbering each other's cleanup.
"""

from __future__ import annotations

from typing import Any

from repro.faults.plan import (
    BrokerCrash,
    DropBurst,
    FaultEvent,
    FaultPlan,
    LatencySpike,
    NetworkPartition,
    ReceiverOutage,
    TransmitterOutage,
)

_EVENT_COUNTERS: dict[type, str] = {
    BrokerCrash: "faults.broker_crashes",
    NetworkPartition: "faults.partitions",
    LatencySpike: "faults.latency_spikes",
    DropBurst: "faults.drop_bursts",
    ReceiverOutage: "faults.receiver_outages",
    TransmitterOutage: "faults.transmitter_outages",
}


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s events onto one deployment."""

    def __init__(self, deployment: Any, plan: FaultPlan) -> None:
        self._deployment = deployment
        self._plan = plan
        metrics = deployment.metrics()
        self._injected = metrics.counter(
            "faults.injected", help="fault windows begun"
        )
        self._recovered = metrics.counter(
            "faults.recovered", help="fault windows ended (lever restored)"
        )
        self._active = metrics.gauge(
            "faults.active", help="fault windows currently open"
        )
        self._counters = {
            kind: metrics.counter(name)
            for kind, name in _EVENT_COUNTERS.items()
        }
        self._armed = False
        # Same-kind overlap bookkeeping (see module docstring).
        self._loss_windows: list[float] = []
        self._latency_factors: list[float] = []

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def arm(self) -> None:
        """Schedule every event's begin/end on the virtual clock."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        sim = self._deployment.sim
        for event in self._plan:
            sim.schedule(event.at - sim.now, self._begin, event)
            sim.schedule(event.ends_at - sim.now, self._end, event)

    # ------------------------------------------------------------------
    def _begin(self, event: FaultEvent) -> None:
        self._injected.inc()
        self._counters[type(event)].inc()
        self._active.inc()
        if isinstance(event, BrokerCrash):
            self._deployment.broker.crash()
        elif isinstance(event, NetworkPartition):
            self._deployment.network.partition(event.endpoints)
        elif isinstance(event, LatencySpike):
            self._latency_factors.append(event.factor)
            self._apply_latency()
        elif isinstance(event, DropBurst):
            self._loss_windows.append(event.extra_loss)
            self._apply_loss()
        elif isinstance(event, ReceiverOutage):
            for receiver_id in event.receiver_ids:
                receiver = self._receiver(receiver_id)
                self._deployment.medium.detach(receiver)
        elif isinstance(event, TransmitterOutage):
            for transmitter_id in event.transmitter_ids:
                self._deployment.transmitters.set_online(
                    transmitter_id, False
                )

    def _end(self, event: FaultEvent) -> None:
        self._recovered.inc()
        self._active.dec()
        if isinstance(event, BrokerCrash):
            self._deployment.broker.restart()
        elif isinstance(event, NetworkPartition):
            self._deployment.network.heal(event.endpoints)
        elif isinstance(event, LatencySpike):
            self._latency_factors.remove(event.factor)
            self._apply_latency()
        elif isinstance(event, DropBurst):
            self._loss_windows.remove(event.extra_loss)
            self._apply_loss()
        elif isinstance(event, ReceiverOutage):
            for receiver_id in event.receiver_ids:
                receiver = self._receiver(receiver_id)
                self._deployment.medium.attach(
                    receiver, receiver.reception_range
                )
        elif isinstance(event, TransmitterOutage):
            for transmitter_id in event.transmitter_ids:
                self._deployment.transmitters.set_online(
                    transmitter_id, True
                )

    # ------------------------------------------------------------------
    def _apply_loss(self) -> None:
        extra = max(self._loss_windows, default=0.0)
        self._deployment.medium.set_extra_loss(extra)

    def _apply_latency(self) -> None:
        factor = 1.0
        for value in self._latency_factors:
            factor *= value
        self._deployment.network.set_latency_factor(factor)

    def _receiver(self, receiver_id: int):
        for receiver in self._deployment.receivers.receivers:
            if receiver.receiver_id == receiver_id:
                return receiver
        raise KeyError(f"unknown receiver {receiver_id}")


def inject(deployment: Any, plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` against ``deployment``; returns the injector."""
    injector = FaultInjector(deployment, plan)
    injector.arm()
    return injector
