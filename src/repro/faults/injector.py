"""The fault injector: replays a FaultPlan against a live deployment.

The injector translates each declarative event into begin/end callbacks
on the deployment's simulation clock, driving the concrete failure
levers the services expose:

==================  ====================================================
Event               Lever
==================  ====================================================
BrokerCrash         ``Broker.crash()`` / ``Broker.restart()``
NetworkPartition    ``FixedNetwork.partition()`` / ``heal()``
LatencySpike        ``FixedNetwork.set_latency_factor()``
DropBurst           ``WirelessMedium.set_extra_loss()``
ReceiverOutage      ``WirelessMedium.detach()`` / ``attach()``
TransmitterOutage   ``TransmitterArray.set_online()``
FloodBurst          synthetic publishes into ``garnet.dispatching``
ConsumerStall       ``DeliveryManager.stall()`` / ``resume()``
==================  ====================================================

Everything injected is counted under ``faults.*`` in the deployment's
metrics registry, so a post-run snapshot shows exactly which failures
the middleware survived; the matching recovery actions appear under
``resilience.*`` (session re-registrations, fixed-network redeliveries,
replicator failovers...).

Overlap semantics: windows of the *same* kind are reference-counted
(latency factors multiply; extra-loss windows take the maximum), so
overlapping events compose instead of clobbering each other's cleanup.
"""

from __future__ import annotations

from typing import Any

from repro.core.dispatching import INBOX as DISPATCH_INBOX
from repro.core.envelopes import StreamArrival
from repro.core.message import DataMessage
from repro.core.streamid import StreamId
from repro.errors import ConfigurationError
from repro.faults.plan import (
    BrokerCrash,
    ConsumerStall,
    DropBurst,
    FaultEvent,
    FaultPlan,
    FloodBurst,
    LatencySpike,
    NetworkPartition,
    ReceiverOutage,
    TransmitterOutage,
)
from repro.util.ids import WrappingCounter

_EVENT_COUNTERS: dict[type, str] = {
    BrokerCrash: "faults.broker_crashes",
    NetworkPartition: "faults.partitions",
    LatencySpike: "faults.latency_spikes",
    DropBurst: "faults.drop_bursts",
    ReceiverOutage: "faults.receiver_outages",
    TransmitterOutage: "faults.transmitter_outages",
    FloodBurst: "faults.flood_bursts",
    ConsumerStall: "faults.consumer_stalls",
}


class _FloodState:
    """One live flood: its synthetic streams and round-robin cursor."""

    __slots__ = ("event", "streams", "payload", "index", "active")

    def __init__(
        self,
        event: FloodBurst,
        streams: list[tuple[StreamId, WrappingCounter]],
    ) -> None:
        self.event = event
        self.streams = streams
        self.payload = b"\x00" * event.payload_bytes
        self.index = 0
        self.active = True


class FaultInjector:
    """Schedules a :class:`FaultPlan`'s events onto one deployment."""

    def __init__(self, deployment: Any, plan: FaultPlan) -> None:
        self._deployment = deployment
        self._plan = plan
        metrics = deployment.metrics()
        self._injected = metrics.counter(
            "faults.injected", help="fault windows begun"
        )
        self._recovered = metrics.counter(
            "faults.recovered", help="fault windows ended (lever restored)"
        )
        self._active = metrics.gauge(
            "faults.active", help="fault windows currently open"
        )
        self._counters = {
            kind: metrics.counter(name)
            for kind, name in _EVENT_COUNTERS.items()
        }
        self._flood_messages = metrics.counter(
            "faults.flood_messages",
            help="synthetic messages injected by FloodBurst events",
        )
        self._redundant = metrics.counter(
            "faults.redundant",
            help="fault actions that were already in effect (no-ops)",
        )
        self._armed = False
        # Same-kind overlap bookkeeping (see module docstring).
        self._loss_windows: list[float] = []
        self._latency_factors: list[float] = []
        # Keyed by event identity: duplicate FloodBurst literals in one
        # plan are distinct windows with distinct synthetic streams.
        self._floods: dict[int, _FloodState] = {}

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def arm(self) -> None:
        """Schedule every event's begin/end on the virtual clock."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        sim = self._deployment.sim
        for event in self._plan:
            sim.schedule(event.at - sim.now, self._begin, event)
            sim.schedule(event.ends_at - sim.now, self._end, event)

    # ------------------------------------------------------------------
    def _begin(self, event: FaultEvent) -> None:
        self._injected.inc()
        self._counters[type(event)].inc()
        self._active.inc()
        if isinstance(event, BrokerCrash):
            self._crash_target(event).crash()
        elif isinstance(event, NetworkPartition):
            self._deployment.network.partition(event.endpoints)
        elif isinstance(event, LatencySpike):
            self._latency_factors.append(event.factor)
            self._apply_latency()
        elif isinstance(event, DropBurst):
            self._loss_windows.append(event.extra_loss)
            self._apply_loss()
        elif isinstance(event, ReceiverOutage):
            for receiver_id in event.receiver_ids:
                receiver = self._receiver(receiver_id)
                self._deployment.medium.detach(receiver)
        elif isinstance(event, TransmitterOutage):
            for transmitter_id in event.transmitter_ids:
                self._set_transmitter_online(transmitter_id, False)
        elif isinstance(event, FloodBurst):
            self._begin_flood(event)
        elif isinstance(event, ConsumerStall):
            delivery = self._delivery_manager(event)
            for endpoint in event.endpoints:
                delivery.stall(endpoint)

    def _end(self, event: FaultEvent) -> None:
        self._recovered.inc()
        self._active.dec()
        if isinstance(event, BrokerCrash):
            self._crash_target(event).restart()
        elif isinstance(event, NetworkPartition):
            self._deployment.network.heal(event.endpoints)
        elif isinstance(event, LatencySpike):
            self._latency_factors.remove(event.factor)
            self._apply_latency()
        elif isinstance(event, DropBurst):
            self._loss_windows.remove(event.extra_loss)
            self._apply_loss()
        elif isinstance(event, ReceiverOutage):
            for receiver_id in event.receiver_ids:
                receiver = self._receiver(receiver_id)
                self._deployment.medium.attach(
                    receiver, receiver.reception_range, static=True
                )
        elif isinstance(event, TransmitterOutage):
            for transmitter_id in event.transmitter_ids:
                self._set_transmitter_online(transmitter_id, True)
        elif isinstance(event, FloodBurst):
            state = self._floods.pop(id(event), None)
            if state is not None:
                state.active = False
        elif isinstance(event, ConsumerStall):
            delivery = self._delivery_manager(event)
            for endpoint in event.endpoints:
                delivery.resume(endpoint)

    # ------------------------------------------------------------------
    def _begin_flood(self, event: FloodBurst) -> None:
        streams: list[tuple[StreamId, WrappingCounter]] = []
        for _ in range(event.streams):
            publisher = self._deployment.allocate_publisher_id()
            streams.append((StreamId(publisher, 0), WrappingCounter(16)))
        state = _FloodState(event, streams)
        self._floods[id(event)] = state
        self._flood_tick(state)

    def _flood_tick(self, state: _FloodState) -> None:
        sim = self._deployment.sim
        if not state.active or sim.now >= state.event.ends_at:
            return
        stream_id, counter = state.streams[state.index % len(state.streams)]
        state.index += 1
        message = DataMessage(
            stream_id=stream_id,
            sequence=counter.next(),
            payload=state.payload,
        )
        # receiver_id=-1 marks a direct fixed-net publish, the same
        # envelope shape GarnetSession.publish emits.
        self._deployment.network.send(
            DISPATCH_INBOX,
            StreamArrival(
                message=message, received_at=sim.now, receiver_id=-1
            ),
        )
        self._flood_messages.inc()
        sim.schedule(1.0 / state.event.rate, self._flood_tick, state)

    def _crash_target(self, event: BrokerCrash):
        """The object to crash/restart: a cluster node or the broker."""
        cluster = getattr(self._deployment, "cluster", None)
        clustered = cluster is not None and cluster.enabled
        if event.broker is not None:
            if not clustered:
                raise ConfigurationError(
                    f"{event.describe()} names broker {event.broker!r} but "
                    "the deployment is not clustered"
                )
            return cluster.node(event.broker)
        if clustered:
            return cluster.primary
        return self._deployment.broker

    def _set_transmitter_online(
        self, transmitter_id: int, online: bool
    ) -> None:
        """Apply one outage leg; redundant legs are counted no-ops.

        A transmitter already in the requested state (overlapping outage
        windows) or detached from the array entirely is not an error:
        the fault's *intent* — that antenna being dark — already holds.
        """
        try:
            transmitter = self._deployment.transmitters.transmitter(
                transmitter_id
            )
        except ConfigurationError:
            self._redundant.inc()
            return
        if transmitter.online == online:
            self._redundant.inc()
            return
        transmitter.online = online

    def _delivery_manager(self, event: ConsumerStall):
        delivery = self._deployment.qos.delivery
        if delivery is None:
            raise ConfigurationError(
                f"{event.describe()} needs per-consumer delivery queues: "
                "set qos_consumer_queue on the deployment config"
            )
        return delivery

    def _apply_loss(self) -> None:
        extra = max(self._loss_windows, default=0.0)
        self._deployment.medium.set_extra_loss(extra)

    def _apply_latency(self) -> None:
        factor = 1.0
        for value in self._latency_factors:
            factor *= value
        self._deployment.network.set_latency_factor(factor)

    def _receiver(self, receiver_id: int):
        for receiver in self._deployment.receivers.receivers:
            if receiver.receiver_id == receiver_id:
                return receiver
        raise KeyError(f"unknown receiver {receiver_id}")


def inject(deployment: Any, plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` against ``deployment``; returns the injector."""
    injector = FaultInjector(deployment, plan)
    injector.arm()
    return injector
