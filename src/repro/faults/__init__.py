"""Deterministic fault injection for Garnet deployments (``repro.faults``).

Declare a :class:`FaultPlan` of timed failure windows, arm it with
:func:`inject`, run the simulation, and read the ``faults.*`` /
``resilience.*`` metrics to see what broke and how the middleware
recovered. Same seed + same plan = identical run, every time.
"""

from repro.faults.injector import FaultInjector, inject
from repro.faults.plan import (
    BrokerCrash,
    ConsumerStall,
    DropBurst,
    FaultEvent,
    FaultPlan,
    FloodBurst,
    LatencySpike,
    NetworkPartition,
    ReceiverOutage,
    TransmitterOutage,
)

__all__ = [
    "BrokerCrash",
    "ConsumerStall",
    "DropBurst",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FloodBurst",
    "LatencySpike",
    "NetworkPartition",
    "ReceiverOutage",
    "TransmitterOutage",
    "inject",
]
