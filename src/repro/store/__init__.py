"""repro.store: the durable per-stream append-only segment log.

The pieces, bottom-up:

- :mod:`repro.store.segment` — the length-prefixed record codec and the
  Segment bookkeeping unit shared by every backend.
- :class:`StreamStore` (:mod:`repro.store.base`) — the pluggable ABC:
  rotation by segment size, retention by segment count / total bytes /
  age, ``store.*`` counters and gauges.
- :class:`MemorySegmentStore` / :class:`FileSegmentStore` — the two
  backends (``store_backend="memory" | "file"``); the file flavour is
  crash-tolerant on open (torn tails truncated, counted).
- :class:`StoreTap` — the write-through installed into the Dispatching
  Service(s); per-stream sequence windows keep the log duplicate-free
  across cluster handoff replay.

``build_store`` assembles a store from a :class:`GarnetConfig`; the
deployment facade calls it when ``store_enabled=True`` and leaves the
whole subsystem out of the data path otherwise (the golden digests pin
that).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.store.base import StoreStats, StreamStore
from repro.store.file import FileSegmentStore
from repro.store.memory import MemorySegmentStore
from repro.store.segment import (
    StoredRecord,
    decode_record,
    encode_record,
    iter_records,
    scan_records,
)
from repro.store.tap import StoreTap


def build_store(
    config,
    *,
    metrics: MetricsRegistry | None = None,
    clock: Callable[[], float] | None = None,
) -> StreamStore:
    """Assemble the configured StreamStore backend for a deployment."""
    kwargs = dict(
        segment_bytes=config.store_segment_bytes,
        segments_per_stream=config.store_segments_per_stream,
        max_bytes=config.store_max_bytes,
        max_age=config.store_max_age,
        clock=clock,
        metrics=metrics,
    )
    if config.store_backend == "memory":
        return MemorySegmentStore(**kwargs)
    if config.store_backend == "file":
        if not config.store_dir:
            raise ConfigurationError(
                "store_backend='file' needs store_dir to point at a "
                "directory"
            )
        return FileSegmentStore(config.store_dir, **kwargs)
    raise ConfigurationError(
        f"unknown store_backend {config.store_backend!r} "
        "(expected 'memory' or 'file')"
    )


__all__ = [
    "FileSegmentStore",
    "MemorySegmentStore",
    "StoreStats",
    "StoreTap",
    "StoredRecord",
    "StreamStore",
    "build_store",
    "decode_record",
    "encode_record",
    "iter_records",
    "scan_records",
]
