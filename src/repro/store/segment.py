"""Segment record codec: the on-disk/in-memory unit of the stream store.

One stored record is one length-prefixed frame::

    [4-byte length, big-endian][8-byte float64 received_at, big-endian]
    [4-byte int32 receiver_id, big-endian][codec frame]

where the length counts the 12-byte metadata header plus the codec
frame — never the prefix itself. The codec frame is the exact Figure 2
wire image the message arrived as (:meth:`MessageCodec.encode` output),
so replaying from the store re-decodes byte-identical messages, and the
store needs no schema of its own beyond these twelve metadata bytes.

A :class:`Segment` is an ordered run of such records; backends decide
where its bytes live (a list in memory, an append-only file on disk).
Rotation and retention operate on whole segments, which keeps eviction
O(1) and makes the crash-recovery story simple: only the *tail* of the
*last* segment can ever be torn.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.streamid import StreamId
from repro.errors import StoreError

_LENGTH = struct.Struct(">I")
_META = struct.Struct(">di")

#: Bytes of metadata counted inside each record's length prefix.
RECORD_META_BYTES = _META.size
#: Bytes of the length prefix itself.
RECORD_PREFIX_BYTES = _LENGTH.size


def encode_record(received_at: float, receiver_id: int, frame: bytes) -> bytes:
    """Serialise one stored record (length prefix + metadata + frame)."""
    if not frame:
        raise StoreError("cannot store an empty codec frame")
    return (
        _LENGTH.pack(RECORD_META_BYTES + len(frame))
        + _META.pack(received_at, receiver_id)
        + frame
    )


def decode_record(
    buffer: bytes, offset: int = 0
) -> tuple[float, int, bytes, int]:
    """Decode one record at ``offset``.

    Returns ``(received_at, receiver_id, frame, next_offset)``. Raises
    :class:`StoreError` when the buffer ends before the record does —
    the torn-tail condition crash-tolerant opens truncate away.
    """
    end_of_prefix = offset + RECORD_PREFIX_BYTES
    if len(buffer) < end_of_prefix:
        raise StoreError(
            f"truncated record: {len(buffer) - offset} bytes where a "
            f"{RECORD_PREFIX_BYTES}-byte length prefix was expected"
        )
    (length,) = _LENGTH.unpack_from(buffer, offset)
    if length < RECORD_META_BYTES + 1:
        raise StoreError(f"record length {length} below minimum")
    end = end_of_prefix + length
    if len(buffer) < end:
        raise StoreError(
            f"truncated record: {len(buffer) - end_of_prefix} bytes "
            f"where {length} were promised"
        )
    received_at, receiver_id = _META.unpack_from(buffer, end_of_prefix)
    frame = bytes(buffer[end_of_prefix + RECORD_META_BYTES : end])
    return received_at, receiver_id, frame, end


def iter_records(buffer: bytes):
    """Yield ``(received_at, receiver_id, frame)`` for every whole record.

    Raises :class:`StoreError` on a torn tail; callers that want
    crash tolerance use :func:`scan_records` instead.
    """
    offset = 0
    while offset < len(buffer):
        received_at, receiver_id, frame, offset = decode_record(
            buffer, offset
        )
        yield received_at, receiver_id, frame


def scan_records(
    buffer: bytes,
) -> tuple[list[tuple[float, int, bytes]], int]:
    """Decode as many whole records as the buffer holds.

    Returns ``(records, clean_length)`` where ``clean_length`` is the
    byte offset after the last complete record — the length a
    crash-tolerant open truncates a torn file back to. A buffer with no
    tear returns ``clean_length == len(buffer)``.
    """
    records: list[tuple[float, int, bytes]] = []
    offset = 0
    while offset < len(buffer):
        try:
            received_at, receiver_id, frame, next_offset = decode_record(
                buffer, offset
            )
        except StoreError:
            return records, offset
        records.append((received_at, receiver_id, frame))
        offset = next_offset
    return records, offset


@dataclass(frozen=True, slots=True)
class StoredRecord:
    """One record read back out of the store."""

    stream_id: StreamId
    received_at: float
    receiver_id: int
    frame: bytes
    """The exact codec wire image the message was stored as."""


class Segment:
    """Bookkeeping shared by every backend's segment flavour.

    Subclasses implement where the record bytes actually go
    (:meth:`_write`), how they come back (:meth:`records`), and how the
    segment dies (:meth:`delete`).
    """

    __slots__ = ("index", "records_held", "bytes_held", "first_at", "last_at")

    def __init__(self, index: int) -> None:
        self.index = index
        self.records_held = 0
        self.bytes_held = 0
        self.first_at: float | None = None
        self.last_at: float | None = None

    def note(self, received_at: float, encoded_length: int) -> None:
        self.records_held += 1
        self.bytes_held += encoded_length
        if self.first_at is None:
            self.first_at = received_at
        self.last_at = received_at

    def append(
        self, received_at: float, receiver_id: int, frame: bytes
    ) -> int:
        """Write one record; returns the encoded byte count."""
        encoded = encode_record(received_at, receiver_id, frame)
        self._write(encoded, received_at, receiver_id, frame)
        self.note(received_at, len(encoded))
        return len(encoded)

    # -- backend hooks --------------------------------------------------
    def _write(
        self,
        encoded: bytes,
        received_at: float,
        receiver_id: int,
        frame: bytes,
    ) -> None:
        raise NotImplementedError

    def records(self) -> list[tuple[float, int, bytes]]:
        """Every ``(received_at, receiver_id, frame)`` in append order."""
        raise NotImplementedError

    def seal(self) -> None:
        """Called when the segment stops being the active (writable) one."""

    def delete(self) -> None:
        """Release the segment's storage (eviction)."""


__all__ = [
    "RECORD_META_BYTES",
    "RECORD_PREFIX_BYTES",
    "StoredRecord",
    "Segment",
    "encode_record",
    "decode_record",
    "iter_records",
    "scan_records",
]
