"""StreamStore: the pluggable per-stream append-only segment log.

The store keeps one ordered run of :class:`~repro.store.segment.Segment`
objects per stream. Appends go to the stream's *active* segment; when it
exceeds ``segment_bytes`` it is sealed and a fresh one opened
(``store.segments_rotated``). Three retention policies evict whole
*sealed* segments, oldest first (the active segment is never evicted):

- **per-stream segment count** (``segments_per_stream``),
- **store-wide byte budget** (``max_bytes``, evicting the globally
  oldest sealed segment by last-record time),
- **age** (``max_age``, against the injected ``clock`` — virtual time in
  simulated deployments).

Evictions count ``store.segments_evicted`` / ``store.records_evicted``;
live occupancy is exported as the ``store.segments`` / ``store.bytes`` /
``store.streams`` gauges. Backends only implement segment construction
and deletion — every policy above lives here, so the memory and file
flavours behave identically by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable

from repro.core.streamid import StreamId
from repro.errors import StoreError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.store.segment import Segment, StoredRecord


class StoreStats(RegistryBackedStats):
    PREFIX = "store"

    appended: int = 0
    bytes_appended: int = 0
    duplicates_skipped: int = 0
    """Appends suppressed by the write-through tap's dedupe window."""
    segments_rotated: int = 0
    segments_evicted: int = 0
    records_evicted: int = 0
    replays: int = 0
    """History replays served to late-join subscribers."""
    records_replayed: int = 0
    queries: int = 0
    """Time-range queries answered (session.query / QUERY frames)."""
    records_queried: int = 0
    truncated_tail: int = 0
    """Torn tail records discarded by crash-tolerant opens."""


class _StreamLog:
    """One stream's run of segments (metadata only; bytes live in them)."""

    __slots__ = ("stream_id", "segments", "next_index", "last")

    def __init__(self, stream_id: StreamId) -> None:
        self.stream_id = stream_id
        # Oldest first; the final entry is the active (writable) segment.
        self.segments: list[Segment] = []
        self.next_index = 0
        self.last: StoredRecord | None = None


class StreamStore(ABC):
    """Append-only per-stream segment log behind a small uniform API."""

    def __init__(
        self,
        *,
        segment_bytes: int = 64 * 1024,
        segments_per_stream: int = 8,
        max_bytes: int | None = None,
        max_age: float | None = None,
        clock: Callable[[], float] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if segment_bytes < 1:
            raise StoreError("segment_bytes must be at least 1")
        if segments_per_stream < 1:
            raise StoreError("segments_per_stream must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise StoreError("max_bytes must be at least 1 byte")
        if max_age is not None and max_age <= 0:
            raise StoreError("max_age must be positive")
        self._segment_bytes = segment_bytes
        self._segments_per_stream = segments_per_stream
        self._max_bytes = max_bytes
        self._max_age = max_age
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._logs: dict[StreamId, _StreamLog] = {}
        self._total_bytes = 0
        self._total_segments = 0
        self._closed = False
        self.stats = StoreStats(metrics)
        registry = self.stats.registry
        self._segments_gauge = registry.gauge(
            "store.segments", help="segments currently held across streams"
        )
        self._bytes_gauge = registry.gauge(
            "store.bytes", help="record bytes currently held"
        )
        self._streams_gauge = registry.gauge(
            "store.streams", help="streams with at least one stored record"
        )

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _open_segment(self, stream_id: StreamId, index: int) -> Segment:
        """Create (and open for append) segment ``index`` of a stream."""

    def _discard_segment(self, stream_id: StreamId, segment: Segment) -> None:
        segment.delete()

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(
        self,
        stream_id: StreamId,
        received_at: float,
        receiver_id: int,
        frame: bytes,
    ) -> None:
        """Append one codec frame to ``stream_id``'s log."""
        self._require_open()
        log = self._logs.get(stream_id)
        if log is None:
            log = _StreamLog(stream_id)
            self._logs[stream_id] = log
        if not log.segments:
            self._push_segment(log)
        active = log.segments[-1]
        if active.bytes_held >= self._segment_bytes:
            active.seal()
            self.stats.segments_rotated += 1
            active = self._push_segment(log)
        written = active.append(received_at, receiver_id, frame)
        self._total_bytes += written
        log.last = StoredRecord(
            stream_id=stream_id,
            received_at=received_at,
            receiver_id=receiver_id,
            frame=frame,
        )
        self.stats.appended += 1
        self.stats.bytes_appended += written
        self._enforce_retention()
        self._update_gauges()

    def _push_segment(self, log: _StreamLog) -> Segment:
        segment = self._open_segment(log.stream_id, log.next_index)
        log.next_index += 1
        log.segments.append(segment)
        self._total_segments += 1
        return segment

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def _enforce_retention(self) -> None:
        # Per-stream segment count: only the appending stream can exceed
        # its cap, but sweep all logs so reopened stores settle too.
        for log in list(self._logs.values()):
            while len(log.segments) > self._segments_per_stream:
                self._evict(log, log.segments[0])
        if self._max_age is not None:
            horizon = self._clock() - self._max_age
            for log in list(self._logs.values()):
                while (
                    len(log.segments) > 1
                    and log.segments[0].last_at is not None
                    and log.segments[0].last_at < horizon
                ):
                    self._evict(log, log.segments[0])
        if self._max_bytes is not None:
            while self._total_bytes > self._max_bytes:
                victim = self._oldest_sealed()
                if victim is None:
                    break  # only active segments remain
                self._evict(*victim)

    def _oldest_sealed(self) -> tuple[_StreamLog, Segment] | None:
        best: tuple[_StreamLog, Segment] | None = None
        for log in self._logs.values():
            if len(log.segments) < 2:
                continue
            head = log.segments[0]
            if best is None or (head.last_at or 0.0) < (
                best[1].last_at or 0.0
            ):
                best = (log, head)
        return best

    def _evict(self, log: _StreamLog, segment: Segment) -> None:
        log.segments.remove(segment)
        self._total_segments -= 1
        self._total_bytes -= segment.bytes_held
        self.stats.segments_evicted += 1
        self.stats.records_evicted += segment.records_held
        self._discard_segment(log.stream_id, segment)
        if not log.segments:
            del self._logs[log.stream_id]

    def _update_gauges(self) -> None:
        self._segments_gauge.set(float(self._total_segments))
        self._bytes_gauge.set(float(self._total_bytes))
        self._streams_gauge.set(float(len(self._logs)))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read(
        self,
        stream_id: StreamId,
        start: float | None = None,
        end: float | None = None,
        limit: int | None = None,
    ) -> list[StoredRecord]:
        """Records of one stream in append order, filtered to [start, end].

        ``start``/``end`` are inclusive bounds on ``received_at``; None
        leaves that side open. ``limit`` caps the result (earliest
        records win, matching replay semantics).
        """
        self._require_open()
        log = self._logs.get(stream_id)
        if log is None:
            return []
        out: list[StoredRecord] = []
        for segment in log.segments:
            # Whole-segment pruning off the metadata envelope.
            if start is not None and segment.last_at is not None:
                if segment.last_at < start:
                    continue
            if end is not None and segment.first_at is not None:
                if segment.first_at > end:
                    break
            for received_at, receiver_id, frame in segment.records():
                if start is not None and received_at < start:
                    continue
                if end is not None and received_at > end:
                    continue
                out.append(
                    StoredRecord(
                        stream_id=stream_id,
                        received_at=received_at,
                        receiver_id=receiver_id,
                        frame=frame,
                    )
                )
                if limit is not None and len(out) >= limit:
                    return out
        return out

    def last(self, stream_id: StreamId) -> StoredRecord | None:
        """The most recently appended record (None for unknown streams)."""
        self._require_open()
        log = self._logs.get(stream_id)
        return log.last if log is not None else None

    def streams(self) -> list[StreamId]:
        """Every stream with at least one retained record, sorted."""
        self._require_open()
        return sorted(self._logs)

    def segment_count(self, stream_id: StreamId | None = None) -> int:
        if stream_id is None:
            return self._total_segments
        log = self._logs.get(stream_id)
        return len(log.segments) if log is not None else 0

    def record_count(self, stream_id: StreamId) -> int:
        log = self._logs.get(stream_id)
        if log is None:
            return 0
        return sum(segment.records_held for segment in log.segments)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    def close(self) -> None:
        """Flush and release backend resources. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for log in self._logs.values():
            for segment in log.segments:
                segment.seal()

    def __enter__(self) -> "StreamStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["StoreStats", "StreamStore"]
