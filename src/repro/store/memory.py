"""MemorySegmentStore: the in-process StreamStore backend.

Records live in Python lists, but byte accounting uses the *encoded*
record length — identical to what :class:`FileSegmentStore` writes — so
rotation and retention trip at the same points on both backends and a
test suite exercising one has exercised the policy surface of the other.
"""

from __future__ import annotations

from repro.core.streamid import StreamId
from repro.store.base import StreamStore
from repro.store.segment import Segment


class _MemorySegment(Segment):
    __slots__ = ("_records",)

    def __init__(self, index: int) -> None:
        super().__init__(index)
        self._records: list[tuple[float, int, bytes]] = []

    def _write(
        self,
        encoded: bytes,
        received_at: float,
        receiver_id: int,
        frame: bytes,
    ) -> None:
        self._records.append((received_at, receiver_id, frame))

    def records(self) -> list[tuple[float, int, bytes]]:
        return list(self._records)

    def delete(self) -> None:
        self._records.clear()


class MemorySegmentStore(StreamStore):
    """Segment log held entirely in memory (the default backend)."""

    def _open_segment(self, stream_id: StreamId, index: int) -> Segment:
        return _MemorySegment(index)


__all__ = ["MemorySegmentStore"]
