"""StoreTap: the dispatch-path write-through into a StreamStore.

The Dispatching Service calls :meth:`record` for every arrival that
passes the admission and cluster-ownership gates (fresh traffic at the
stream's owner) and for every handoff-replayed arrival. Those two paths
can both see the same message — the owner appended it fresh, crashed,
and the coordinator replays it to the new owner — so the tap fronts the
store with one :class:`~repro.cluster.link.SequenceWindow` per stream:
a sequence already appended is skipped (``store.duplicates_skipped``),
which keeps the log gap-free *and* duplicate-free through crashes for
exactly the same reason consumer deliveries are.

Appends re-encode the message through the deployment codec, so the
stored frame is the canonical Figure 2 wire image whatever path the
arrival took (radio, session publish, UDP datagram, link replay).
"""

from __future__ import annotations

from typing import Any

from repro.cluster.link import SequenceWindow
from repro.core.envelopes import StreamArrival
from repro.core.streamid import StreamId
from repro.store.base import StreamStore


class StoreTap:
    """Dedupe-guarded append adapter installed into dispatchers."""

    __slots__ = ("store", "_codec", "_window", "_seen", "_skip_counter")

    def __init__(
        self, store: StreamStore, codec: Any, window: int = 512
    ) -> None:
        self.store = store
        self._codec = codec
        self._window = window
        self._seen: dict[StreamId, SequenceWindow] = {}
        self._skip_counter = store.stats.counter("duplicates_skipped")

    def record(self, arrival: StreamArrival) -> bool:
        """Append one arrival; False when the dedupe window skipped it."""
        message = arrival.message
        stream_id = message.stream_id
        entry = self._seen.get(stream_id)
        if entry is None:
            entry = SequenceWindow(self._window)
            self._seen[stream_id] = entry
        if not entry.add(message.sequence):
            self._skip_counter.inc()
            return False
        self.store.append(
            stream_id,
            arrival.received_at,
            arrival.receiver_id,
            self._codec.encode(message),
        )
        return True


__all__ = ["StoreTap"]
