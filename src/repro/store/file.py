"""FileSegmentStore: the durable on-disk StreamStore backend.

Layout::

    <dir>/s<sensor_id>-<stream_index>/seg-<n>.log

Each segment file is a run of length-prefixed records
(:mod:`repro.store.segment`); the highest-numbered file per stream is
the active one, opened in append mode. Writes are a single
``write(record)`` + ``flush()`` per append — an interrupted process can
therefore leave at most one *torn tail record* in one file, and only in
the last segment of each stream.

Opening a directory is crash-tolerant: every segment file is scanned
record-by-record, and a file whose final record is incomplete is
truncated back to its last whole record (``store.truncated_tail``
counts each repair). No corrupt record ever surfaces through ``read``.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.streamid import StreamId
from repro.errors import StoreError
from repro.store.base import StreamStore, _StreamLog
from repro.store.segment import (
    RECORD_META_BYTES,
    RECORD_PREFIX_BYTES,
    Segment,
    StoredRecord,
    scan_records,
)

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".log"
_STREAM_PREFIX = "s"


def _stream_dirname(stream_id: StreamId) -> str:
    return f"{_STREAM_PREFIX}{stream_id.sensor_id}-{stream_id.stream_index}"


def _parse_stream_dirname(name: str) -> StreamId | None:
    if not name.startswith(_STREAM_PREFIX):
        return None
    sensor, _, index = name[len(_STREAM_PREFIX) :].partition("-")
    try:
        return StreamId(int(sensor), int(index))
    except ValueError:
        return None


class _FileSegment(Segment):
    __slots__ = ("path", "_handle")

    def __init__(self, index: int, path: Path) -> None:
        super().__init__(index)
        self.path = path
        self._handle = None

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def _write(
        self,
        encoded: bytes,
        received_at: float,
        receiver_id: int,
        frame: bytes,
    ) -> None:
        handle = self._ensure_handle()
        handle.write(encoded)
        handle.flush()

    def records(self) -> list[tuple[float, int, bytes]]:
        if self._handle is not None:
            self._handle.flush()
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return []
        records, clean = scan_records(data)
        if clean != len(data):  # pragma: no cover - post-open tears only
            raise StoreError(
                f"torn record mid-store in {self.path} "
                f"(clean up to byte {clean} of {len(data)})"
            )
        return records

    def seal(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        self.seal()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        # Prune the stream directory once its last segment is gone.
        try:
            self.path.parent.rmdir()
        except OSError:
            pass


class FileSegmentStore(StreamStore):
    """Durable segment log under one directory, crash-tolerant on open."""

    def __init__(self, directory: str | os.PathLike, **kwargs) -> None:
        super().__init__(**kwargs)
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._load_existing()

    # ------------------------------------------------------------------
    def _open_segment(self, stream_id: StreamId, index: int) -> Segment:
        stream_dir = self._dir / _stream_dirname(stream_id)
        stream_dir.mkdir(exist_ok=True)
        return _FileSegment(
            index, stream_dir / f"{_SEGMENT_PREFIX}{index}{_SEGMENT_SUFFIX}"
        )

    # ------------------------------------------------------------------
    def _load_existing(self) -> None:
        """Rebuild in-memory metadata from disk, repairing torn tails."""
        for stream_dir in sorted(self._dir.iterdir()):
            if not stream_dir.is_dir():
                continue
            stream_id = _parse_stream_dirname(stream_dir.name)
            if stream_id is None:
                continue
            indexed: list[tuple[int, Path]] = []
            for path in stream_dir.iterdir():
                name = path.name
                if not (
                    name.startswith(_SEGMENT_PREFIX)
                    and name.endswith(_SEGMENT_SUFFIX)
                ):
                    continue
                try:
                    index = int(
                        name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
                    )
                except ValueError:
                    continue
                indexed.append((index, path))
            if not indexed:
                continue
            indexed.sort()
            log = None
            for index, path in indexed:
                data = path.read_bytes()
                records, clean = scan_records(data)
                if clean != len(data):
                    # Torn tail: truncate the file back to its last
                    # whole record so future appends extend clean bytes.
                    with open(path, "r+b") as handle:
                        handle.truncate(clean)
                    self.stats.truncated_tail += 1
                if log is None:
                    log = _StreamLog(stream_id)
                    self._logs[stream_id] = log
                segment = _FileSegment(index, path)
                for received_at, receiver_id, frame in records:
                    segment.note(
                        received_at,
                        RECORD_PREFIX_BYTES + RECORD_META_BYTES + len(frame),
                    )
                    log.last = StoredRecord(
                        stream_id=stream_id,
                        received_at=received_at,
                        receiver_id=receiver_id,
                        frame=frame,
                    )
                log.segments.append(segment)
                self._total_segments += 1
                self._total_bytes += segment.bytes_held
            if log is not None:
                log.next_index = indexed[-1][0] + 1
        self._enforce_retention()
        self._update_gauges()

    @property
    def directory(self) -> Path:
        return self._dir

    def close(self) -> None:
        if not self._closed:
            super().close()


__all__ = ["FileSegmentStore"]
