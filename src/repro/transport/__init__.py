"""Deployment transports: how Garnet endpoints reach each other.

The paper's Figure 1 connects middleware services over a *fixed
network*; the reproduction has always modelled that hop with
:class:`~repro.simnet.fixednet.FixedNetwork` inside the discrete-event
kernel. This package names the seam — :class:`Transport` is the
endpoint-addressed message fabric every service actually depends on —
and adds a second implementation that carries the same
:class:`~repro.core.message.MessageCodec` frames over real sockets on
localhost:

- :class:`LiveBroker` serves a deployment over asyncio — TCP for the
  control plane (register/subscribe/discover/advertise), UDP for the
  data plane (codec-framed publishes and deliveries);
- :class:`LiveSession` is the synchronous client, mirroring the
  :class:`~repro.core.session.GarnetSession` surface; with
  ``reconnect=`` it survives broker loss via resume tokens, gap repair
  and a backoff-driven re-dial loop (see :mod:`repro.transport.client`);
- :class:`ChaosProxy` (:mod:`repro.transport.chaos`) injects scripted
  faults — datagram loss, latency, connection resets, blackholes,
  broker restarts — between a live session and its broker;
- ``garnet-broker`` (:mod:`repro.transport.cli`) boots a broker from
  the command line.

Imports of the live pieces are lazy: :mod:`repro.simnet.fixednet`
imports :class:`Transport` from here, and the live broker imports the
middleware, so eager imports would cycle.
"""

from __future__ import annotations

from repro.transport.base import Transport, parse_garnet_url
from repro.transport.framing import (
    CONTROL_FRAME_NAMES,
    ControlFrameAssembler,
    encode_control_frame,
)

_LAZY = {
    "LiveBroker": "repro.transport.broker",
    "LiveSession": "repro.transport.client",
    "connect": "repro.transport.client",
    "DEFAULT_RECONNECT_POLICY": "repro.transport.client",
    "ChaosProxy": "repro.transport.chaos",
    "DatagramLoss": "repro.transport.chaos",
    "LinkLatency": "repro.transport.chaos",
    "ConnectionReset": "repro.transport.chaos",
    "Blackhole": "repro.transport.chaos",
    "BrokerRestart": "repro.transport.chaos",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Transport",
    "parse_garnet_url",
    "ControlFrameAssembler",
    "encode_control_frame",
    "CONTROL_FRAME_NAMES",
    "LiveBroker",
    "LiveSession",
    "connect",
    "DEFAULT_RECONNECT_POLICY",
    "ChaosProxy",
    "DatagramLoss",
    "LinkLatency",
    "ConnectionReset",
    "Blackhole",
    "BrokerRestart",
]
