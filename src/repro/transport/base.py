"""The transport seam: endpoint-addressed one-way message delivery.

Every middleware service talks to its peers through four operations —
own an inbox, disown it, probe for one, and send to one by name. The
simulated :class:`~repro.simnet.fixednet.FixedNetwork` has always been
the only implementation; :class:`Transport` names the contract so the
services are honest about what they require and a socket-backed
implementation can stand in behind the same surface.

The ABC is deliberately *exactly* the surface the simnet path already
exposed — no new methods, no changed semantics — so subclassing it is a
behaviour-frozen refactor (the golden digests in
``tests/test_perf_determinism.py`` pin that).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any
from urllib.parse import urlsplit

from repro.errors import ConfigurationError

#: URL scheme for live broker endpoints, e.g. ``garnet://127.0.0.1:7341``.
URL_SCHEME = "garnet"


class Transport(ABC):
    """One-way, endpoint-addressed message fabric between services.

    Implementations differ in *where* the handler runs (inside the
    discrete-event kernel vs. a socket event loop) and in delivery
    guarantees, not in surface: ``send`` never blocks on the receiver,
    and delivery to a missing endpoint is the implementation's policy
    (retry, dead-letter, or drop) — never an exception at the sender.
    """

    @abstractmethod
    def register_inbox(
        self, name: str, handler: Callable[[Any], None]
    ) -> None:
        """Attach a one-way message handler under a unique endpoint name."""

    @abstractmethod
    def unregister_inbox(self, name: str) -> None:
        """Detach the endpoint; pending sends to it follow drop policy."""

    @abstractmethod
    def has_inbox(self, name: str) -> bool:
        """True when ``name`` currently resolves to a handler."""

    @abstractmethod
    def send(self, destination: str, message: Any) -> None:
        """Deliver ``message`` to ``destination`` asynchronously."""


def parse_garnet_url(url: str) -> tuple[str, int]:
    """``garnet://host:port`` -> ``(host, port)``.

    The port is the broker's TCP *control* port; the UDP data port is
    announced in the HELLO response, not encoded in the URL.
    """
    parts = urlsplit(url)
    if parts.scheme != URL_SCHEME:
        raise ConfigurationError(
            f"expected a {URL_SCHEME}:// URL, got {url!r}"
        )
    if parts.path or parts.query or parts.fragment:
        raise ConfigurationError(
            f"garnet URLs carry only host:port, got {url!r}"
        )
    host = parts.hostname
    if not host:
        raise ConfigurationError(f"garnet URL needs a host: {url!r}")
    try:
        port = parts.port
    except ValueError as exc:
        raise ConfigurationError(f"bad port in garnet URL {url!r}") from exc
    if port is None:
        raise ConfigurationError(f"garnet URL needs a port: {url!r}")
    return host, port


__all__ = ["Transport", "parse_garnet_url", "URL_SCHEME"]
