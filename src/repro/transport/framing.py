"""Socket framing for the live transport's two planes.

**Control plane (TCP).** A byte stream needs explicit message
boundaries. Every control frame is::

    [4-byte length, big-endian][1-byte frame type][JSON body, UTF-8]

where the length counts the type byte plus the body. Responses echo the
request's type with the high bit set (``type | RESPONSE_FLAG``) and
always carry ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``.

**Data plane (UDP).** No extra framing at all: one datagram is exactly
one :class:`~repro.core.message.MessageCodec` message — the Figure 2
wire format already delimits and checksums itself, so wrapping it again
would just duplicate the codec's job.

:class:`ControlFrameAssembler` reassembles control frames from
arbitrarily fragmented stream chunks (TCP guarantees order, not
boundaries); both the broker and the client run one per connection, and
the partial-read tests drive it byte by byte.
"""

from __future__ import annotations

import json
import struct

from repro.errors import TransportError


#: struct for the 4-byte big-endian length prefix.
_LENGTH = struct.Struct(">I")
LENGTH_PREFIX_BYTES = _LENGTH.size

#: Upper bound on one control frame (type byte + JSON body). Control
#: bodies are small metadata; anything bigger is a corrupt or hostile
#: stream and tearing the connection down beats buffering it.
MAX_CONTROL_FRAME = 1 << 20

#: High bit distinguishes a response from the request it answers.
RESPONSE_FLAG = 0x80

# Request frame types (the full control vocabulary).
HELLO = 0x01
SUBSCRIBE = 0x02
UNSUBSCRIBE = 0x03
DISCOVER = 0x04
ADVERTISE = 0x05
PING = 0x06
CLOSE = 0x07
QUERY = 0x08
RESUME = 0x09
NACK = 0x0A

CONTROL_FRAME_NAMES: dict[int, str] = {
    HELLO: "HELLO",
    SUBSCRIBE: "SUBSCRIBE",
    UNSUBSCRIBE: "UNSUBSCRIBE",
    DISCOVER: "DISCOVER",
    ADVERTISE: "ADVERTISE",
    PING: "PING",
    CLOSE: "CLOSE",
    QUERY: "QUERY",
    RESUME: "RESUME",
    NACK: "NACK",
}


def encode_control_frame(frame_type: int, body: dict) -> bytes:
    """Serialise one control frame (request or response)."""
    if not 0 <= frame_type <= 0xFF:
        raise TransportError(f"frame type {frame_type} not a byte")
    encoded = json.dumps(body, separators=(",", ":")).encode("utf-8")
    length = 1 + len(encoded)
    if length > MAX_CONTROL_FRAME:
        raise TransportError(
            f"control frame of {length} bytes exceeds {MAX_CONTROL_FRAME}"
        )
    return _LENGTH.pack(length) + bytes([frame_type]) + encoded


class ControlFrameAssembler:
    """Reassembles control frames from a fragmented TCP byte stream.

    ``feed`` accepts whatever chunk the socket produced — half a length
    prefix, three frames and a tail, anything — and returns every frame
    completed by it, preserving order. State carries across calls.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[tuple[int, dict]]:
        self._buffer.extend(chunk)
        frames: list[tuple[int, dict]] = []
        while True:
            if len(self._buffer) < LENGTH_PREFIX_BYTES:
                return frames
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length < 1 or length > MAX_CONTROL_FRAME:
                raise TransportError(
                    f"control frame length {length} out of range"
                )
            end = LENGTH_PREFIX_BYTES + length
            if len(self._buffer) < end:
                return frames
            frame_type = self._buffer[LENGTH_PREFIX_BYTES]
            raw = bytes(self._buffer[LENGTH_PREFIX_BYTES + 1 : end])
            del self._buffer[:end]
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(
                    f"control frame body is not JSON: {exc}"
                ) from exc
            if not isinstance(body, dict):
                raise TransportError(
                    f"control frame body must be an object, got {body!r}"
                )
            frames.append((frame_type, body))


__all__ = [
    "TransportError",
    "LENGTH_PREFIX_BYTES",
    "MAX_CONTROL_FRAME",
    "RESPONSE_FLAG",
    "HELLO",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "DISCOVER",
    "ADVERTISE",
    "PING",
    "CLOSE",
    "QUERY",
    "RESUME",
    "NACK",
    "CONTROL_FRAME_NAMES",
    "encode_control_frame",
    "ControlFrameAssembler",
]
