"""``garnet-broker``: boot a live Garnet broker on localhost.

Usage::

    garnet-broker [--host 127.0.0.1] [--port 7341] [--data-port 0]

Binds the TCP control plane on ``--port`` and the UDP data plane on
``--data-port`` (0 picks free ports) and announces both on stdout::

    garnet-broker listening control=127.0.0.1:7341 data=127.0.0.1:54012

Scripts (the E20 benchmark, the CI transport-smoke job) parse that line
to discover the ports, then connect with
``repro.transport.connect("garnet://127.0.0.1:7341", name)``. The
broker serves until interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys

from repro.errors import TransportError
from repro.transport.broker import LiveBroker

#: Default control port; chosen outside the ephemeral range and free of
#: registered-service collisions on typical hosts.
DEFAULT_CONTROL_PORT = 7341

ANNOUNCE_PREFIX = "garnet-broker listening"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="garnet-broker", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind both planes on (default: loopback)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_CONTROL_PORT,
        help="TCP control-plane port (0 picks a free port)",
    )
    parser.add_argument(
        "--data-port",
        type=int,
        default=0,
        help="UDP data-plane port (default: pick a free port)",
    )
    parser.add_argument(
        "--no-checksum",
        action="store_true",
        help="serve a deployment whose codec skips the Figure 2 CRC",
    )
    parser.add_argument(
        "--store",
        action="store_true",
        help="retain published streams in a store (enables "
        "replay='history' subscriptions and QUERY)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist the store as file segments under DIR "
        "(implies --store; default: in-memory segments)",
    )
    parser.add_argument(
        "--resume-grace",
        type=float,
        default=None,
        metavar="SECONDS",
        help="park uncleanly-disconnected sessions for SECONDS and "
        "issue resume tokens (default: resume off); with --store-dir "
        "the session table persists as DIR/sessions.json so RESUME "
        "survives a broker restart",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="reap clients that go silent for SECONDS (missed "
        "keepalives / UDP inactivity) via the broker lease machinery "
        "(default: no leases)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    deployment = None
    if (
        args.no_checksum
        or args.store
        or args.store_dir
        or args.resume_grace is not None
        or args.lease_ttl is not None
    ):
        from repro.core.config import GarnetConfig
        from repro.core.middleware import Garnet

        deployment = Garnet(
            config=GarnetConfig(
                publish_location_stream=False,
                checksum=not args.no_checksum,
                store_enabled=bool(args.store or args.store_dir),
                store_backend="file" if args.store_dir else "memory",
                store_dir=args.store_dir,
                broker_lease_ttl=args.lease_ttl,
                transport_resume_grace=args.resume_grace,
            )
        )
    sessions_path = None
    if args.resume_grace is not None and args.store_dir:
        from pathlib import Path

        sessions_path = Path(args.store_dir) / "sessions.json"
    broker = LiveBroker(
        deployment=deployment,
        host=args.host,
        control_port=args.port,
        data_port=args.data_port,
        sessions_path=sessions_path,
    )
    await broker.start()
    print(
        f"{ANNOUNCE_PREFIX} "
        f"control={broker.host}:{broker.control_port} "
        f"data={broker.host}:{broker.data_port}",
        flush=True,
    )
    try:
        await broker.wait_closed()
    except asyncio.CancelledError:
        pass
    finally:
        await broker.stop()


def parse_announce(line: str) -> tuple[str, int, int]:
    """``(host, control_port, data_port)`` from the announce line.

    Raises :class:`TransportError` with the offending input for
    anything that is not a complete, well-formed announce line —
    scripts scrape this off a subprocess pipe, where truncation and
    interleaved output are facts of life and a clear error beats a
    KeyError three frames deep.
    """
    if not line.startswith(ANNOUNCE_PREFIX):
        raise TransportError(f"not a garnet-broker announce line: {line!r}")
    fields = dict(
        part.split("=", 1)
        for part in line[len(ANNOUNCE_PREFIX) :].split()
        if "=" in part
    )
    endpoints = {}
    for label in ("control", "data"):
        value = fields.get(label)
        if value is None:
            raise TransportError(
                f"announce line is missing its {label}= endpoint "
                f"(truncated?): {line!r}"
            )
        host, _, port = value.rpartition(":")
        if not host or not port.isdigit():
            raise TransportError(
                f"announce {label}= endpoint {value!r} is not host:port: "
                f"{line!r}"
            )
        endpoints[label] = (host, int(port))
    control_host, control_port = endpoints["control"]
    return control_host, control_port, endpoints["data"][1]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
