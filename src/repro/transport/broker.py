"""LiveBroker: serve a Garnet deployment over real sockets.

The broker wraps an ordinary (simulated-kernel) :class:`Garnet`
deployment and exposes its consumer surface on localhost:

- **TCP control plane** — one connection per client session. HELLO
  registers a :class:`~repro.core.session.GarnetSession` server-side
  and announces the client's UDP port; SUBSCRIBE / UNSUBSCRIBE /
  DISCOVER / ADVERTISE / PING / CLOSE map 1:1 onto the session API.
- **UDP data plane** — one datagram is one
  :class:`~repro.core.message.MessageCodec` message. Client publishes
  arrive here and are injected into the Dispatching Service exactly the
  way a session publish is; deliveries for subscribed clients go back
  out as codec frames to the UDP address each HELLO announced.

Everything runs on one asyncio event loop, so deployment state needs no
locking: each control frame or datagram is handled, then the simulation
kernel is pumped to quiescence (``run_until_idle``), which fires any
resulting deliveries synchronously. The deployment therefore must not
carry unbounded periodic tasks (the default broker deployment disables
the location beacon for exactly this reason).

**Resilience (PR 8).** With a ``resume_grace`` window configured
(``transport_resume_grace`` / ``garnet-broker --resume-grace``), a
client whose control connection drops *without* a CLOSE is **parked**
rather than torn down: its server-side session, subscriptions and
publisher id stay alive for the grace window, deliveries accumulate in
a bounded parked buffer, and the session token issued at HELLO doubles
as a **resume token**. A RESUME frame on a fresh connection re-attaches
the session and replays only what the client missed — store records
past the client's per-stream cursors plus parked deliveries, deduped so
each missed record is sent exactly once. NACK frames answer per-stream
gap-repair requests from the store. When the deployment's broker runs
leases (``broker_lease_ttl``), a housekeeping task maps the wall clock
onto the simulation clock so vanished clients (missed keepalive PINGs,
UDP inactivity) expire their leases and are reaped — their
subscriptions and publisher ids are freed. A ``sessions_path`` persists
the resumable-session table so RESUME survives a broker restart.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import secrets
import socket
from collections import deque
from pathlib import Path
from typing import Any

from repro.core.dispatching import INBOX as DISPATCH_INBOX
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import StreamArrival
from repro.core.streamid import StreamId
from repro.errors import GarnetError, TransportError
from repro.fanout.frames import encode_batch_datagrams
from repro.transport.framing import (
    ADVERTISE,
    CLOSE,
    DISCOVER,
    HELLO,
    MAX_CONTROL_FRAME,
    NACK,
    PING,
    QUERY,
    RESPONSE_FLAG,
    RESUME,
    SUBSCRIBE,
    UNSUBSCRIBE,
    ControlFrameAssembler,
    encode_control_frame,
)
from repro.util.ids import sequence_is_newer

#: Ceiling on the hex-encoded record bytes one QUERY response carries;
#: leaves headroom under MAX_CONTROL_FRAME for the JSON scaffolding.
#: Responses that would exceed it are cut short with ``truncated: true``
#: so the client can page with ``start=<last received_at>``.
_QUERY_RESPONSE_BUDGET = MAX_CONTROL_FRAME // 2

#: A NACK answers at most this many repair records; clients batch their
#: missing sequences accordingly (the LiveSession caps its batches well
#: below this).
_NACK_RESPONSE_BUDGET = _QUERY_RESPONSE_BUDGET

#: Single-encode cache entries kept alive; eviction is FIFO. A pump
#: rarely fans more than a handful of distinct messages, so this mostly
#: bounds memory on brokers that park frames for absent recipients.
_ENCODE_CACHE_CAPACITY = 256


def _default_deployment() -> Any:
    from repro.core.config import GarnetConfig
    from repro.core.middleware import Garnet

    # No sensors and no periodic tasks: the kernel must drain to idle
    # after every injected event, so the location beacon stays off.
    return Garnet(config=GarnetConfig(publish_location_stream=False))


def _pattern_from_body(body: dict) -> SubscriptionPattern:
    stream_id = body.get("stream_id")
    return SubscriptionPattern(
        stream_id=(
            StreamId(int(stream_id[0]), int(stream_id[1]))
            if stream_id is not None
            else None
        ),
        sensor_id=(
            int(body["sensor_id"])
            if body.get("sensor_id") is not None
            else None
        ),
        stream_index=(
            int(body["stream_index"])
            if body.get("stream_index") is not None
            else None
        ),
        kind=body.get("kind"),
        derived=body.get("derived"),
    )


def _frame_stream_key(frame: bytes) -> str:
    """``"sensor:index"`` from a raw §2 data-message frame."""
    return f"{int.from_bytes(frame[1:4], 'big')}:{frame[4]}"


def _frame_sequence(frame: bytes) -> int:
    return int.from_bytes(frame[5:7], "big")


class _SessionState:
    """The resumable half of one client session.

    Outlives the TCP connection that created it: while no connection is
    attached (``udp_address is None``) the state is *parked* —
    deliveries buffer into ``parked`` and the token stays valid until
    ``deadline``. ``session`` is None only for states reloaded from a
    persisted sessions file after a broker restart; RESUME revives them.
    """

    __slots__ = (
        "token",
        "name",
        "udp_port",
        "keepalive",
        "session",
        "publisher_id",
        "subscriptions",
        "advertised",
        "udp_address",
        "parked",
        "parked_dropped",
        "deadline",
        "batch",
        "outbox",
    )

    def __init__(
        self, token: str, name: str, udp_port: int, park_capacity: int
    ) -> None:
        self.token = token
        self.name = name
        self.udp_port = udp_port
        self.keepalive: float | None = None
        self.session: Any | None = None
        self.publisher_id: int | None = None
        self.subscriptions: dict[int, dict] = {}
        self.advertised: dict[int, tuple[str, bool]] = {}
        self.udp_address: tuple[str, int] | None = None
        self.parked: deque[bytes] = deque(maxlen=park_capacity)
        self.parked_dropped = 0
        self.deadline: float | None = None
        # True when the client announced batch_datagrams support on a
        # batching broker (fanout_enabled): same-pump deliveries pack
        # into one §7 batch datagram instead of one datagram each.
        self.batch = False
        self.outbox: list[bytes] = []

    @property
    def parked_now(self) -> bool:
        return self.udp_address is None

    def to_record(self) -> dict:
        return {
            "name": self.name,
            "udp_port": self.udp_port,
            "publisher_id": self.publisher_id,
            "subscriptions": {
                str(sub_id): body
                for sub_id, body in self.subscriptions.items()
            },
            "advertised": {
                str(index): [kind, encrypted]
                for index, (kind, encrypted) in self.advertised.items()
            },
        }

    @classmethod
    def from_record(
        cls, token: str, record: dict, park_capacity: int
    ) -> "_SessionState":
        state = cls(
            token, str(record["name"]), int(record["udp_port"]), park_capacity
        )
        raw_pid = record.get("publisher_id")
        state.publisher_id = int(raw_pid) if raw_pid is not None else None
        state.subscriptions = {
            int(sub_id): dict(body)
            for sub_id, body in record.get("subscriptions", {}).items()
        }
        state.advertised = {
            int(index): (str(kind), bool(encrypted))
            for index, (kind, encrypted) in record.get(
                "advertised", {}
            ).items()
        }
        return state


class _ClientConnection:
    """Server-side state for one TCP control connection."""

    def __init__(self, broker: "LiveBroker", peer_host: str) -> None:
        self.broker = broker
        self.peer_host = peer_host
        self.state: _SessionState | None = None
        self.assembler = ControlFrameAssembler()
        self.writer: asyncio.StreamWriter | None = None
        self.closed_cleanly = False
        self.last_activity = 0.0
        self.last_renewal = 0.0

    @property
    def session(self) -> Any | None:
        return self.state.session if self.state is not None else None

    @property
    def udp_address(self) -> tuple[str, int] | None:
        return self.state.udp_address if self.state is not None else None

    def close_session(self) -> None:
        if self.state is not None:
            session = self.state.session
            if session is not None and not session.closed:
                session.close()
            self.state.session = None
        self.state = None


class _DataPlaneProtocol(asyncio.DatagramProtocol):
    def __init__(self, broker: "LiveBroker") -> None:
        self._broker = broker
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:  # pragma: no cover
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self._broker._on_datagram(data, addr)


class LiveBroker:
    """Asyncio server carrying a deployment's consumer surface.

    Use from an event loop::

        broker = LiveBroker()
        await broker.start()
        ...
        await broker.stop()

    ``control_port`` / ``data_port`` are the bound ports (resolved after
    :meth:`start` when 0 was requested). ``garnet-broker`` (the CLI) is
    a thin wrapper over this class.

    ``resume_grace`` (default: the deployment config's
    ``transport_resume_grace``) enables session parking and resume
    tokens; ``sessions_path`` additionally persists the resumable
    session table as JSON so RESUME survives a broker restart.
    """

    def __init__(
        self,
        deployment: Any | None = None,
        host: str | None = None,
        control_port: int | None = None,
        data_port: int | None = None,
        resume_grace: float | None = None,
        sessions_path: str | Path | None = None,
    ) -> None:
        self.deployment = (
            deployment if deployment is not None else _default_deployment()
        )
        config = self.deployment.config
        self.host = host if host is not None else config.transport_host
        self._requested_control_port = (
            control_port
            if control_port is not None
            else config.transport_control_port
        )
        self._requested_data_port = (
            data_port if data_port is not None else config.transport_data_port
        )
        self.control_port: int | None = None
        self.data_port: int | None = None
        self._resume_grace = (
            resume_grace
            if resume_grace is not None
            else config.transport_resume_grace
        )
        if self._resume_grace is not None and self._resume_grace <= 0:
            raise TransportError("resume_grace must be positive or None")
        self._park_capacity = config.transport_park_capacity
        self._sessions_path = (
            Path(sessions_path) if sessions_path is not None else None
        )
        self._codec = self.deployment.codec
        self._server: asyncio.AbstractServer | None = None
        self._udp: asyncio.DatagramTransport | None = None
        self._closed = asyncio.Event()
        self._connections: set[_ClientConnection] = set()
        self._serve_tasks: set[asyncio.Task] = set()
        self._states: dict[str, _SessionState] = {}
        self._udp_peers: dict[tuple[str, int], _ClientConnection] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped = False
        self._housekeeper: asyncio.Task | None = None
        self._started_wall = 0.0
        metrics = self.deployment.metrics()
        self._datagrams_in = metrics.counter(
            "transport.datagrams_in", help="data-plane datagrams received"
        )
        self._datagrams_out = metrics.counter(
            "transport.datagrams_out", help="data-plane datagrams sent"
        )
        self._bad_datagrams = metrics.counter(
            "transport.bad_datagrams",
            help="datagrams the codec rejected (truncated, bad CRC)",
        )
        self._control_frames = metrics.counter(
            "transport.control_frames", help="control-plane requests served"
        )
        self._unknown_control = metrics.counter(
            "transport.unknown_control_frames",
            help="control frames of unknown type refused",
        )
        self._sessions_parked = metrics.counter(
            "transport.sessions_parked",
            help="sessions parked after an unclean disconnect",
        )
        self._sessions_resumed = metrics.counter(
            "transport.sessions_resumed",
            help="parked sessions re-attached via RESUME",
        )
        self._sessions_reaped = metrics.counter(
            "transport.sessions_reaped",
            help="sessions torn down by grace expiry or lease reaping",
        )
        self._replayed_records = metrics.counter(
            "transport.replayed_records",
            help="missed records replayed to resuming clients",
        )
        self._parked_dropped = metrics.counter(
            "transport.parked_deliveries_dropped",
            help="parked deliveries evicted by the park-capacity bound",
        )
        self._nack_records = metrics.counter(
            "transport.nack_records",
            help="gap-repair records served from the store",
        )
        # Single-encode fan-out: one codec encode per published message,
        # the bytes object shared by every recipient. Keyed by message
        # identity (the cached message reference keeps the id stable);
        # bounded FIFO so a quiet broker holds no stale frames.
        self._encode_cache: dict[int, tuple[Any, bytes]] = {}
        self._encode_order: deque[int] = deque()
        self._encode_reuse = metrics.counter(
            "transport.encode_reuse",
            help="deliveries served from the single-encode frame cache",
        )
        self._batching = bool(config.fanout_enabled)
        self._batch_budget = config.fanout_datagram_budget
        self._batch_pending: dict[str, _SessionState] = {}
        self._batch_datagrams = metrics.counter(
            "transport.batch_datagrams",
            help="§7 batch datagrams sent on the data plane",
        )
        self._batched_frames = metrics.counter(
            "transport.batched_frames",
            help="data frames carried inside batch datagrams",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopped = False
        self._started_wall = loop.time()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_control_port
        )
        self.control_port = self._server.sockets[0].getsockname()[1]
        # Build the data-plane socket by hand so its receive buffer can
        # be raised before traffic arrives: client publish bursts have
        # no flow control, and the default buffer drops most of one.
        udp_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            udp_socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 22
            )
        except OSError:  # pragma: no cover - kernel may clamp
            pass
        udp_socket.setblocking(False)
        udp_socket.bind((self.host, self._requested_data_port))
        self._udp, _ = await loop.create_datagram_endpoint(
            lambda: _DataPlaneProtocol(self), sock=udp_socket
        )
        self.data_port = self._udp.get_extra_info("sockname")[1]
        self._load_sessions()
        if self._resume_grace is not None or self._lease_ttl is not None:
            self._housekeeper = loop.create_task(self._housekeeping_loop())

    async def stop(self) -> None:
        self._stopped = True
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._housekeeper
            self._housekeeper = None
        # Persist the resumable table *before* closing the sessions so a
        # restarted broker can still honour their tokens.
        self._persist_sessions()
        # Abort the client sockets so peers see EOF/RST immediately —
        # otherwise their next request blocks for a full timeout.
        for connection in list(self._connections):
            connection.close_session()
            self._abort_connection(connection)
        self._connections.clear()
        for state in list(self._states.values()):
            self._drop_state(state, persist=False)
        self._udp_peers.clear()
        if self._udp is not None:
            self._udp.close()
            self._udp = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._serve_tasks:
            await asyncio.gather(
                *self._serve_tasks, return_exceptions=True
            )
        self._pump()
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    @property
    def url(self) -> str:
        if self.control_port is None:
            raise TransportError("broker not started")
        return f"garnet://{self.host}:{self.control_port}"

    @property
    def resume_grace(self) -> float | None:
        return self._resume_grace

    @property
    def _lease_ttl(self) -> float | None:
        return self.deployment.broker.lease_ttl

    def _pump(self) -> None:
        """Drain the simulation kernel after an injected event."""
        self.deployment.run_until_idle()
        if self._batch_pending:
            self._flush_outboxes()

    # ------------------------------------------------------------------
    # Session persistence (RESUME across broker restarts)
    # ------------------------------------------------------------------
    def _persist_sessions(self) -> None:
        if self._sessions_path is None:
            return
        payload = {
            token: state.to_record() for token, state in self._states.items()
        }
        tmp = self._sessions_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=0, sort_keys=True))
        tmp.replace(self._sessions_path)

    def _load_sessions(self) -> None:
        if (
            self._sessions_path is None
            or self._resume_grace is None
            or not self._sessions_path.exists()
        ):
            return
        try:
            payload = json.loads(self._sessions_path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # a torn sessions file costs resumability, not uptime
        deadline = self._loop.time() + self._resume_grace
        for token, record in payload.items():
            try:
                state = _SessionState.from_record(
                    token, record, self._park_capacity
                )
            except (KeyError, TypeError, ValueError):
                continue
            if state.publisher_id is not None:
                # Hold the id until the session resumes or expires, so
                # a fresh client cannot be handed an id whose streams
                # (and subscriber dedupe state) already exist.
                try:
                    self.deployment.reserve_publisher_id(
                        state.publisher_id
                    )
                except (GarnetError, ValueError):
                    continue  # duplicate/garbage entry: not resumable
            state.deadline = deadline
            self._states[token] = state

    # ------------------------------------------------------------------
    # Housekeeping: liveness, leases, park expiry
    # ------------------------------------------------------------------
    async def _housekeeping_loop(self) -> None:
        bounds = [1.0]
        if self._resume_grace is not None:
            bounds.append(self._resume_grace / 4)
        if self._lease_ttl is not None:
            bounds.append(self._lease_ttl / 4)
        period = max(0.05, min(bounds))
        while True:
            await asyncio.sleep(period)
            self._housekeeping_tick()

    def _housekeeping_tick(self) -> None:
        now = self._loop.time()
        if self._lease_ttl is not None:
            # Map the wall clock onto the simulation clock so the lease
            # machinery (granted and reaped in virtual time) tracks real
            # elapsed time; broker deployments carry no periodic tasks,
            # so this advances the clock without firing anything else.
            sim = self.deployment.sim
            elapsed = now - self._started_wall
            if elapsed > sim.now:
                sim.run(until=elapsed)
            # Parked sessions are the broker's promise: keep their
            # leases warm for the whole grace window.
            for state in self._states.values():
                if state.parked_now and state.session is not None:
                    state.session.heartbeat()
            self.deployment.broker.reap_expired_leases()
            for connection in list(self._connections):
                session = connection.session
                if session is None:
                    continue
                if (
                    self.deployment.broker.lease_expiry(session.endpoint)
                    is None
                ):
                    self._reap_connection(connection)
        # Missed keepalives: a client that declared a PING period and
        # went silent (blackhole, frozen process) is cut off; the
        # disconnect path then parks or drops it per resume policy.
        for connection in list(self._connections):
            state = connection.state
            if state is None or not state.keepalive:
                continue
            idle_limit = max(3.0 * state.keepalive, 1.0)
            if now - connection.last_activity > idle_limit:
                self._abort_connection(connection)
        for state in list(self._states.values()):
            if (
                state.parked_now
                and state.deadline is not None
                and now > state.deadline
            ):
                self._sessions_reaped.inc()
                self._drop_state(state)
        self._pump()

    def _reap_connection(self, connection: _ClientConnection) -> None:
        """Tear a lease-expired client fully down (no park, no resume)."""
        state = connection.state
        connection.state = None
        connection.closed_cleanly = True  # suppress parking in the finally
        if state is not None:
            self._sessions_reaped.inc()
            self._drop_state(state)
        self._abort_connection(connection)

    def _abort_connection(self, connection: _ClientConnection) -> None:
        if connection.writer is not None:
            transport = connection.writer.transport
            if transport is not None:
                transport.abort()

    def _drop_state(
        self, state: _SessionState, persist: bool = True
    ) -> None:
        """Close the server-side session and free everything it held."""
        self._states.pop(state.token, None)
        self._batch_pending.pop(state.token, None)
        state.outbox = []
        session = state.session
        state.session = None
        if session is not None and not session.closed:
            session.close()
        if state.publisher_id is not None:
            try:
                self.deployment.release_publisher_id(state.publisher_id)
            except ValueError:
                pass  # never allocated server-side (revival failed early)
            state.publisher_id = None
        if persist:
            self._persist_sessions()

    def _park_state(self, state: _SessionState) -> None:
        if state.udp_address is not None:
            self._udp_peers.pop(state.udp_address, None)
        state.udp_address = None
        if state.outbox:
            # Unflushed batched deliveries must survive the park window
            # like any other in-flight delivery.
            self._batch_pending.pop(state.token, None)
            for frame in state.outbox:
                if len(state.parked) == state.parked.maxlen:
                    state.parked_dropped += 1
                    self._parked_dropped.inc()
                state.parked.append(frame)
            state.outbox = []
        state.deadline = self._loop.time() + self._resume_grace
        self._sessions_parked.inc()
        self._persist_sessions()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, addr) -> None:
        self._datagrams_in.inc()
        connection = self._udp_peers.get(addr)
        if connection is not None:
            connection.last_activity = self._loop.time()
            self._maybe_renew_lease(connection)
        try:
            message = self._codec.decode(data)
        except GarnetError:
            self._bad_datagrams.inc()
            return
        arrival = StreamArrival(
            message=message,
            received_at=self.deployment.sim.now,
            receiver_id=-1,
        )
        self.deployment.network.send(DISPATCH_INBOX, arrival)
        self._pump()

    def _encode_shared(self, message: Any) -> bytes:
        """One codec encode per message, shared by every recipient.

        Messages fanning out to N subscribers used to encode N times;
        the immutable frame is cached by message identity (the cached
        reference keeps the id stable for the entry's lifetime) and
        every hit counts under ``transport.encode_reuse``.
        """
        key = id(message)
        entry = self._encode_cache.get(key)
        if entry is not None and entry[0] is message:
            self._encode_reuse.inc()
            return entry[1]
        frame = self._codec.encode(message)
        if entry is None:
            if len(self._encode_order) >= _ENCODE_CACHE_CAPACITY:
                self._encode_cache.pop(self._encode_order.popleft(), None)
            self._encode_order.append(key)
        self._encode_cache[key] = (message, frame)
        return frame

    def _deliver_to_state(
        self, state: _SessionState, arrival: StreamArrival
    ) -> None:
        """session.on_data hook: fan one delivery out over UDP (or park)."""
        frame = self._encode_shared(arrival.message)
        if state.udp_address is None:
            if len(state.parked) == state.parked.maxlen:
                state.parked_dropped += 1
                self._parked_dropped.inc()
            state.parked.append(frame)
            return
        if self._udp is None:
            return
        if state.batch:
            # Collect until the pump drains; one datagram per flush.
            state.outbox.append(frame)
            self._batch_pending[state.token] = state
            return
        self._udp.sendto(frame, state.udp_address)
        self._datagrams_out.inc()

    def _flush_outboxes(self) -> None:
        pending, self._batch_pending = self._batch_pending, {}
        for state in pending.values():
            frames, state.outbox = state.outbox, []
            if not frames or state.udp_address is None or self._udp is None:
                continue
            self._send_frames(state, frames)

    def _send_frames(
        self, state: _SessionState, frames: list[bytes]
    ) -> None:
        """Send encoded frames to a live recipient, batching when it may.

        A single frame keeps the historical bare-datagram shape; two or
        more pack into §7 batch datagrams (``fanout_datagram_budget``
        bytes each).
        """
        if len(frames) == 1 or not state.batch:
            for frame in frames:
                self._udp.sendto(frame, state.udp_address)
                self._datagrams_out.inc()
            return
        for datagram in encode_batch_datagrams(frames, self._batch_budget):
            self._udp.sendto(datagram, state.udp_address)
            self._datagrams_out.inc()
            self._batch_datagrams.inc()
        self._batched_frames.inc(len(frames))

    def _maybe_renew_lease(self, connection: _ClientConnection) -> None:
        if self._lease_ttl is None or connection.session is None:
            return
        now = self._loop.time()
        if now - connection.last_renewal < min(1.0, self._lease_ttl / 4):
            return
        connection.last_renewal = now
        connection.session.heartbeat()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        connection = _ClientConnection(self, peer[0] if peer else self.host)
        connection.writer = writer
        connection.last_activity = (
            self._loop.time() if self._loop is not None else 0.0
        )
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.add(task)
            task.add_done_callback(self._serve_tasks.discard)
        self._connections.add(connection)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = connection.assembler.feed(chunk)
                except TransportError:
                    break  # corrupt stream: drop the connection
                closing = False
                for frame_type, body in frames:
                    response = self._handle_frame(
                        connection, frame_type, body
                    )
                    writer.write(
                        encode_control_frame(
                            frame_type | RESPONSE_FLAG, response
                        )
                    )
                    if frame_type == CLOSE:
                        closing = True
                await writer.drain()
                if closing:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(connection)
            state = connection.state
            connection.state = None
            if state is not None and not self._stopped:
                if (
                    not connection.closed_cleanly
                    and self._resume_grace is not None
                    and state.session is not None
                ):
                    self._park_state(state)
                else:
                    if state.udp_address is not None:
                        self._udp_peers.pop(state.udp_address, None)
                    self._drop_state(state)
            self._pump()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _handle_frame(
        self, connection: _ClientConnection, frame_type: int, body: dict
    ) -> dict:
        self._control_frames.inc()
        if self._loop is not None:
            connection.last_activity = self._loop.time()
        try:
            if frame_type == HELLO:
                return self._on_hello(connection, body)
            if frame_type == RESUME:
                return self._on_resume(connection, body)
            if connection.session is None:
                raise TransportError("HELLO must precede other frames")
            self._maybe_renew_lease(connection)
            if frame_type == SUBSCRIBE:
                return self._on_subscribe(connection, body)
            if frame_type == UNSUBSCRIBE:
                subscription_id = int(body["subscription_id"])
                connection.session.unsubscribe(subscription_id)
                connection.state.subscriptions.pop(subscription_id, None)
                self._persist_sessions()
                self._pump()
                return {"ok": True}
            if frame_type == DISCOVER:
                return self._on_discover(connection, body)
            if frame_type == ADVERTISE:
                return self._on_advertise(connection, body)
            if frame_type == QUERY:
                return self._on_query(connection, body)
            if frame_type == NACK:
                return self._on_nack(connection, body)
            if frame_type == PING:
                return {"ok": True, "time": self.deployment.sim.now}
            if frame_type == CLOSE:
                connection.closed_cleanly = True
                state = connection.state
                connection.state = None
                if state is not None:
                    if state.udp_address is not None:
                        self._udp_peers.pop(state.udp_address, None)
                    self._drop_state(state)
                self._pump()
                return {"ok": True}
            self._unknown_control.inc()
            raise TransportError(f"unknown frame type 0x{frame_type:02x}")
        except GarnetError as exc:
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"malformed body: {exc!r}"}

    # ------------------------------------------------------------------
    def _on_hello(self, connection: _ClientConnection, body: dict) -> dict:
        if connection.state is not None:
            raise TransportError("session already established")
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise TransportError("HELLO needs a non-empty session name")
        udp_port = int(body["udp_port"])
        if self._resume_grace is not None:
            # A re-HELLO with a parked session's name means the client
            # lost its token; the parked ghost yields to the live one.
            for state in list(self._states.values()):
                if state.name == name and state.parked_now:
                    self._drop_state(state)
        session = self.deployment.connect(name, heartbeat_period=None)
        token = secrets.token_hex(16)
        state = _SessionState(token, name, udp_port, self._park_capacity)
        state.session = session
        state.udp_address = (connection.peer_host, udp_port)
        keepalive = body.get("keepalive")
        state.keepalive = float(keepalive) if keepalive else None
        state.batch = self._batching and bool(body.get("batch_datagrams"))
        connection.state = state
        session.on_data(
            lambda arrival, s=state: self._deliver_to_state(s, arrival)
        )
        state.publisher_id = session.ensure_publisher_id()
        self._pump()
        response = {
            "ok": True,
            "publisher_id": state.publisher_id,
            "data_port": self.data_port,
            "batch_datagrams": state.batch,
        }
        if self._lease_ttl is not None:
            response["lease_ttl"] = self._lease_ttl
        self._udp_peers[state.udp_address] = connection
        if self._resume_grace is not None:
            self._states[token] = state
            self._persist_sessions()
            response["resume_token"] = token
            response["resume_grace"] = self._resume_grace
        return response

    # ------------------------------------------------------------------
    # Resume + gap repair
    # ------------------------------------------------------------------
    def _on_resume(self, connection: _ClientConnection, body: dict) -> dict:
        if connection.state is not None:
            raise TransportError("session already established")
        if self._resume_grace is None:
            raise TransportError("this broker does not issue resume tokens")
        token = body.get("token")
        state = self._states.get(token) if isinstance(token, str) else None
        if state is None:
            raise TransportError("unknown or expired resume token")
        if not state.parked_now:
            # The client re-dialed before this side noticed the old
            # socket die: the new connection wins, the stale one is
            # detached and aborted rather than refusing the resume.
            for stale in list(self._connections):
                if stale.state is state:
                    stale.state = None
                    stale.closed_cleanly = True
                    self._abort_connection(stale)
            if state.udp_address is not None:
                self._udp_peers.pop(state.udp_address, None)
            state.udp_address = None
        udp_port = int(body["udp_port"])
        cursors = self._parse_cursors(body.get("cursors"))
        restored = state.session is not None
        if restored:
            mapping = {
                sub_id: sub_id for sub_id in state.subscriptions
            }
        else:
            mapping = self._revive_state(state)
        state.udp_port = udp_port
        state.udp_address = (connection.peer_host, udp_port)
        state.deadline = None
        keepalive = body.get("keepalive")
        state.keepalive = float(keepalive) if keepalive else None
        state.batch = self._batching and bool(body.get("batch_datagrams"))
        connection.state = state
        self._udp_peers[state.udp_address] = connection
        self._sessions_resumed.inc()
        self._pump()
        replayed_store, replayed_parked = self._replay_missed(state, cursors)
        self._persist_sessions()
        return {
            "ok": True,
            "publisher_id": state.publisher_id,
            "data_port": self.data_port,
            "resume_token": state.token,
            "resume_grace": self._resume_grace,
            "restored": restored,
            "subscriptions": {
                str(old): new for old, new in mapping.items()
            },
            "replayed": replayed_store + replayed_parked,
            "replayed_store": replayed_store,
            "replayed_parked": replayed_parked,
        }

    @staticmethod
    def _parse_cursors(raw: Any) -> dict[str, int]:
        if not isinstance(raw, dict):
            return {}
        cursors = {}
        for key, value in raw.items():
            sensor, _, index = str(key).partition(":")
            cursors[f"{int(sensor)}:{int(index)}"] = int(value) & 0xFFFF
        return cursors

    def _revive_state(self, state: _SessionState) -> dict[int, int]:
        """Rebuild a persisted session on a freshly restarted broker."""
        session = self.deployment.connect(state.name, heartbeat_period=None)
        try:
            return self._rebuild_session(state, session)
        except GarnetError:
            session.close()
            state.session = None
            raise

    def _rebuild_session(
        self, state: _SessionState, session: Any
    ) -> dict[int, int]:
        state.session = session
        if state.publisher_id is not None:
            session.adopt_publisher_id(state.publisher_id, reserved=True)
        session.on_data(
            lambda arrival, s=state: self._deliver_to_state(s, arrival)
        )
        for index, (kind, encrypted) in state.advertised.items():
            try:
                session.broker.advertise(
                    session.token,
                    StreamId(state.publisher_id, index),
                    kind=kind,
                    encrypted=encrypted,
                )
            except GarnetError:  # pragma: no cover - registry conflict
                pass
        mapping: dict[int, int] = {}
        subscriptions: dict[int, dict] = {}
        for old_id, body in state.subscriptions.items():
            new_id = session.subscribe(_pattern_from_body(body))
            mapping[old_id] = new_id
            subscriptions[new_id] = body
        state.subscriptions = subscriptions
        return mapping

    def _replay_missed(
        self, state: _SessionState, cursors: dict[str, int]
    ) -> tuple[int, int]:
        """Send exactly the records the client missed, exactly once.

        Store records past each per-stream cursor first (gap-free even
        when the park buffer overflowed), then parked deliveries the
        store pass did not already cover. Without a store the parked
        buffer alone is replayed, still filtered by the cursors.
        """
        sent: set[tuple[str, int]] = set()
        to_send: list[bytes] = []
        replayed_store = 0
        store = self.deployment.store
        if store is not None and self._udp is not None:
            for key, cursor in cursors.items():
                sensor, _, index = key.partition(":")
                stream_id = StreamId(int(sensor), int(index))
                for record in store.read(stream_id):
                    sequence = _frame_sequence(record.frame)
                    if not sequence_is_newer(sequence, cursor):
                        continue
                    if (key, sequence) in sent:
                        continue
                    sent.add((key, sequence))
                    to_send.append(record.frame)
                    replayed_store += 1
        replayed_parked = 0
        if self._udp is not None:
            for frame in state.parked:
                key = _frame_stream_key(frame)
                sequence = _frame_sequence(frame)
                cursor = cursors.get(key)
                if cursor is not None and not sequence_is_newer(
                    sequence, cursor
                ):
                    continue
                if (key, sequence) in sent:
                    continue
                sent.add((key, sequence))
                to_send.append(frame)
                replayed_parked += 1
        if to_send:
            # Batching clients take the whole catch-up span as §7 batch
            # datagrams; everyone else gets the per-record replay.
            self._send_frames(state, to_send)
        state.parked.clear()
        if replayed_store or replayed_parked:
            self._replayed_records.inc(replayed_store + replayed_parked)
        return replayed_store, replayed_parked

    def _on_nack(self, connection: _ClientConnection, body: dict) -> dict:
        store = self.deployment.store
        raw_stream = body["stream_id"]
        stream_id = StreamId(int(raw_stream[0]), int(raw_stream[1]))
        wanted = {int(sequence) & 0xFFFF for sequence in body["sequences"]}
        if not wanted:
            raise TransportError("NACK needs at least one sequence")
        records: list[str] = []
        found: set[int] = set()
        if store is not None:
            budget = _NACK_RESPONSE_BUDGET
            for record in store.read(stream_id):
                sequence = _frame_sequence(record.frame)
                if sequence not in wanted or sequence in found:
                    continue
                hex_frame = record.frame.hex()
                if len(hex_frame) > budget:
                    break
                budget -= len(hex_frame)
                found.add(sequence)
                records.append(hex_frame)
                if found == wanted:
                    break
        if found:
            self._nack_records.inc(len(found))
        return {
            "ok": True,
            "records": records,
            "missing": sorted(wanted - found),
        }

    # ------------------------------------------------------------------
    def _on_subscribe(
        self, connection: _ClientConnection, body: dict
    ) -> dict:
        pattern = _pattern_from_body(body)
        replay = body.get("replay") or "none"
        subscription_id = connection.session.subscribe(
            pattern, replay=str(replay)
        )
        ledger_body = {
            key: body.get(key)
            for key in (
                "stream_id",
                "sensor_id",
                "stream_index",
                "kind",
                "derived",
            )
        }
        connection.state.subscriptions[subscription_id] = ledger_body
        self._persist_sessions()
        self._pump()
        return {"ok": True, "subscription_id": subscription_id}

    def _on_query(self, connection: _ClientConnection, body: dict) -> dict:
        store = self.deployment.store
        if store is None:
            raise TransportError(
                "this broker has no stream store (store_enabled=False)"
            )
        raw_stream = body["stream_id"]
        stream_id = StreamId(int(raw_stream[0]), int(raw_stream[1]))
        start = body.get("start")
        end = body.get("end")
        limit = body.get("limit")
        records = store.read(
            stream_id,
            start=float(start) if start is not None else None,
            end=float(end) if end is not None else None,
            limit=int(limit) if limit is not None else None,
        )
        store.stats.queries += 1
        store.stats.records_queried += len(records)
        entries = []
        budget = _QUERY_RESPONSE_BUDGET
        truncated = False
        for record in records:
            hex_frame = record.frame.hex()
            if len(hex_frame) > budget:
                truncated = True
                break
            budget -= len(hex_frame)
            entries.append(
                {
                    "received_at": record.received_at,
                    "receiver_id": record.receiver_id,
                    "frame": hex_frame,
                }
            )
        return {"ok": True, "records": entries, "truncated": truncated}

    def _on_discover(
        self, connection: _ClientConnection, body: dict
    ) -> dict:
        descriptors = connection.session.discover(
            kind=body.get("kind"),
            sensor_id=(
                int(body["sensor_id"])
                if body.get("sensor_id") is not None
                else None
            ),
            derived=body.get("derived"),
        )
        return {
            "ok": True,
            "streams": [
                {
                    "sensor_id": d.stream_id.sensor_id,
                    "stream_index": d.stream_id.stream_index,
                    "kind": d.kind,
                    "publisher": d.publisher,
                    "encrypted": d.encrypted,
                    "derived": d.is_derived,
                }
                for d in descriptors
            ],
        }

    def _on_advertise(
        self, connection: _ClientConnection, body: dict
    ) -> dict:
        session = connection.session
        stream_index = int(body["stream_index"])
        kind = str(body.get("kind", ""))
        encrypted = bool(body.get("encrypted", False))
        stream_id = StreamId(session.ensure_publisher_id(), stream_index)
        session.broker.advertise(
            session.token, stream_id, kind=kind, encrypted=encrypted
        )
        connection.state.advertised[stream_index] = (kind, encrypted)
        self._persist_sessions()
        self._pump()
        return {
            "ok": True,
            "stream_id": [stream_id.sensor_id, stream_id.stream_index],
        }


__all__ = ["LiveBroker"]
