"""LiveBroker: serve a Garnet deployment over real sockets.

The broker wraps an ordinary (simulated-kernel) :class:`Garnet`
deployment and exposes its consumer surface on localhost:

- **TCP control plane** — one connection per client session. HELLO
  registers a :class:`~repro.core.session.GarnetSession` server-side
  and announces the client's UDP port; SUBSCRIBE / UNSUBSCRIBE /
  DISCOVER / ADVERTISE / PING / CLOSE map 1:1 onto the session API.
- **UDP data plane** — one datagram is one
  :class:`~repro.core.message.MessageCodec` message. Client publishes
  arrive here and are injected into the Dispatching Service exactly the
  way a session publish is; deliveries for subscribed clients go back
  out as codec frames to the UDP address each HELLO announced.

Everything runs on one asyncio event loop, so deployment state needs no
locking: each control frame or datagram is handled, then the simulation
kernel is pumped to quiescence (``run_until_idle``), which fires any
resulting deliveries synchronously. The deployment therefore must not
carry unbounded periodic tasks (the default broker deployment disables
the location beacon for exactly this reason).
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any

from repro.core.dispatching import INBOX as DISPATCH_INBOX
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import StreamArrival
from repro.core.streamid import StreamId
from repro.errors import GarnetError, TransportError
from repro.transport.framing import (
    ADVERTISE,
    CLOSE,
    DISCOVER,
    HELLO,
    MAX_CONTROL_FRAME,
    PING,
    QUERY,
    RESPONSE_FLAG,
    SUBSCRIBE,
    UNSUBSCRIBE,
    ControlFrameAssembler,
    encode_control_frame,
)

#: Ceiling on the hex-encoded record bytes one QUERY response carries;
#: leaves headroom under MAX_CONTROL_FRAME for the JSON scaffolding.
#: Responses that would exceed it are cut short with ``truncated: true``
#: so the client can page with ``start=<last received_at>``.
_QUERY_RESPONSE_BUDGET = MAX_CONTROL_FRAME // 2


def _default_deployment() -> Any:
    from repro.core.config import GarnetConfig
    from repro.core.middleware import Garnet

    # No sensors and no periodic tasks: the kernel must drain to idle
    # after every injected event, so the location beacon stays off.
    return Garnet(config=GarnetConfig(publish_location_stream=False))


class _ClientConnection:
    """Server-side state for one TCP control connection."""

    def __init__(self, broker: "LiveBroker", peer_host: str) -> None:
        self.broker = broker
        self.peer_host = peer_host
        self.session: Any | None = None
        self.udp_address: tuple[str, int] | None = None
        self.assembler = ControlFrameAssembler()

    def close_session(self) -> None:
        if self.session is not None and not self.session.closed:
            self.session.close()
        self.session = None


class _DataPlaneProtocol(asyncio.DatagramProtocol):
    def __init__(self, broker: "LiveBroker") -> None:
        self._broker = broker
        self.transport: asyncio.DatagramTransport | None = None

    def connection_made(self, transport) -> None:  # pragma: no cover
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self._broker._on_datagram(data, addr)


class LiveBroker:
    """Asyncio server carrying a deployment's consumer surface.

    Use from an event loop::

        broker = LiveBroker()
        await broker.start()
        ...
        await broker.stop()

    ``control_port`` / ``data_port`` are the bound ports (resolved after
    :meth:`start` when 0 was requested). ``garnet-broker`` (the CLI) is
    a thin wrapper over this class.
    """

    def __init__(
        self,
        deployment: Any | None = None,
        host: str | None = None,
        control_port: int | None = None,
        data_port: int | None = None,
    ) -> None:
        self.deployment = (
            deployment if deployment is not None else _default_deployment()
        )
        config = self.deployment.config
        self.host = host if host is not None else config.transport_host
        self._requested_control_port = (
            control_port
            if control_port is not None
            else config.transport_control_port
        )
        self._requested_data_port = (
            data_port if data_port is not None else config.transport_data_port
        )
        self.control_port: int | None = None
        self.data_port: int | None = None
        self._codec = self.deployment.codec
        self._server: asyncio.AbstractServer | None = None
        self._udp: asyncio.DatagramTransport | None = None
        self._closed = asyncio.Event()
        self._connections: set[_ClientConnection] = set()
        metrics = self.deployment.metrics()
        self._datagrams_in = metrics.counter(
            "transport.datagrams_in", help="data-plane datagrams received"
        )
        self._datagrams_out = metrics.counter(
            "transport.datagrams_out", help="data-plane datagrams sent"
        )
        self._bad_datagrams = metrics.counter(
            "transport.bad_datagrams",
            help="datagrams the codec rejected (truncated, bad CRC)",
        )
        self._control_frames = metrics.counter(
            "transport.control_frames", help="control-plane requests served"
        )
        self._unknown_control = metrics.counter(
            "transport.unknown_control_frames",
            help="control frames of unknown type refused",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_control_port
        )
        self.control_port = self._server.sockets[0].getsockname()[1]
        # Build the data-plane socket by hand so its receive buffer can
        # be raised before traffic arrives: client publish bursts have
        # no flow control, and the default buffer drops most of one.
        udp_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            udp_socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, 1 << 22
            )
        except OSError:  # pragma: no cover - kernel may clamp
            pass
        udp_socket.setblocking(False)
        udp_socket.bind((self.host, self._requested_data_port))
        self._udp, _ = await loop.create_datagram_endpoint(
            lambda: _DataPlaneProtocol(self), sock=udp_socket
        )
        self.data_port = self._udp.get_extra_info("sockname")[1]

    async def stop(self) -> None:
        for connection in list(self._connections):
            connection.close_session()
        self._connections.clear()
        if self._udp is not None:
            self._udp.close()
            self._udp = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pump()
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    @property
    def url(self) -> str:
        if self.control_port is None:
            raise TransportError("broker not started")
        return f"garnet://{self.host}:{self.control_port}"

    def _pump(self) -> None:
        """Drain the simulation kernel after an injected event."""
        self.deployment.run_until_idle()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, addr) -> None:
        self._datagrams_in.inc()
        try:
            message = self._codec.decode(data)
        except GarnetError:
            self._bad_datagrams.inc()
            return
        arrival = StreamArrival(
            message=message,
            received_at=self.deployment.sim.now,
            receiver_id=-1,
        )
        self.deployment.network.send(DISPATCH_INBOX, arrival)
        self._pump()

    def _deliver_to_client(
        self, connection: _ClientConnection, arrival: StreamArrival
    ) -> None:
        """session.on_data hook: fan one delivery out over UDP."""
        if self._udp is None or connection.udp_address is None:
            return
        self._udp.sendto(
            self._codec.encode(arrival.message), connection.udp_address
        )
        self._datagrams_out.inc()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        connection = _ClientConnection(self, peer[0] if peer else self.host)
        self._connections.add(connection)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    frames = connection.assembler.feed(chunk)
                except TransportError:
                    break  # corrupt stream: drop the connection
                closing = False
                for frame_type, body in frames:
                    response = self._handle_frame(
                        connection, frame_type, body
                    )
                    writer.write(
                        encode_control_frame(
                            frame_type | RESPONSE_FLAG, response
                        )
                    )
                    if frame_type == CLOSE:
                        closing = True
                await writer.drain()
                if closing:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(connection)
            connection.close_session()
            self._pump()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _handle_frame(
        self, connection: _ClientConnection, frame_type: int, body: dict
    ) -> dict:
        self._control_frames.inc()
        try:
            if frame_type == HELLO:
                return self._on_hello(connection, body)
            if connection.session is None:
                raise TransportError("HELLO must precede other frames")
            if frame_type == SUBSCRIBE:
                return self._on_subscribe(connection, body)
            if frame_type == UNSUBSCRIBE:
                connection.session.unsubscribe(int(body["subscription_id"]))
                self._pump()
                return {"ok": True}
            if frame_type == DISCOVER:
                return self._on_discover(connection, body)
            if frame_type == ADVERTISE:
                return self._on_advertise(connection, body)
            if frame_type == QUERY:
                return self._on_query(connection, body)
            if frame_type == PING:
                return {"ok": True, "time": self.deployment.sim.now}
            if frame_type == CLOSE:
                connection.close_session()
                self._pump()
                return {"ok": True}
            self._unknown_control.inc()
            raise TransportError(f"unknown frame type 0x{frame_type:02x}")
        except GarnetError as exc:
            return {"ok": False, "error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"malformed body: {exc!r}"}

    def _on_hello(self, connection: _ClientConnection, body: dict) -> dict:
        if connection.session is not None:
            raise TransportError("session already established")
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise TransportError("HELLO needs a non-empty session name")
        udp_port = int(body["udp_port"])
        session = self.deployment.connect(name, heartbeat_period=None)
        connection.session = session
        connection.udp_address = (connection.peer_host, udp_port)
        session.on_data(
            lambda arrival, c=connection: self._deliver_to_client(c, arrival)
        )
        publisher_id = session.ensure_publisher_id()
        self._pump()
        return {
            "ok": True,
            "publisher_id": publisher_id,
            "data_port": self.data_port,
        }

    def _on_subscribe(
        self, connection: _ClientConnection, body: dict
    ) -> dict:
        stream_id = body.get("stream_id")
        pattern = SubscriptionPattern(
            stream_id=(
                StreamId(int(stream_id[0]), int(stream_id[1]))
                if stream_id is not None
                else None
            ),
            sensor_id=(
                int(body["sensor_id"])
                if body.get("sensor_id") is not None
                else None
            ),
            stream_index=(
                int(body["stream_index"])
                if body.get("stream_index") is not None
                else None
            ),
            kind=body.get("kind"),
            derived=body.get("derived"),
        )
        replay = body.get("replay") or "none"
        subscription_id = connection.session.subscribe(
            pattern, replay=str(replay)
        )
        self._pump()
        return {"ok": True, "subscription_id": subscription_id}

    def _on_query(self, connection: _ClientConnection, body: dict) -> dict:
        store = self.deployment.store
        if store is None:
            raise TransportError(
                "this broker has no stream store (store_enabled=False)"
            )
        raw_stream = body["stream_id"]
        stream_id = StreamId(int(raw_stream[0]), int(raw_stream[1]))
        start = body.get("start")
        end = body.get("end")
        limit = body.get("limit")
        records = store.read(
            stream_id,
            start=float(start) if start is not None else None,
            end=float(end) if end is not None else None,
            limit=int(limit) if limit is not None else None,
        )
        store.stats.queries += 1
        store.stats.records_queried += len(records)
        entries = []
        budget = _QUERY_RESPONSE_BUDGET
        truncated = False
        for record in records:
            hex_frame = record.frame.hex()
            if len(hex_frame) > budget:
                truncated = True
                break
            budget -= len(hex_frame)
            entries.append(
                {
                    "received_at": record.received_at,
                    "receiver_id": record.receiver_id,
                    "frame": hex_frame,
                }
            )
        return {"ok": True, "records": entries, "truncated": truncated}

    def _on_discover(
        self, connection: _ClientConnection, body: dict
    ) -> dict:
        descriptors = connection.session.discover(
            kind=body.get("kind"),
            sensor_id=(
                int(body["sensor_id"])
                if body.get("sensor_id") is not None
                else None
            ),
            derived=body.get("derived"),
        )
        return {
            "ok": True,
            "streams": [
                {
                    "sensor_id": d.stream_id.sensor_id,
                    "stream_index": d.stream_id.stream_index,
                    "kind": d.kind,
                    "publisher": d.publisher,
                    "encrypted": d.encrypted,
                    "derived": d.is_derived,
                }
                for d in descriptors
            ],
        }

    def _on_advertise(
        self, connection: _ClientConnection, body: dict
    ) -> dict:
        session = connection.session
        stream_id = StreamId(
            session.ensure_publisher_id(), int(body["stream_index"])
        )
        session.broker.advertise(
            session.token,
            stream_id,
            kind=str(body.get("kind", "")),
            encrypted=bool(body.get("encrypted", False)),
        )
        self._pump()
        return {
            "ok": True,
            "stream_id": [stream_id.sensor_id, stream_id.stream_index],
        }


__all__ = ["LiveBroker"]
