"""LiveSession: the socket client mirroring the GarnetSession surface.

``connect("garnet://host:port", name)`` opens two sockets against a
running :class:`~repro.transport.broker.LiveBroker` (or the
``garnet-broker`` CLI):

- a **TCP** connection for the control plane — requests are synchronous
  (send a frame, block for its response), serialised under a lock;
- a **UDP** socket for the data plane — publishes go out as
  :class:`~repro.core.message.MessageCodec` datagrams, and a daemon
  reader thread decodes incoming delivery datagrams into
  :class:`~repro.core.envelopes.StreamArrival` values for the
  ``on_data`` callbacks (the same callback shape simulated sessions
  use, so consumer code ports across transports unchanged).

The client is deliberately synchronous: experiment drivers and tests
want straight-line code, and the broker end is where the concurrency
lives.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.core.envelopes import StreamArrival
from repro.core.message import DataMessage, MessageCodec
from repro.core.streamid import StreamId
from repro.errors import GarnetError, TransportError
from repro.transport.base import parse_garnet_url
from repro.transport.framing import (
    ADVERTISE,
    CLOSE,
    DISCOVER,
    HELLO,
    PING,
    QUERY,
    RESPONSE_FLAG,
    SUBSCRIBE,
    UNSUBSCRIBE,
    ControlFrameAssembler,
    encode_control_frame,
)

DataCallback = Callable[[StreamArrival], None]

#: Ask the kernel for a generous datagram receive buffer: loopback UDP
#: still drops when a burst outruns the reader thread.
_RECV_BUFFER = 1 << 22


class LiveSession:
    """A consumer session over real sockets.

    Mirrors the :class:`~repro.core.session.GarnetSession` API surface
    (``subscribe`` / ``unsubscribe`` / ``discover`` / ``publish`` /
    ``on_data`` / ``close``) so code written against the simulated
    middleware drives a live broker unchanged.
    """

    def __init__(
        self,
        url: str,
        name: str,
        checksum: bool = True,
        timeout: float = 10.0,
    ) -> None:
        if not name:
            raise TransportError("session name must be non-empty")
        self._name = name
        self._codec = MessageCodec(checksum=checksum)
        self._callbacks: list[DataCallback] = []
        self._subscriptions: dict[int, dict] = {}
        self._publish_sequences: dict[int, int] = {}
        self._advertised: set[int] = set()
        self._closed = False
        self._lock = threading.Lock()
        self._assembler = ControlFrameAssembler()
        self.deliveries = 0
        self.published = 0

        host, port = parse_garnet_url(url)
        self._tcp = socket.create_connection((host, port), timeout=timeout)
        self._tcp.settimeout(timeout)
        self._udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self._udp.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, _RECV_BUFFER
            )
        except OSError:  # pragma: no cover - kernel may clamp, never raise
            pass
        # Bind on the interface the TCP connection resolved to, so the
        # broker's deliveries (addressed to that interface) reach us.
        self._udp.bind((self._tcp.getsockname()[0], 0))
        self._udp_port = self._udp.getsockname()[1]

        welcome = self._request(
            HELLO, {"name": name, "udp_port": self._udp_port}
        )
        self._publisher_id = int(welcome["publisher_id"])
        self._data_address = (host, int(welcome["data_port"]))

        self._reader = threading.Thread(
            target=self._read_datagrams,
            name=f"garnet-live-{name}",
            daemon=True,
        )
        self._reader.start()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def publisher_id(self) -> int:
        return self._publisher_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def subscription_ids(self) -> tuple[int, ...]:
        return tuple(self._subscriptions)

    def _require_open(self) -> None:
        if self._closed:
            raise TransportError(f"session {self._name!r} is closed")

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _request(self, frame_type: int, body: dict) -> dict:
        """Send one control frame and block for its response."""
        with self._lock:
            self._tcp.sendall(encode_control_frame(frame_type, body))
            while True:
                chunk = self._tcp.recv(65536)
                if not chunk:
                    raise TransportError("broker closed the control channel")
                frames = self._assembler.feed(chunk)
                if frames:
                    break
        if len(frames) != 1:
            raise TransportError(
                f"expected one response, got {len(frames)} frames"
            )
        response_type, response = frames[0]
        if response_type != (frame_type | RESPONSE_FLAG):
            raise TransportError(
                f"response type 0x{response_type:02x} does not answer "
                f"request 0x{frame_type:02x}"
            )
        if not response.get("ok"):
            raise TransportError(
                response.get("error", "broker refused the request")
            )
        return response

    def subscribe(
        self,
        *,
        stream_id: StreamId | None = None,
        sensor_id: int | None = None,
        stream_index: int | None = None,
        kind: str | None = None,
        derived: bool | None = None,
        replay: str = "none",
    ) -> int:
        """Install a subscription; ``replay`` mirrors the simulated
        session's vocabulary (``'none' | 'orphans' | 'history'``) — with
        ``'history'`` the broker replays the stream store's retained
        records as ordinary data-plane datagrams before live delivery
        continues."""
        self._require_open()
        body = {
            "stream_id": list(stream_id) if stream_id is not None else None,
            "sensor_id": sensor_id,
            "stream_index": stream_index,
            "kind": kind,
            "derived": derived,
            "replay": replay,
        }
        response = self._request(SUBSCRIBE, body)
        subscription_id = int(response["subscription_id"])
        self._subscriptions[subscription_id] = body
        return subscription_id

    def query(
        self,
        stream_id: StreamId,
        start: float | None = None,
        end: float | None = None,
        limit: int | None = None,
    ) -> list[StreamArrival]:
        """Read one stream's retained history from the broker's store.

        Mirrors :meth:`GarnetSession.query`; records come back over the
        control plane (hex-encoded codec frames) and are decoded into
        :class:`StreamArrival` values. A response the broker had to cut
        short (control frames are bounded) raises ``TransportError`` —
        page with ``start``/``limit`` instead.
        """
        self._require_open()
        response = self._request(
            QUERY,
            {
                "stream_id": list(stream_id),
                "start": start,
                "end": end,
                "limit": limit,
            },
        )
        if response.get("truncated"):
            raise TransportError(
                "query response truncated by the control-frame cap; "
                "narrow the range or pass a limit"
            )
        arrivals = []
        for entry in response["records"]:
            message = self._codec.decode(bytes.fromhex(entry["frame"]))
            arrivals.append(
                StreamArrival(
                    message=message,
                    received_at=float(entry["received_at"]),
                    receiver_id=int(entry["receiver_id"]),
                )
            )
        return arrivals

    def unsubscribe(self, subscription_id: int) -> None:
        self._require_open()
        self._request(UNSUBSCRIBE, {"subscription_id": subscription_id})
        self._subscriptions.pop(subscription_id, None)

    def discover(
        self,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
    ) -> list[dict]:
        self._require_open()
        response = self._request(
            DISCOVER,
            {"kind": kind, "sensor_id": sensor_id, "derived": derived},
        )
        return response["streams"]

    def ping(self) -> float:
        """Round-trip the control plane; returns the broker's sim time."""
        self._require_open()
        return float(self._request(PING, {})["time"])

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def on_data(self, callback: DataCallback) -> None:
        if not callable(callback):
            raise TransportError(
                f"data callback must be callable: {callback!r}"
            )
        self._callbacks.append(callback)

    def publish(
        self,
        stream_index: int,
        payload: bytes,
        kind: str = "",
        fused: bool = False,
        encrypted: bool = False,
        extensions: tuple[tuple[int, bytes], ...] = (),
    ) -> StreamId:
        """Publish one codec datagram on this session's derived stream."""
        self._require_open()
        stream_id = StreamId(self._publisher_id, stream_index)
        if stream_index not in self._advertised:
            self._advertised.add(stream_index)
            if kind:
                self._request(
                    ADVERTISE,
                    {
                        "stream_index": stream_index,
                        "kind": kind,
                        "encrypted": encrypted,
                    },
                )
        sequence = self._publish_sequences.get(stream_index, 0)
        self._publish_sequences[stream_index] = (sequence + 1) % (1 << 16)
        message = DataMessage(
            stream_id=stream_id,
            sequence=sequence,
            payload=payload,
            fused=fused,
            encrypted=encrypted,
            extensions=extensions,
        )
        self._udp.sendto(self._codec.encode(message), self._data_address)
        self.published += 1
        return stream_id

    def _read_datagrams(self) -> None:
        while True:
            try:
                data, _ = self._udp.recvfrom(65536)
            except OSError:
                return  # socket closed by close()
            try:
                message = self._codec.decode(data)
            except GarnetError:
                continue
            arrival = StreamArrival(
                message=message,
                received_at=time.time(),
                receiver_id=-1,
            )
            self.deliveries += 1
            for callback in list(self._callbacks):
                callback(arrival)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the session, sockets and reader thread. Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._request(CLOSE, {})
        except (TransportError, OSError):
            pass  # broker already gone: local teardown still applies
        try:
            self._tcp.close()
        finally:
            self._udp.close()
        self._reader.join(timeout=2.0)

    def __enter__(self) -> "LiveSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def connect(
    url: str,
    name: str | None = None,
    *,
    checksum: bool = True,
    timeout: float = 10.0,
) -> LiveSession:
    """Open a :class:`LiveSession` against a running broker.

    Thin alias over the unified connect path: the arguments are packed
    into a :class:`~repro.core.connect.ConnectOptions` and validated
    exactly as :meth:`Garnet.connect(url=...) <repro.core.middleware.
    Garnet.connect>` would.
    """
    from repro.core.connect import ConnectOptions, open_live_session

    options = ConnectOptions(
        name=name, url=url, checksum=checksum, timeout=timeout
    ).validate()
    return open_live_session(options)


__all__ = ["LiveSession", "connect"]
