"""LiveSession: the socket client mirroring the GarnetSession surface.

``connect("garnet://host:port", name)`` opens two sockets against a
running :class:`~repro.transport.broker.LiveBroker` (or the
``garnet-broker`` CLI):

- a **TCP** connection for the control plane — requests are synchronous
  (send a frame, block for its response), serialised under a lock;
- a **UDP** socket for the data plane — publishes go out as
  :class:`~repro.core.message.MessageCodec` datagrams, and a daemon
  reader thread decodes incoming delivery datagrams into
  :class:`~repro.core.envelopes.StreamArrival` values for the
  ``on_data`` callbacks (the same callback shape simulated sessions
  use, so consumer code ports across transports unchanged).

The client is deliberately synchronous: experiment drivers and tests
want straight-line code, and the broker end is where the concurrency
lives.

**Resilience (PR 8).** ``reconnect=`` (a
:class:`~repro.util.backoff.BackoffPolicy`, or ``True`` for the
default schedule) opts the session into a supervised lifecycle:

- delivery datagrams are deduplicated per stream through a
  :class:`~repro.cluster.link.SequenceWindow` and their 16-bit
  sequences tracked; gaps trigger NACK repair requests answered from
  the broker's stream store (``gaps_repaired`` /
  ``gaps_unrepairable``);
- a housekeeping thread sends keepalive PINGs (period ``keepalive``,
  default 1s when reconnect is on); a failed PING — or any control
  request that hits a TCP EOF / timeout — flips the session to
  ``"reconnecting"`` and starts the backoff-driven re-dial loop;
- each dial first presents the broker's resume token (RESUME), which
  re-attaches the parked server-side session and replays only records
  past the client's per-stream cursors; a refused token falls back to
  a fresh HELLO plus re-installation of the subscription and
  advertisement ledgers;
- publishes during an outage land in a bounded buffer and are flushed
  on re-attach, behind a resend tail of the most recent pre-outage
  publishes (at-least-once across the failure window; subscriber-side
  sequence windows and the broker's store dedupe the overlap);
- ``on_state`` observers see ``"connected"`` / ``"reconnecting"`` /
  ``"closed"`` transitions.

With ``reconnect=None`` (the default) nothing above activates and the
session keeps its historical fail-fast behaviour.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections.abc import Callable
from typing import Any

from repro.cluster.link import SequenceWindow
from repro.core.envelopes import StreamArrival
from repro.core.message import DataMessage, MessageCodec
from repro.core.streamid import StreamId
from repro.errors import GarnetError, TransportError
from repro.fanout.frames import decode_batch_datagram, is_batch_datagram
from repro.transport.base import parse_garnet_url
from repro.transport.framing import (
    ADVERTISE,
    CLOSE,
    CONTROL_FRAME_NAMES,
    DISCOVER,
    HELLO,
    NACK,
    PING,
    QUERY,
    RESPONSE_FLAG,
    RESUME,
    SUBSCRIBE,
    UNSUBSCRIBE,
    ControlFrameAssembler,
    encode_control_frame,
)
from repro.util.backoff import BackoffPolicy

DataCallback = Callable[[StreamArrival], None]
StateCallback = Callable[[str], None]

#: Ask the kernel for a generous datagram receive buffer: loopback UDP
#: still drops when a burst outruns the reader thread.
_RECV_BUFFER = 1 << 22

#: The re-dial schedule ``reconnect=True`` selects.
DEFAULT_RECONNECT_POLICY = BackoffPolicy(
    base=0.1, multiplier=2.0, max_delay=2.0, jitter=0.1, max_attempts=8
)

#: Keepalive PING period adopted when reconnect is enabled but no
#: explicit ``keepalive`` was given.
_DEFAULT_KEEPALIVE = 1.0

#: Per-stream dedupe window (entries); matches the store tap's sizing.
_DEDUPE_WINDOW = 1024

#: A detected gap older than this (seconds) is NACKed for repair.
_REPAIR_DELAY = 0.2

#: At most this many missing sequences per NACK frame.
_NACK_BATCH = 64

#: Cap on sequences recorded as missing from one observed jump; a jump
#: wider than this is treated as a stream restart, not a gap.
_MAX_GAP_RUN = 512

#: Bounded buffer of publishes made while reconnecting.
_PUBLISH_BUFFER = 1024

#: Ring of recent publishes re-sent after a resume (the broker may have
#: died before our last datagrams reached the store).
_RESEND_TAIL = 256

#: Housekeeping thread tick (seconds).
_HOUSEKEEPING_TICK = 0.05


class LiveSessionStats:
    """Plain counters for one live session; all monotonic.

    These are the ``live.*`` counters: ``callback_errors`` is
    ``live.callback_errors`` and so on. They live on the session (not a
    metrics registry) because a live client runs outside any deployment.
    """

    __slots__ = (
        "deliveries",
        "published",
        "duplicates_dropped",
        "callback_errors",
        "bad_datagrams",
        "batch_datagrams",
        "batched_frames",
        "gaps_detected",
        "gaps_repaired",
        "gaps_unrepairable",
        "reconnects",
        "resumes",
        "rehellos",
        "replayed",
        "buffered_publishes",
        "buffer_overflows",
        "tail_resends",
        "keepalive_failures",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def snapshot(self) -> dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}


class _StreamTracker:
    """Per-stream delivery bookkeeping: dedupe window + gap ledger."""

    __slots__ = ("window", "latest", "missing")

    def __init__(self) -> None:
        self.window = SequenceWindow(_DEDUPE_WINDOW)
        self.latest: int | None = None
        self.missing: dict[int, float] = {}


class LiveSession:
    """A consumer session over real sockets.

    Mirrors the :class:`~repro.core.session.GarnetSession` API surface
    (``subscribe`` / ``unsubscribe`` / ``discover`` / ``publish`` /
    ``on_data`` / ``close``) so code written against the simulated
    middleware drives a live broker unchanged.
    """

    def __init__(
        self,
        url: str,
        name: str,
        checksum: bool = True,
        timeout: float = 10.0,
        reconnect: BackoffPolicy | bool | None = None,
        keepalive: float | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if not name:
            raise TransportError("session name must be non-empty")
        self._name = name
        self._codec = MessageCodec(checksum=checksum)
        self._timeout = timeout
        self._callbacks: list[DataCallback] = []
        self._state_callbacks: list[StateCallback] = []
        self._subscriptions: dict[int, dict] = {}
        self._publish_sequences: dict[int, int] = {}
        self._advertised: dict[int, tuple[str, bool]] = {}
        self._closed = False
        self._lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._delivery_lock = threading.Lock()
        self._assembler = ControlFrameAssembler()
        self.stats = LiveSessionStats()
        self._trackers: dict[tuple[int, int], _StreamTracker] = {}

        if reconnect is True:
            reconnect = DEFAULT_RECONNECT_POLICY
        elif reconnect is not None and not isinstance(
            reconnect, BackoffPolicy
        ):
            raise TransportError(
                "reconnect must be None, True or a BackoffPolicy, got "
                f"{reconnect!r}"
            )
        self._reconnect_policy: BackoffPolicy | None = reconnect
        if keepalive is not None and keepalive <= 0:
            raise TransportError(
                f"keepalive must be positive, got {keepalive}"
            )
        if keepalive is None and reconnect is not None:
            keepalive = _DEFAULT_KEEPALIVE
        self._keepalive = keepalive
        self._rng = rng if rng is not None else random.Random()
        self._state = "connected"
        self._resume_token: str | None = None
        self._publish_buffer: list[tuple] = []
        self._resend_tail: list[tuple] = []
        self._last_ping = time.monotonic()
        self._stop = threading.Event()

        self._host, self._port = parse_garnet_url(url)
        self._tcp = socket.create_connection(
            (self._host, self._port), timeout=timeout
        )
        self._tcp.settimeout(timeout)
        self._udp = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self._udp.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, _RECV_BUFFER
            )
        except OSError:  # pragma: no cover - kernel may clamp, never raise
            pass
        # Bind on the interface the TCP connection resolved to, so the
        # broker's deliveries (addressed to that interface) reach us.
        self._udp.bind((self._tcp.getsockname()[0], 0))
        self._udp_port = self._udp.getsockname()[1]

        hello: dict[str, Any] = {
            "name": name,
            "udp_port": self._udp_port,
            # §7 batch datagrams are always understood; the broker only
            # sends them when its deployment enables fan-out batching.
            "batch_datagrams": True,
        }
        if self._keepalive is not None:
            hello["keepalive"] = self._keepalive
        welcome = self._request(HELLO, hello)
        self._publisher_id = int(welcome["publisher_id"])
        self._data_address = (self._host, int(welcome["data_port"]))
        self._resume_token = welcome.get("resume_token")

        self._reader = threading.Thread(
            target=self._read_datagrams,
            name=f"garnet-live-{name}",
            daemon=True,
        )
        self._reader.start()
        self._housekeeper: threading.Thread | None = None
        if self._reconnect_policy is not None or self._keepalive is not None:
            self._housekeeper = threading.Thread(
                target=self._housekeeping,
                name=f"garnet-live-{name}-housekeeping",
                daemon=True,
            )
            self._housekeeper.start()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def publisher_id(self) -> int:
        return self._publisher_id

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def state(self) -> str:
        """``"connected"`` / ``"reconnecting"`` / ``"closed"``."""
        return self._state

    @property
    def resume_token(self) -> str | None:
        """The broker-issued resume token (None when resume is off)."""
        return self._resume_token

    @property
    def deliveries(self) -> int:
        return self.stats.deliveries

    @property
    def published(self) -> int:
        return self.stats.published

    @property
    def subscription_ids(self) -> tuple[int, ...]:
        return tuple(self._subscriptions)

    def _require_open(self) -> None:
        if self._closed:
            raise TransportError(f"session {self._name!r} is closed")

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _request(self, frame_type: int, body: dict) -> dict:
        """Send one control frame and block for its response."""
        if self._state == "reconnecting":
            raise TransportError(
                f"session {self._name!r} is reconnecting; retry shortly"
            )
        frame_name = CONTROL_FRAME_NAMES.get(
            frame_type, f"0x{frame_type:02x}"
        )
        try:
            with self._lock:
                return self._exchange(
                    self._tcp, self._assembler, frame_type, body
                )
        except socket.timeout as exc:
            self._connection_lost()
            raise TransportError(
                f"{frame_name} request timed out after {self._timeout}s"
            ) from exc
        except OSError as exc:
            self._connection_lost()
            raise TransportError(
                f"{frame_name} request failed: {exc}"
            ) from exc
        except _ChannelLost as exc:
            self._connection_lost()
            raise TransportError(
                f"{frame_name} request failed: "
                "broker closed the control channel"
            ) from exc

    def _exchange(
        self,
        sock: socket.socket,
        assembler: ControlFrameAssembler,
        frame_type: int,
        body: dict,
    ) -> dict:
        """One request/response on an explicit socket (no state checks)."""
        sock.sendall(encode_control_frame(frame_type, body))
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                raise _ChannelLost("broker closed the control channel")
            frames = assembler.feed(chunk)
            if frames:
                break
        if len(frames) != 1:
            raise TransportError(
                f"expected one response, got {len(frames)} frames"
            )
        response_type, response = frames[0]
        if response_type != (frame_type | RESPONSE_FLAG):
            raise TransportError(
                f"response type 0x{response_type:02x} does not answer "
                f"request 0x{frame_type:02x}"
            )
        if not response.get("ok"):
            raise TransportError(
                response.get("error", "broker refused the request")
            )
        return response

    def subscribe(
        self,
        *,
        stream_id: StreamId | None = None,
        sensor_id: int | None = None,
        stream_index: int | None = None,
        kind: str | None = None,
        derived: bool | None = None,
        replay: str = "none",
    ) -> int:
        """Install a subscription; ``replay`` mirrors the simulated
        session's vocabulary (``'none' | 'orphans' | 'history'``) — with
        ``'history'`` the broker replays the stream store's retained
        records as ordinary data-plane datagrams before live delivery
        continues."""
        self._require_open()
        body = {
            "stream_id": list(stream_id) if stream_id is not None else None,
            "sensor_id": sensor_id,
            "stream_index": stream_index,
            "kind": kind,
            "derived": derived,
            "replay": replay,
        }
        response = self._request(SUBSCRIBE, body)
        subscription_id = int(response["subscription_id"])
        self._subscriptions[subscription_id] = body
        return subscription_id

    def query(
        self,
        stream_id: StreamId,
        start: float | None = None,
        end: float | None = None,
        limit: int | None = None,
    ) -> list[StreamArrival]:
        """Read one stream's retained history from the broker's store.

        Mirrors :meth:`GarnetSession.query`; records come back over the
        control plane (hex-encoded codec frames) and are decoded into
        :class:`StreamArrival` values. A response the broker had to cut
        short (control frames are bounded) raises ``TransportError`` —
        page with ``start``/``limit`` instead.
        """
        self._require_open()
        response = self._request(
            QUERY,
            {
                "stream_id": list(stream_id),
                "start": start,
                "end": end,
                "limit": limit,
            },
        )
        if response.get("truncated"):
            raise TransportError(
                "query response truncated by the control-frame cap; "
                "narrow the range or pass a limit"
            )
        arrivals = []
        for entry in response["records"]:
            message = self._codec.decode(bytes.fromhex(entry["frame"]))
            arrivals.append(
                StreamArrival(
                    message=message,
                    received_at=float(entry["received_at"]),
                    receiver_id=int(entry["receiver_id"]),
                )
            )
        return arrivals

    def unsubscribe(self, subscription_id: int) -> None:
        self._require_open()
        self._request(UNSUBSCRIBE, {"subscription_id": subscription_id})
        self._subscriptions.pop(subscription_id, None)

    def discover(
        self,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
    ) -> list[dict]:
        self._require_open()
        response = self._request(
            DISCOVER,
            {"kind": kind, "sensor_id": sensor_id, "derived": derived},
        )
        return response["streams"]

    def ping(self) -> float:
        """Round-trip the control plane; returns the broker's sim time."""
        self._require_open()
        return float(self._request(PING, {})["time"])

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def on_data(self, callback: DataCallback) -> None:
        if not callable(callback):
            raise TransportError(
                f"data callback must be callable: {callback!r}"
            )
        self._callbacks.append(callback)

    def on_state(self, callback: StateCallback) -> None:
        """Observe ``"connected"`` / ``"reconnecting"`` / ``"closed"``
        transitions. Callbacks run on internal threads and are isolated:
        one raising is counted under ``callback_errors``, not fatal."""
        if not callable(callback):
            raise TransportError(
                f"state callback must be callable: {callback!r}"
            )
        self._state_callbacks.append(callback)

    def publish(
        self,
        stream_index: int,
        payload: bytes,
        kind: str = "",
        fused: bool = False,
        encrypted: bool = False,
        extensions: tuple[tuple[int, bytes], ...] = (),
    ) -> StreamId:
        """Publish one codec datagram on this session's derived stream.

        While the session is reconnecting, publishes land in a bounded
        buffer (sequence numbers pre-assigned, so ordering and dedupe
        survive) and are flushed when the broker is back; buffer
        overflow drops the oldest entry and counts ``buffer_overflows``.
        """
        self._require_open()
        sequence = self._publish_sequences.get(stream_index, 0)
        self._publish_sequences[stream_index] = (sequence + 1) % (1 << 16)
        entry = (
            stream_index, sequence, payload, kind, fused, encrypted,
            extensions,
        )
        if self._state != "reconnecting":
            try:
                return self._send_publish(entry)
            except TransportError:
                if self._state != "reconnecting":
                    raise  # genuine refusal, not a mid-publish outage
        if len(self._publish_buffer) >= _PUBLISH_BUFFER:
            self._publish_buffer.pop(0)
            self.stats.buffer_overflows += 1
        self._publish_buffer.append(entry)
        self.stats.buffered_publishes += 1
        return StreamId(self._publisher_id, stream_index)

    def _send_publish(self, entry: tuple) -> StreamId:
        (
            stream_index, sequence, payload, kind, fused, encrypted,
            extensions,
        ) = entry
        stream_id = StreamId(self._publisher_id, stream_index)
        if kind and stream_index not in self._advertised:
            self._request(
                ADVERTISE,
                {
                    "stream_index": stream_index,
                    "kind": kind,
                    "encrypted": encrypted,
                },
            )
            self._advertised[stream_index] = (kind, encrypted)
        message = DataMessage(
            stream_id=stream_id,
            sequence=sequence,
            payload=payload,
            fused=fused,
            encrypted=encrypted,
            extensions=extensions,
        )
        self._udp.sendto(self._codec.encode(message), self._data_address)
        self.stats.published += 1
        if self._reconnect_policy is not None:
            self._resend_tail.append(entry)
            if len(self._resend_tail) > _RESEND_TAIL:
                self._resend_tail.pop(0)
        return stream_id

    def _read_datagrams(self) -> None:
        while True:
            try:
                data, _ = self._udp.recvfrom(65536)
            except OSError:
                return  # socket closed by close()
            self._handle_datagram(data)

    def _handle_datagram(self, data: bytes) -> None:
        if is_batch_datagram(data):
            # A §7 batch: many codec frames in one datagram. Unpack and
            # run each through the ordinary dedupe/gap/callback path.
            try:
                frames = decode_batch_datagram(data)
            except GarnetError:
                self.stats.bad_datagrams += 1
                return
            self.stats.batch_datagrams += 1
            self.stats.batched_frames += len(frames)
            for frame in frames:
                self._handle_frame(frame)
            return
        self._handle_frame(data)

    def _handle_frame(self, data: bytes) -> None:
        try:
            message = self._codec.decode(data)
        except GarnetError:
            self.stats.bad_datagrams += 1
            return
        with self._delivery_lock:
            if not self._track_delivery(message):
                return  # duplicate: dropped before the callbacks
        arrival = StreamArrival(
            message=message,
            received_at=time.time(),
            receiver_id=-1,
        )
        self.stats.deliveries += 1
        for callback in list(self._callbacks):
            try:
                callback(arrival)
            except Exception:
                # One consumer's bug must not kill the reader thread
                # (or starve the other callbacks).
                self.stats.callback_errors += 1

    def _track_delivery(self, message: DataMessage) -> bool:
        """Dedupe + gap bookkeeping; False means drop (duplicate)."""
        key = (
            message.stream_id.sensor_id,
            message.stream_id.stream_index,
        )
        tracker = self._trackers.get(key)
        if tracker is None:
            tracker = self._trackers[key] = _StreamTracker()
        sequence = message.sequence
        if not tracker.window.add(sequence):
            self.stats.duplicates_dropped += 1
            return False
        if tracker.missing.pop(sequence, None) is not None:
            self.stats.gaps_repaired += 1
        latest = tracker.latest
        if latest is None:
            tracker.latest = sequence
            return True
        jump = (sequence - latest) % (1 << 16)
        if 1 < jump < _MAX_GAP_RUN:
            now = time.monotonic()
            for offset in range(1, jump):
                missed = (latest + offset) % (1 << 16)
                if missed not in tracker.missing:
                    tracker.missing[missed] = now
                    self.stats.gaps_detected += 1
        if jump < (1 << 15):
            tracker.latest = sequence
        return True

    # ------------------------------------------------------------------
    # Housekeeping: keepalive, gap repair, reconnect
    # ------------------------------------------------------------------
    def _housekeeping(self) -> None:
        while not self._stop.wait(_HOUSEKEEPING_TICK):
            try:
                state = self._state
                if state == "connected":
                    self._keepalive_tick()
                    if self._state == "connected":
                        self._repair_tick()
                elif state == "reconnecting":
                    self._run_reconnect()
                else:
                    return
            except Exception:  # pragma: no cover - belt and braces
                if self._closed:
                    return

    def _keepalive_tick(self) -> None:
        if self._keepalive is None:
            return
        now = time.monotonic()
        if now - self._last_ping < self._keepalive:
            return
        self._last_ping = now
        try:
            self._request(PING, {})
        except TransportError:
            self.stats.keepalive_failures += 1
            # _request already flipped the state when the socket died;
            # a refusal with a healthy socket needs no reconnect.

    def _repair_tick(self) -> None:
        """NACK sufficiently-aged gaps and inject the repaired records."""
        now = time.monotonic()
        for key, tracker in list(self._trackers.items()):
            with self._delivery_lock:
                due = sorted(
                    sequence
                    for sequence, seen_at in tracker.missing.items()
                    if now - seen_at >= _REPAIR_DELAY
                )[:_NACK_BATCH]
            if not due:
                continue
            try:
                response = self._request(
                    NACK, {"stream_id": list(key), "sequences": due}
                )
            except TransportError:
                return  # broker unreachable or storeless: try later
            for hex_frame in response.get("records", ()):
                self._handle_datagram(bytes.fromhex(hex_frame))
            unrepairable = response.get("missing", ())
            with self._delivery_lock:
                for sequence in unrepairable:
                    if tracker.missing.pop(int(sequence), None) is not None:
                        self.stats.gaps_unrepairable += 1

    def _connection_lost(self) -> None:
        """A control request hit a dead socket: start reconnecting."""
        if self._reconnect_policy is None or self._closed:
            return
        with self._state_lock:
            if self._state != "connected":
                return
            self._state = "reconnecting"
        try:
            self._tcp.close()  # broker sees EOF and parks the session
        except OSError:  # pragma: no cover
            pass
        self._notify_state("reconnecting")

    def _notify_state(self, state: str) -> None:
        for callback in list(self._state_callbacks):
            try:
                callback(state)
            except Exception:
                self.stats.callback_errors += 1

    def _run_reconnect(self) -> None:
        policy = self._reconnect_policy
        for attempt in range(1, policy.max_attempts + 1):
            if self._closed:
                return
            delay = policy.delay(attempt, self._rng)
            if self._stop.wait(delay):
                return
            if self._dial_once():
                self.stats.reconnects += 1
                self._notify_state("connected")
                return
        # Exhausted the schedule: the session is dead for good.
        self._give_up()

    def _dial_once(self) -> bool:
        """One reconnect attempt: RESUME first, fresh HELLO fallback."""
        try:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        except OSError:
            return False
        sock.settimeout(self._timeout)
        assembler = ControlFrameAssembler()
        try:
            if self._resume_token is not None:
                try:
                    response = self._exchange(
                        sock, assembler, RESUME, self._resume_body()
                    )
                except _ChannelLost:
                    raise
                except TransportError:
                    pass  # token refused: same socket, fresh HELLO
                else:
                    self._adopt(sock, assembler, response, resumed=True)
                    return True
            hello: dict[str, Any] = {
                "name": self._name,
                "udp_port": self._udp_port,
                "batch_datagrams": True,
            }
            if self._keepalive is not None:
                hello["keepalive"] = self._keepalive
            response = self._exchange(sock, assembler, HELLO, hello)
            publisher_id = int(response["publisher_id"])
            # Reinstall the ledgers before going live: subscriptions
            # first so no delivery window is missed, then the
            # advertisement metadata the old session carried.
            subscriptions: dict[int, dict] = {}
            for body in self._subscriptions.values():
                sub_response = self._exchange(
                    sock, assembler, SUBSCRIBE, body
                )
                subscriptions[int(sub_response["subscription_id"])] = body
            for stream_index, (kind, encrypted) in list(
                self._advertised.items()
            ):
                self._exchange(
                    sock,
                    assembler,
                    ADVERTISE,
                    {
                        "stream_index": stream_index,
                        "kind": kind,
                        "encrypted": encrypted,
                    },
                )
            self._subscriptions = subscriptions
            self._publisher_id = publisher_id
            self.stats.rehellos += 1
            self._adopt(sock, assembler, response, resumed=False)
            self._flush_outage_buffers(resend_tail=False)
            return True
        except (OSError, TransportError, _ChannelLost, ValueError):
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
            return False

    def _resume_body(self) -> dict:
        with self._delivery_lock:
            cursors = {
                f"{key[0]}:{key[1]}": tracker.latest
                for key, tracker in self._trackers.items()
                if tracker.latest is not None
            }
        body: dict[str, Any] = {
            "token": self._resume_token,
            "udp_port": self._udp_port,
            "cursors": cursors,
            "batch_datagrams": True,
        }
        if self._keepalive is not None:
            body["keepalive"] = self._keepalive
        return body

    def _adopt(
        self,
        sock: socket.socket,
        assembler: ControlFrameAssembler,
        response: dict,
        resumed: bool,
    ) -> None:
        """Install a freshly-handshaken control socket as the session's."""
        with self._lock:
            try:
                self._tcp.close()
            except OSError:  # pragma: no cover
                pass
            self._tcp = sock
            self._assembler = assembler
            self._data_address = (self._host, int(response["data_port"]))
            self._resume_token = response.get(
                "resume_token", self._resume_token if resumed else None
            )
        if resumed:
            self._publisher_id = int(response["publisher_id"])
            mapping = response.get("subscriptions") or {}
            remapped = {}
            for old_id, body in self._subscriptions.items():
                new_id = int(mapping.get(str(old_id), old_id))
                remapped[new_id] = body
            self._subscriptions = remapped
            self.stats.resumes += 1
            self.stats.replayed += int(response.get("replayed", 0))
        with self._state_lock:
            self._state = "connected"
        self._last_ping = time.monotonic()
        if resumed:
            self._flush_outage_buffers(resend_tail=True)

    def _flush_outage_buffers(self, resend_tail: bool) -> None:
        if resend_tail and self._resend_tail:
            # The broker may have died before our freshest publishes
            # reached its store: resend the tail (at-least-once; the
            # store tap and subscriber windows dedupe the overlap).
            tail = list(self._resend_tail)
            for entry in tail:
                self._resend_entry(entry)
                self.stats.tail_resends += 1
        buffered, self._publish_buffer = self._publish_buffer, []
        for entry in buffered:
            try:
                self._send_publish(entry)
            except (TransportError, OSError):
                return  # connection died again; remaining entries drop

    def _resend_entry(self, entry: tuple) -> None:
        (
            stream_index, sequence, payload, kind, fused, encrypted,
            extensions,
        ) = entry
        message = DataMessage(
            stream_id=StreamId(self._publisher_id, stream_index),
            sequence=sequence,
            payload=payload,
            fused=fused,
            encrypted=encrypted,
            extensions=extensions,
        )
        try:
            self._udp.sendto(
                self._codec.encode(message), self._data_address
            )
        except OSError:  # pragma: no cover - UDP sends rarely fail
            pass

    def _give_up(self) -> None:
        with self._state_lock:
            if self._state == "closed":
                return
            self._state = "closed"
        self._closed = True
        self._stop.set()
        try:
            self._tcp.close()
        finally:
            self._udp.close()
        self._notify_state("closed")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the session, sockets and reader thread. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        with self._state_lock:
            was_connected = self._state == "connected"
            self._state = "closed"
        if was_connected:
            try:
                with self._lock:
                    self._exchange(self._tcp, self._assembler, CLOSE, {})
            except (TransportError, _ChannelLost, OSError):
                pass  # broker already gone: local teardown still applies
        try:
            self._tcp.close()
        finally:
            self._udp.close()
        self._reader.join(timeout=2.0)
        if (
            self._housekeeper is not None
            and self._housekeeper is not threading.current_thread()
        ):
            self._housekeeper.join(timeout=2.0)
        self._notify_state("closed")

    def __enter__(self) -> "LiveSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _ChannelLost(Exception):
    """Internal: the broker closed the TCP control channel mid-request."""


def connect(
    url: str,
    name: str | None = None,
    *,
    checksum: bool = True,
    timeout: float = 10.0,
    reconnect: BackoffPolicy | bool | None = None,
    keepalive: float | None = None,
) -> LiveSession:
    """Open a :class:`LiveSession` against a running broker.

    Thin alias over the unified connect path: the arguments are packed
    into a :class:`~repro.core.connect.ConnectOptions` and validated
    exactly as :meth:`Garnet.connect(url=...) <repro.core.middleware.
    Garnet.connect>` would.
    """
    from repro.core.connect import ConnectOptions, open_live_session

    options = ConnectOptions(
        name=name,
        url=url,
        checksum=checksum,
        timeout=timeout,
        reconnect=reconnect,
        keepalive=keepalive,
    ).validate()
    return open_live_session(options)


__all__ = [
    "DEFAULT_RECONNECT_POLICY",
    "LiveSession",
    "LiveSessionStats",
    "connect",
]
