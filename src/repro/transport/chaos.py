"""A protocol-aware chaos proxy for the live transport.

:class:`ChaosProxy` sits between a :class:`~repro.transport.client.
LiveSession` and a :class:`~repro.transport.broker.LiveBroker` and
injects scripted faults into both planes:

- **TCP control plane** — each client connection is proxied to the
  upstream broker with control frames parsed in both directions, so the
  proxy can rewrite the UDP rendezvous: the client's announced
  ``udp_port`` (HELLO / RESUME requests) is replaced with a
  per-connection UDP relay port, and the broker's announced
  ``data_port`` (HELLO / RESUME responses) likewise — which drags the
  *data plane* through the proxy too, where datagrams can be dropped,
  delayed or blackholed.
- **UDP data plane** — one relay socket per control connection. The
  relay tells directions apart by source address: datagrams from the
  client's announced UDP port forward to the broker's data port,
  everything else is broker traffic bound for the client's socket.

Faults are declared as :class:`~repro.faults.plan.FaultEvent`
subclasses pinned to *wall-clock* seconds after :meth:`ChaosProxy.
start` (the live transport runs on real time, unlike the simulated
fault plans):

- :class:`DatagramLoss` — i.i.d. drop of relayed datagrams at ``rate``
  in ``direction`` (``"to_client"`` / ``"to_broker"`` / ``"both"``),
  drawn from the proxy's seeded RNG;
- :class:`LinkLatency` — relayed datagrams delayed by ``delay``
  seconds (UDP only; control-plane ordering is preserved);
- :class:`ConnectionReset` — every live proxied TCP connection is
  aborted at ``at`` (one reset, not a window — ``duration`` is
  nominal);
- :class:`Blackhole` — for the window, datagrams vanish in both
  directions, bytes on existing TCP connections vanish, and new TCP
  connections are refused: the peer looks frozen, not dead;
- :class:`BrokerRestart` — a :class:`Blackhole` that additionally
  invokes the ``on_broker_restart`` callback (on a worker thread) at
  window start; harnesses use it to actually terminate and relaunch
  the broker process behind the proxy.

The proxy never interprets payloads beyond the two rewritten handshake
fields, so everything the real stack does — sequence numbering,
dedupe, resume, NACK repair — is exercised verbatim through it.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, TransportError
from repro.faults.plan import FaultEvent
from repro.transport.base import parse_garnet_url
from repro.transport.framing import (
    HELLO,
    RESPONSE_FLAG,
    RESUME,
    ControlFrameAssembler,
    encode_control_frame,
)

_DIRECTIONS = ("to_client", "to_broker", "both")


@dataclass(frozen=True, slots=True, kw_only=True)
class DatagramLoss(FaultEvent):
    """Drop relayed datagrams i.i.d. at ``rate`` for the window."""

    rate: float
    direction: str = "both"

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError(
                f"loss rate must be in (0, 1]: {self.rate}"
            )
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"direction must be one of {_DIRECTIONS}: {self.direction!r}"
            )

    def applies(self, direction: str) -> bool:
        return self.direction == "both" or self.direction == direction


@dataclass(frozen=True, slots=True, kw_only=True)
class LinkLatency(FaultEvent):
    """Delay relayed datagrams by ``delay`` seconds for the window."""

    delay: float = 0.05

    def __post_init__(self) -> None:
        FaultEvent.__post_init__(self)
        if self.delay <= 0:
            raise ConfigurationError(
                f"latency delay must be positive: {self.delay}"
            )


@dataclass(frozen=True, slots=True, kw_only=True)
class ConnectionReset(FaultEvent):
    """Abort every live proxied TCP connection at ``at``."""

    duration: float = 0.001


@dataclass(frozen=True, slots=True, kw_only=True)
class Blackhole(FaultEvent):
    """All traffic vanishes for the window; new connections refused."""


@dataclass(frozen=True, slots=True, kw_only=True)
class BrokerRestart(Blackhole):
    """A blackhole window during which the broker is restarted.

    The proxy calls ``on_broker_restart`` (see :class:`ChaosProxy`) on
    a worker thread when the window opens; the harness owns actually
    bouncing the broker process and must bring it back on the same
    ports before the window closes.
    """


class ChaosProxyStats:
    """Wall-clock chaos accounting; all counters monotonic."""

    __slots__ = (
        "datagrams_forwarded",
        "datagrams_dropped",
        "datagrams_delayed",
        "bytes_blackholed",
        "resets_injected",
        "connections_refused",
        "connections_proxied",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def snapshot(self) -> dict[str, int]:
        return {field: getattr(self, field) for field in self.__slots__}


class _RelayProtocol(asyncio.DatagramProtocol):
    """Per-connection UDP relay between one client and the broker."""

    def __init__(self, proxy: "ChaosProxy") -> None:
        self.proxy = proxy
        self.transport: asyncio.DatagramTransport | None = None
        self.client_address: tuple[str, int] | None = None
        self.broker_address: tuple[str, int] | None = None

    def connection_made(self, transport) -> None:  # pragma: no cover
        self.transport = transport

    @property
    def port(self) -> int:
        return self.transport.get_extra_info("sockname")[1]

    def datagram_received(self, data: bytes, addr) -> None:
        if addr == self.client_address:
            if self.broker_address is not None:
                self.proxy._relay(
                    self, data, self.broker_address, "to_broker"
                )
            return
        # The only other peer on this relay is the broker's data
        # socket — and its deliveries can start *before* the handshake
        # response names the data port (resume replay fires during the
        # RESUME exchange), so learn the address from traffic too.
        if self.broker_address is None:
            self.broker_address = addr
        if self.client_address is not None:
            self.proxy._relay(self, data, self.client_address, "to_client")

    def send(self, data: bytes, addr: tuple[str, int]) -> None:
        if self.transport is not None:
            self.transport.sendto(data, addr)


class _ProxiedConnection:
    """One client TCP connection proxied to the upstream broker."""

    def __init__(self, proxy: "ChaosProxy") -> None:
        self.proxy = proxy
        self.client_writer: asyncio.StreamWriter | None = None
        self.broker_writer: asyncio.StreamWriter | None = None
        self.relay: _RelayProtocol | None = None
        self.client_udp_port: int | None = None
        self.to_broker = ControlFrameAssembler()
        self.to_client = ControlFrameAssembler()

    def abort(self) -> None:
        for writer in (self.client_writer, self.broker_writer):
            if writer is not None and writer.transport is not None:
                writer.transport.abort()


class ChaosProxy:
    """A fault-injecting proxy in front of a live broker.

    ``upstream`` is the broker's ``garnet://host:port`` URL. ``events``
    is the scripted fault plan (wall-clock seconds after
    :meth:`start`). ``seed`` fixes the drop RNG so a chaos run's loss
    pattern is reproducible. ``on_broker_restart`` is invoked for each
    :class:`BrokerRestart` event.

    Use from an event loop::

        proxy = ChaosProxy(broker.url, events=[...], seed=7)
        await proxy.start()
        session = connect(proxy.url, "app", reconnect=True)
    """

    def __init__(
        self,
        upstream: str,
        events: tuple[FaultEvent, ...] | list[FaultEvent] = (),
        host: str | None = None,
        port: int = 0,
        seed: int = 0,
        on_broker_restart: Callable[[], Any] | None = None,
    ) -> None:
        self.upstream_host, self.upstream_port = parse_garnet_url(upstream)
        self.host = host if host is not None else self.upstream_host
        self._requested_port = port
        self.port: int | None = None
        self.events: tuple[FaultEvent, ...] = tuple(events)
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"chaos events must be FaultEvents, got {event!r}"
                )
        self._rng = random.Random(seed)
        self._on_broker_restart = on_broker_restart
        self.stats = ChaosProxyStats()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = 0.0
        self._connections: set[_ProxiedConnection] = set()
        self._timers: list[asyncio.TimerHandle] = []

    @property
    def url(self) -> str:
        if self.port is None:
            raise TransportError("chaos proxy not started")
        return f"garnet://{self.host}:{self.port}"

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._started = self._loop.time()
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for event in self.events:
            if isinstance(event, ConnectionReset):
                self._timers.append(
                    self._loop.call_later(event.at, self._inject_reset)
                )
            elif isinstance(event, BrokerRestart):
                self._timers.append(
                    self._loop.call_later(
                        event.at, self._fire_broker_restart
                    )
                )

    async def stop(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for connection in list(self._connections):
            connection.abort()
            if connection.relay is not None:
                connection.relay.transport.close()
        self._connections.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Fault schedule
    # ------------------------------------------------------------------
    def _elapsed(self) -> float:
        return self._loop.time() - self._started

    def _active(self, kind: type) -> list[FaultEvent]:
        now = self._elapsed()
        return [
            event
            for event in self.events
            if isinstance(event, kind) and event.at <= now < event.ends_at
        ]

    def _blackholed(self) -> bool:
        return bool(self._active(Blackhole))

    def _inject_reset(self) -> None:
        for connection in list(self._connections):
            connection.abort()
            self.stats.resets_injected += 1

    def _fire_broker_restart(self) -> None:
        if self._on_broker_restart is not None:
            # The callback bounces a subprocess — keep the loop free.
            self._loop.run_in_executor(None, self._on_broker_restart)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _relay(
        self,
        relay: _RelayProtocol,
        data: bytes,
        destination: tuple[str, int],
        direction: str,
    ) -> None:
        if self._blackholed():
            self.stats.datagrams_dropped += 1
            return
        for event in self._active(DatagramLoss):
            if event.applies(direction) and self._rng.random() < event.rate:
                self.stats.datagrams_dropped += 1
                return
        latency = self._active(LinkLatency)
        if latency:
            delay = max(event.delay for event in latency)
            self.stats.datagrams_delayed += 1
            self._timers.append(
                self._loop.call_later(
                    delay, relay.send, data, destination
                )
            )
        else:
            relay.send(data, destination)
        self.stats.datagrams_forwarded += 1

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    async def _serve_client(
        self,
        client_reader: asyncio.StreamReader,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        if self._blackholed():
            self.stats.connections_refused += 1
            client_writer.transport.abort()
            return
        connection = _ProxiedConnection(self)
        connection.client_writer = client_writer
        try:
            broker_reader, broker_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            client_writer.transport.abort()
            return
        connection.broker_writer = broker_writer
        relay_transport, relay = await self._loop.create_datagram_endpoint(
            lambda: _RelayProtocol(self), local_addr=(self.host, 0)
        )
        relay.transport = relay_transport
        connection.relay = relay
        self._connections.add(connection)
        self.stats.connections_proxied += 1
        try:
            await asyncio.gather(
                self._pipe(
                    connection, client_reader, broker_writer, "to_broker"
                ),
                self._pipe(
                    connection, broker_reader, client_writer, "to_client"
                ),
            )
        finally:
            self._connections.discard(connection)
            connection.abort()
            relay_transport.close()

    async def _pipe(
        self,
        connection: _ProxiedConnection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
    ) -> None:
        assembler = (
            connection.to_broker
            if direction == "to_broker"
            else connection.to_client
        )
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                if self._blackholed():
                    # The stream is now corrupt for the peer; that is
                    # the point — a blackholed link loses bytes.
                    self.stats.bytes_blackholed += len(chunk)
                    continue
                try:
                    frames = assembler.feed(chunk)
                except TransportError:
                    break
                for frame_type, body in frames:
                    writer.write(
                        encode_control_frame(
                            frame_type,
                            self._rewrite(connection, frame_type, body),
                        )
                    )
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            if writer.transport is not None:
                writer.transport.abort()

    def _rewrite(
        self, connection: _ProxiedConnection, frame_type: int, body: dict
    ) -> dict:
        """Swap the UDP rendezvous fields through the relay."""
        relay = connection.relay
        if frame_type in (HELLO, RESUME) and "udp_port" in body:
            connection.client_udp_port = int(body["udp_port"])
            if relay.client_address is None:
                # Deliveries may start before the client's first
                # publish reveals its socket; the HELLO announcement
                # pins it down.
                peer = connection.client_writer.get_extra_info("peername")
                relay.client_address = (
                    peer[0] if peer else self.host,
                    connection.client_udp_port,
                )
            return {**body, "udp_port": relay.port}
        if (
            frame_type in (HELLO | RESPONSE_FLAG, RESUME | RESPONSE_FLAG)
            and "data_port" in body
        ):
            relay.broker_address = (
                self.upstream_host, int(body["data_port"])
            )
            return {**body, "data_port": relay.port}
        return body


__all__ = [
    "Blackhole",
    "BrokerRestart",
    "ChaosProxy",
    "ChaosProxyStats",
    "ConnectionReset",
    "DatagramLoss",
    "LinkLatency",
]
