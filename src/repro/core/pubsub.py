"""The pub/sub broker: advertising, discovery, registration, authentication.

Section 3: "the data is consumed by applications which use typical
advertising, discovery, registration, authentication and publish/subscribe
mechanisms to identify, subscribe to, and receive data streams of
interest." The broker is the front door implementing all five:

- **registration/authentication** — consumers present an
  :class:`~repro.core.security.AuthService` token and register their
  fixed-network endpoint;
- **advertising** — publishers attach metadata (a kind tag, attributes,
  encryption marker) to streams; the Dispatching Service also auto-
  advertises streams first seen as raw data;
- **discovery** — consumers query advertised metadata, never payloads;
- **publish/subscribe** — subscriptions (exact or pattern) are installed
  into the Dispatching Service, which owns the data path.

Consumers remain mutually unaware: nothing the broker exposes reveals who
else is subscribed (Section 2, "consumer processes are mutually unaware").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.dispatching import (
    BROKER_INBOX,
    DispatchingService,
    SubscriptionPattern,
)
from repro.core.envelopes import StreamAdvertisement
from repro.core.security import AuthService, Permission, Token
from repro.core.streamid import StreamId
from repro.core.streams import StreamDescriptor, StreamRegistry
from repro.errors import RegistrationError, SubscriptionError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork, RpcEndpoint

SERVICE_NAME = "garnet.broker"


class BrokerStats(RegistryBackedStats):
    PREFIX = "broker"

    registrations: int = 0
    advertisements: int = 0
    discoveries: int = 0
    subscriptions: int = 0
    unsubscriptions: int = 0


class Broker(RpcEndpoint):
    """Authenticated front door to Garnet's stream catalogue and data path."""

    def __init__(
        self,
        network: FixedNetwork,
        registry: StreamRegistry,
        dispatcher: DispatchingService,
        auth: AuthService,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._network = network
        self._registry = registry
        self._dispatcher = dispatcher
        self._auth = auth
        self._endpoints: dict[str, str] = {}  # endpoint -> principal
        self._permissions: dict[str, Permission] = {}  # endpoint -> perms
        self._watchers: list[Callable[[StreamAdvertisement], None]] = []
        self.stats = BrokerStats(metrics)
        network.register_inbox(BROKER_INBOX, self._on_advertisement)
        network.register_service(SERVICE_NAME, self)
        dispatcher.set_route_guard(self._route_guard)

    def _route_guard(self, endpoint: str, descriptor) -> bool:
        """Data-path permission check for restricted streams.

        A stream advertised with a ``required_permission`` attribute (the
        location stream is the canonical case, Section 2) is only
        delivered to endpoints whose registration token carries that
        permission.
        """
        required = descriptor.attributes.get("required_permission")
        if required is None:
            return True
        held = self._permissions.get(endpoint, Permission.NONE)
        return held & required == required

    # ------------------------------------------------------------------
    # Registration & authentication
    # ------------------------------------------------------------------
    def register_consumer(self, token: Token, endpoint: str) -> str:
        """Bind a consumer's fixed-network endpoint to its identity."""
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        if not self._network.has_inbox(endpoint):
            raise RegistrationError(
                f"endpoint {endpoint!r} has no inbox on the fixed network"
            )
        existing = self._endpoints.get(endpoint)
        if existing is not None and existing != principal:
            raise RegistrationError(
                f"endpoint {endpoint!r} already bound to {existing!r}"
            )
        self._endpoints[endpoint] = principal
        self._permissions[endpoint] = token.permissions
        self._dispatcher.invalidate_routes()
        self.stats.registrations += 1
        return principal

    def deregister_consumer(self, token: Token, endpoint: str) -> int:
        """Unbind an endpoint and drop all its subscriptions."""
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        self._require_owner(principal, endpoint)
        del self._endpoints[endpoint]
        self._permissions.pop(endpoint, None)
        self._dispatcher.invalidate_routes()
        return self._dispatcher.remove_endpoint(endpoint)

    def _require_owner(self, principal: str, endpoint: str) -> None:
        owner = self._endpoints.get(endpoint)
        if owner is None:
            raise RegistrationError(f"endpoint {endpoint!r} is not registered")
        if owner != principal:
            raise RegistrationError(
                f"endpoint {endpoint!r} belongs to {owner!r}, not {principal!r}"
            )

    # ------------------------------------------------------------------
    # Advertising & discovery
    # ------------------------------------------------------------------
    def advertise(
        self,
        token: Token,
        stream_id: StreamId,
        kind: str,
        encrypted: bool = False,
        attributes: dict | None = None,
    ) -> StreamDescriptor:
        """Attach metadata to a stream (requires PUBLISH)."""
        principal = self._auth.require(token, Permission.PUBLISH)
        descriptor = self._registry.advertise(
            stream_id,
            kind=kind,
            publisher=principal,
            encrypted=encrypted,
            attributes=attributes,
        )
        self._dispatcher.invalidate_routes(stream_id)
        self.stats.advertisements += 1
        notice = StreamAdvertisement(
            stream_id=stream_id,
            kind=kind,
            encrypted=encrypted,
            advertised_at=self._network.sim.now,
        )
        self._notify_watchers(notice)
        return descriptor

    def discover(
        self,
        token: Token,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
    ) -> list[StreamDescriptor]:
        """Query advertised streams by metadata (requires SUBSCRIBE)."""
        self._auth.require(token, Permission.SUBSCRIBE)
        self.stats.discoveries += 1
        return self._registry.match(
            kind=kind, sensor_id=sensor_id, derived=derived
        )

    def watch_advertisements(
        self, token: Token, callback: Callable[[StreamAdvertisement], None]
    ) -> None:
        """Be notified of every future advertisement (requires SUBSCRIBE)."""
        self._auth.require(token, Permission.SUBSCRIBE)
        self._watchers.append(callback)

    def _on_advertisement(self, notice: StreamAdvertisement) -> None:
        # Auto-advertisements from the Dispatching Service for streams
        # first seen as arriving data.
        self.stats.advertisements += 1
        self._notify_watchers(notice)

    def _notify_watchers(self, notice: StreamAdvertisement) -> None:
        for watcher in self._watchers:
            watcher(notice)

    # ------------------------------------------------------------------
    # Publish/subscribe
    # ------------------------------------------------------------------
    def subscribe(
        self, token: Token, endpoint: str, pattern: SubscriptionPattern
    ) -> int:
        """Install a subscription routing matching streams to ``endpoint``."""
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        self._require_owner(principal, endpoint)
        if not isinstance(pattern, SubscriptionPattern):
            raise SubscriptionError(
                f"pattern must be a SubscriptionPattern, got {type(pattern)!r}"
            )
        subscription_id = self._dispatcher.add_subscription(endpoint, pattern)
        self.stats.subscriptions += 1
        return subscription_id

    def subscribe_stream(
        self, token: Token, endpoint: str, stream_id: StreamId
    ) -> int:
        """Convenience: subscribe to exactly one stream."""
        return self.subscribe(
            token, endpoint, SubscriptionPattern(stream_id=stream_id)
        )

    def unsubscribe(self, token: Token, subscription_id: int) -> None:
        self._auth.require(token, Permission.SUBSCRIBE)
        self._dispatcher.remove_subscription(subscription_id)
        self.stats.unsubscriptions += 1

    # ------------------------------------------------------------------
    # RPC surface (Figure 1 shows consumers reaching services by RPC)
    # ------------------------------------------------------------------
    def rpc_register_consumer(self, token: Token, endpoint: str) -> str:
        return self.register_consumer(token, endpoint)

    def rpc_discover(self, token: Token, **query) -> list[StreamDescriptor]:
        return self.discover(token, **query)

    def rpc_subscribe(
        self, token: Token, endpoint: str, pattern: SubscriptionPattern
    ) -> int:
        return self.subscribe(token, endpoint, pattern)

    def rpc_unsubscribe(self, token: Token, subscription_id: int) -> None:
        self.unsubscribe(token, subscription_id)

    def rpc_advertise(
        self, token: Token, stream_id: StreamId, kind: str, **kwargs
    ) -> StreamDescriptor:
        return self.advertise(token, stream_id, kind, **kwargs)
