"""The pub/sub broker: advertising, discovery, registration, authentication.

Section 3: "the data is consumed by applications which use typical
advertising, discovery, registration, authentication and publish/subscribe
mechanisms to identify, subscribe to, and receive data streams of
interest." The broker is the front door implementing all five:

- **registration/authentication** — consumers present an
  :class:`~repro.core.security.AuthService` token and register their
  fixed-network endpoint;
- **advertising** — publishers attach metadata (a kind tag, attributes,
  encryption marker) to streams; the Dispatching Service also auto-
  advertises streams first seen as raw data;
- **discovery** — consumers query advertised metadata, never payloads;
- **publish/subscribe** — subscriptions (exact or pattern) are installed
  into the Dispatching Service, which owns the data path.

Registrations are **leases**: when the broker is constructed with a
``lease_ttl``, an endpoint that stops heartbeating past its TTL is reaped
— its binding and every subscription it installed are dropped, exactly
what happens to a consumer process that died without deregistering.
:class:`~repro.core.session.GarnetSession` heartbeats automatically, and
uses a ``False`` heartbeat reply ("who are you?") as its signal to
re-register after the broker itself crashed and restarted with empty
state (:meth:`Broker.crash` / :meth:`Broker.restart`, driven by
:mod:`repro.faults`).

Consumers remain mutually unaware: nothing the broker exposes reveals who
else is subscribed (Section 2, "consumer processes are mutually unaware").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.dispatching import (
    BROKER_INBOX,
    DispatchingService,
    SubscriptionPattern,
)
from repro.core.envelopes import StreamAdvertisement
from repro.core.security import AuthService, Permission, Token
from repro.core.streamid import StreamId
from repro.core.streams import StreamDescriptor, StreamRegistry
from repro.errors import (
    ConfigurationError,
    RegistrationError,
    ServiceDownError,
    SubscriptionError,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork, RpcEndpoint

SERVICE_NAME = "garnet.broker"


class BrokerStats(RegistryBackedStats):
    PREFIX = "broker"

    registrations: int = 0
    advertisements: int = 0
    discoveries: int = 0
    subscriptions: int = 0
    unsubscriptions: int = 0
    heartbeats: int = 0
    leases_expired: int = 0


class Broker(RpcEndpoint):
    """Authenticated front door to Garnet's stream catalogue and data path."""

    def __init__(
        self,
        network: FixedNetwork,
        registry: StreamRegistry,
        dispatcher: DispatchingService,
        auth: AuthService,
        metrics: MetricsRegistry | None = None,
        lease_ttl: float | None = None,
        service_name: str = SERVICE_NAME,
        advertisement_inbox: str = BROKER_INBOX,
    ) -> None:
        if lease_ttl is not None and lease_ttl <= 0:
            raise ConfigurationError("lease_ttl must be positive or None")
        self._network = network
        self._registry = registry
        self._dispatcher = dispatcher
        self._auth = auth
        self._lease_ttl = lease_ttl
        self.service_name = service_name
        self._advertisement_inbox = advertisement_inbox
        self._endpoints: dict[str, str] = {}  # endpoint -> principal
        self._permissions: dict[str, Permission] = {}  # endpoint -> perms
        self._leases: dict[str, float] = {}  # endpoint -> expires_at
        self._watchers: list[Callable[[StreamAdvertisement], None]] = []
        self._up = True
        self.stats = BrokerStats(metrics)
        network.register_inbox(advertisement_inbox, self._on_advertisement)
        network.register_service(service_name, self)
        dispatcher.set_route_guard(self._route_guard)

    def _route_guard(self, endpoint: str, descriptor) -> bool:
        """Data-path permission check for restricted streams.

        A stream advertised with a ``required_permission`` attribute (the
        location stream is the canonical case, Section 2) is only
        delivered to endpoints whose registration token carries that
        permission.
        """
        required = descriptor.attributes.get("required_permission")
        if required is None:
            return True
        held = self._permissions.get(endpoint, Permission.NONE)
        return held & required == required

    # ------------------------------------------------------------------
    # Liveness (crash faults)
    # ------------------------------------------------------------------
    @property
    def advertisement_inbox(self) -> str:
        """The inbox this broker listens on for stream advertisements."""
        return self._advertisement_inbox

    @property
    def up(self) -> bool:
        """False between :meth:`crash` and :meth:`restart`."""
        return self._up

    def crash(self) -> None:
        """Kill the broker: state is lost, its endpoints go dark.

        Models a middleware host dying without a graceful shutdown: the
        session/lease table evaporates, the routing state those sessions
        installed is torn down (their deliveries stop, data falls through
        to the Orphanage), and the broker disappears from the RPC fabric.
        Idempotent. Consumers recover after :meth:`restart` via their
        heartbeat loop.
        """
        if not self._up:
            return
        self._up = False
        for endpoint in list(self._endpoints):
            self._dispatcher.remove_endpoint(endpoint)
        self._endpoints.clear()
        self._permissions.clear()
        self._leases.clear()
        self._dispatcher.invalidate_routes()
        self._network.unregister_service(self.service_name)
        self._network.unregister_inbox(self._advertisement_inbox)

    def restart(self) -> None:
        """Bring a crashed broker back, empty: sessions must re-register."""
        if self._up:
            return
        self._up = True
        self._network.register_service(self.service_name, self)
        self._network.register_inbox(
            self._advertisement_inbox, self._on_advertisement
        )

    def _require_up(self) -> None:
        if not self._up:
            raise ServiceDownError("the broker is down")

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    @property
    def lease_ttl(self) -> float | None:
        return self._lease_ttl

    def lease_expiry(self, endpoint: str) -> float | None:
        """When ``endpoint``'s lease lapses (None = no lease / no TTL)."""
        return self._leases.get(endpoint)

    def _grant_lease(self, endpoint: str) -> None:
        if self._lease_ttl is not None:
            self._leases[endpoint] = (
                self._network.sim.now + self._lease_ttl
            )

    def reap_expired_leases(self) -> int:
        """Drop every endpoint whose lease has lapsed; returns the count.

        Called lazily from every broker operation (and by the session
        heartbeat path), so a dead consumer's subscriptions disappear the
        next time anything touches the broker after the TTL passes.

        Reaping funnels through ``dispatcher.remove_endpoint``, which
        also releases any QoS delivery backlog (queued or quarantined
        messages) parked for the endpoint — a reaped consumer keeps no
        claim on middleware memory.
        """
        if self._lease_ttl is None:
            return 0
        now = self._network.sim.now
        expired = [
            endpoint
            for endpoint, expires_at in self._leases.items()
            if expires_at <= now
        ]
        for endpoint in expired:
            del self._leases[endpoint]
            self._endpoints.pop(endpoint, None)
            self._permissions.pop(endpoint, None)
            self._dispatcher.remove_endpoint(endpoint)
            self.stats.leases_expired += 1
        if expired:
            self._dispatcher.invalidate_routes()
        return len(expired)

    def heartbeat(self, token: Token, endpoint: str) -> bool:
        """Renew ``endpoint``'s lease; False means "re-register, please".

        A ``False`` reply is how a session discovers the broker lost its
        registration — because the lease expired, or because the broker
        restarted from a crash with empty state.
        """
        self._require_up()
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        self.reap_expired_leases()
        self.stats.heartbeats += 1
        if self._endpoints.get(endpoint) != principal:
            return False
        self._grant_lease(endpoint)
        return True

    # ------------------------------------------------------------------
    # Registration & authentication
    # ------------------------------------------------------------------
    def register_consumer(self, token: Token, endpoint: str) -> str:
        """Bind a consumer's fixed-network endpoint to its identity."""
        self._require_up()
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        self.reap_expired_leases()
        if not self._network.has_inbox(endpoint):
            raise RegistrationError(
                f"endpoint {endpoint!r} has no inbox on the fixed network"
            )
        existing = self._endpoints.get(endpoint)
        if existing is not None and existing != principal:
            raise RegistrationError(
                f"endpoint {endpoint!r} already bound to {existing!r}"
            )
        self._endpoints[endpoint] = principal
        self._permissions[endpoint] = token.permissions
        self._grant_lease(endpoint)
        self._dispatcher.invalidate_routes()
        self.stats.registrations += 1
        return principal

    def deregister_consumer(self, token: Token, endpoint: str) -> int:
        """Unbind an endpoint and drop all its subscriptions."""
        self._require_up()
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        self._require_owner(principal, endpoint)
        del self._endpoints[endpoint]
        self._permissions.pop(endpoint, None)
        self._leases.pop(endpoint, None)
        self._dispatcher.invalidate_routes()
        return self._dispatcher.remove_endpoint(endpoint)

    def _require_owner(self, principal: str, endpoint: str) -> None:
        owner = self._endpoints.get(endpoint)
        if owner is None:
            raise RegistrationError(f"endpoint {endpoint!r} is not registered")
        if owner != principal:
            raise RegistrationError(
                f"endpoint {endpoint!r} belongs to {owner!r}, not {principal!r}"
            )

    # ------------------------------------------------------------------
    # Advertising & discovery
    # ------------------------------------------------------------------
    def advertise(
        self,
        token: Token,
        stream_id: StreamId,
        kind: str,
        encrypted: bool = False,
        attributes: dict | None = None,
    ) -> StreamDescriptor:
        """Attach metadata to a stream (requires PUBLISH)."""
        self._require_up()
        principal = self._auth.require(token, Permission.PUBLISH)
        descriptor = self._registry.advertise(
            stream_id,
            kind=kind,
            publisher=principal,
            encrypted=encrypted,
            attributes=attributes,
        )
        self._dispatcher.invalidate_routes(stream_id)
        self.stats.advertisements += 1
        notice = StreamAdvertisement(
            stream_id=stream_id,
            kind=kind,
            encrypted=encrypted,
            advertised_at=self._network.sim.now,
        )
        self._notify_watchers(notice)
        return descriptor

    def discover(
        self,
        token: Token,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
    ) -> list[StreamDescriptor]:
        """Query advertised streams by metadata (requires SUBSCRIBE)."""
        self._require_up()
        self._auth.require(token, Permission.SUBSCRIBE)
        self.stats.discoveries += 1
        return self._registry.match(
            kind=kind, sensor_id=sensor_id, derived=derived
        )

    def watch_advertisements(
        self, token: Token, callback: Callable[[StreamAdvertisement], None]
    ) -> None:
        """Be notified of every future advertisement (requires SUBSCRIBE)."""
        self._require_up()
        self._auth.require(token, Permission.SUBSCRIBE)
        self._watchers.append(callback)

    def _on_advertisement(self, notice: StreamAdvertisement) -> None:
        # Auto-advertisements from the Dispatching Service for streams
        # first seen as arriving data.
        self.stats.advertisements += 1
        self._notify_watchers(notice)

    def _notify_watchers(self, notice: StreamAdvertisement) -> None:
        for watcher in self._watchers:
            watcher(notice)

    # ------------------------------------------------------------------
    # Publish/subscribe
    # ------------------------------------------------------------------
    def subscribe(
        self, token: Token, endpoint: str, pattern: SubscriptionPattern
    ) -> int:
        """Install a subscription routing matching streams to ``endpoint``."""
        self._require_up()
        principal = self._auth.require(token, Permission.SUBSCRIBE)
        self.reap_expired_leases()
        self._require_owner(principal, endpoint)
        if not isinstance(pattern, SubscriptionPattern):
            raise SubscriptionError(
                f"pattern must be a SubscriptionPattern, got {type(pattern)!r}"
            )
        subscription_id = self._dispatcher.add_subscription(endpoint, pattern)
        self.stats.subscriptions += 1
        return subscription_id

    def unsubscribe(self, token: Token, subscription_id: int) -> None:
        self._require_up()
        self._auth.require(token, Permission.SUBSCRIBE)
        self._dispatcher.remove_subscription(subscription_id)
        self.stats.unsubscriptions += 1

    # ------------------------------------------------------------------
    # RPC surface (Figure 1 shows consumers reaching services by RPC)
    # ------------------------------------------------------------------
    def rpc_register_consumer(self, token: Token, endpoint: str) -> str:
        return self.register_consumer(token, endpoint)

    def rpc_heartbeat(self, token: Token, endpoint: str) -> bool:
        return self.heartbeat(token, endpoint)

    def rpc_discover(self, token: Token, **query) -> list[StreamDescriptor]:
        return self.discover(token, **query)

    def rpc_subscribe(
        self, token: Token, endpoint: str, pattern: SubscriptionPattern
    ) -> int:
        return self.subscribe(token, endpoint, pattern)

    def rpc_unsubscribe(self, token: Token, subscription_id: int) -> None:
        self.unsubscribe(token, subscription_id)

    def rpc_advertise(
        self, token: Token, stream_id: StreamId, kind: str, **kwargs
    ) -> StreamDescriptor:
        return self.advertise(token, stream_id, kind, **kwargs)
