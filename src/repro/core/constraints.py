"""A small expressive language for codifying sensor constraints.

Section 8 lists as ongoing work the "codification of sensor constraints
via the development of an expressive language. This would facilitate the
operation of the resource manager in automatically enforcing such
limits." This module implements that language; the Resource Manager
evaluates each sensor type's constraints against a proposed configuration
before admitting a stream update request.

Grammar (a conventional boolean-expression language)::

    expr       := or_expr
    or_expr    := and_expr ( 'or' and_expr )*
    and_expr   := unary ( 'and' unary )*
    unary      := 'not' unary | comparison
    comparison := operand ( ('<='|'<'|'>='|'>'|'=='|'!='|'in') operand )?
                | '(' expr ')'
    operand    := NUMBER | IDENT | set_literal | '(' expr ')'
    set_literal:= '{' operand ( ',' operand )* '}'

Identifiers are resolved from an environment mapping at evaluation time;
bare identifiers that are *not* in the environment evaluate to themselves
as symbols, so mode names can be written naturally::

    rate <= 10 and mode in {low, high}
    not (precision > 12) or rate < 1
    rate * duty <= 5        -- arithmetic: + - * /

Arithmetic on numbers is supported inside comparisons, with the usual
precedence below comparison level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.errors import ConstraintError, ConstraintSyntaxError

Value = Union[float, int, str, frozenset]


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------

_PUNCT = {
    "<=": "LE",
    ">=": "GE",
    "==": "EQ",
    "!=": "NE",
    "<": "LT",
    ">": "GT",
    "(": "LPAREN",
    ")": "RPAREN",
    "{": "LBRACE",
    "}": "RBRACE",
    ",": "COMMA",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
}
_KEYWORDS = {"and", "or", "not", "in", "true", "false"}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        two = text[i : i + 2]
        if two in _PUNCT:
            tokens.append(_Token(_PUNCT[two], two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(_Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    seen_dot = True
                i += 1
            tokens.append(_Token("NUMBER", text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] in "._"):
                i += 1
            word = text[start:i]
            kind = "KEYWORD" if word in _KEYWORDS else "IDENT"
            tokens.append(_Token(kind, word, start))
            continue
        raise ConstraintSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(_Token("EOF", "", length))
    return tokens


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------

class _Node:
    __slots__ = ()

    def evaluate(self, env: dict[str, Any]) -> Any:
        raise NotImplementedError

    def variables(self) -> set[str]:
        return set()


@dataclass(frozen=True, slots=True)
class _Literal(_Node):
    value: Value

    def evaluate(self, env: dict[str, Any]) -> Any:
        return self.value


@dataclass(frozen=True, slots=True)
class _Name(_Node):
    name: str

    def evaluate(self, env: dict[str, Any]) -> Any:
        # Unknown identifiers evaluate to their own name (a symbol), so
        # `mode == low` works whether or not `low` is a bound variable.
        return env.get(self.name, self.name)

    def variables(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True, slots=True)
class _SetLiteral(_Node):
    items: tuple[_Node, ...]

    def evaluate(self, env: dict[str, Any]) -> Any:
        return frozenset(item.evaluate(env) for item in self.items)

    def variables(self) -> set[str]:
        result: set[str] = set()
        for item in self.items:
            result |= item.variables()
        return result


@dataclass(frozen=True, slots=True)
class _Binary(_Node):
    op: str
    left: _Node
    right: _Node

    def evaluate(self, env: dict[str, Any]) -> Any:
        if self.op == "and":
            return bool(self.left.evaluate(env)) and bool(
                self.right.evaluate(env)
            )
        if self.op == "or":
            return bool(self.left.evaluate(env)) or bool(
                self.right.evaluate(env)
            )
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        try:
            if self.op == "<":
                return left < right
            if self.op == "<=":
                return left <= right
            if self.op == ">":
                return left > right
            if self.op == ">=":
                return left >= right
            if self.op == "==":
                return left == right
            if self.op == "!=":
                return left != right
            if self.op == "in":
                return left in right
            if self.op == "+":
                return left + right
            if self.op == "-":
                return left - right
            if self.op == "*":
                return left * right
            if self.op == "/":
                if right == 0:
                    raise ConstraintError("division by zero in constraint")
                return left / right
        except TypeError as exc:
            raise ConstraintError(
                f"cannot apply {self.op!r} to {left!r} and {right!r}"
            ) from exc
        raise ConstraintError(f"unknown operator {self.op!r}")

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True, slots=True)
class _Not(_Node):
    operand: _Node

    def evaluate(self, env: dict[str, Any]) -> Any:
        return not bool(self.operand.evaluate(env))

    def variables(self) -> set[str]:
        return self.operand.variables()


# ----------------------------------------------------------------------
# Parser (recursive descent)
# ----------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ConstraintSyntaxError(
                f"expected {kind}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def parse(self) -> _Node:
        node = self._or_expr()
        trailing = self._peek()
        if trailing.kind != "EOF":
            raise ConstraintSyntaxError(
                f"unexpected trailing input {trailing.text!r}",
                trailing.position,
            )
        return node

    def _or_expr(self) -> _Node:
        node = self._and_expr()
        while self._peek().text == "or":
            self._advance()
            node = _Binary("or", node, self._and_expr())
        return node

    def _and_expr(self) -> _Node:
        node = self._unary()
        while self._peek().text == "and":
            self._advance()
            node = _Binary("and", node, self._unary())
        return node

    def _unary(self) -> _Node:
        if self._peek().text == "not":
            self._advance()
            return _Not(self._unary())
        return self._comparison()

    _COMPARATORS = {"LE", "GE", "EQ", "NE", "LT", "GT"}

    def _comparison(self) -> _Node:
        left = self._additive()
        token = self._peek()
        if token.kind in self._COMPARATORS:
            self._advance()
            return _Binary(token.text, left, self._additive())
        if token.text == "in":
            self._advance()
            return _Binary("in", left, self._additive())
        return left

    def _additive(self) -> _Node:
        node = self._multiplicative()
        while self._peek().kind in ("PLUS", "MINUS"):
            op = self._advance().text
            node = _Binary(op, node, self._multiplicative())
        return node

    def _multiplicative(self) -> _Node:
        node = self._operand()
        while self._peek().kind in ("STAR", "SLASH"):
            op = self._advance().text
            node = _Binary(op, node, self._operand())
        return node

    def _operand(self) -> _Node:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            return _Literal(float(text) if "." in text else int(text))
        if token.kind == "IDENT":
            self._advance()
            return _Name(token.text)
        if token.text in ("true", "false"):
            self._advance()
            return _Literal(token.text == "true")
        if token.kind == "LPAREN":
            self._advance()
            node = self._or_expr()
            self._expect("RPAREN")
            return node
        if token.kind == "LBRACE":
            return self._set_literal()
        raise ConstraintSyntaxError(
            f"expected a value, found {token.text or 'end of input'!r}",
            token.position,
        )

    def _set_literal(self) -> _Node:
        self._expect("LBRACE")
        items: list[_Node] = [self._operand()]
        while self._peek().kind == "COMMA":
            self._advance()
            items.append(self._operand())
        self._expect("RBRACE")
        return _SetLiteral(tuple(items))


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

class Constraint:
    """A compiled constraint expression.

    >>> c = Constraint("rate <= 10 and mode in {low, high}")
    >>> c.check({"rate": 5, "mode": "low"})
    True
    >>> c.check({"rate": 50, "mode": "low"})
    False
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self._ast = _Parser(_tokenize(text)).parse()

    def check(self, environment: dict[str, Any]) -> bool:
        """Evaluate against a configuration environment; returns a bool."""
        return bool(self._ast.evaluate(dict(environment)))

    def variables(self) -> set[str]:
        """Every identifier the expression references."""
        return self._ast.variables()

    def __repr__(self) -> str:
        return f"Constraint({self.text!r})"


class ConstraintSet:
    """The named constraints governing one sensor type.

    The Resource Manager keeps one per sensor model and calls
    :meth:`violations` with the configuration a stream update request
    would produce.
    """

    def __init__(self, constraints: dict[str, str] | None = None) -> None:
        self._constraints: dict[str, Constraint] = {}
        for name, text in (constraints or {}).items():
            self.add(name, text)

    def add(self, name: str, text: str) -> Constraint:
        if name in self._constraints:
            raise ConstraintError(f"constraint {name!r} already defined")
        constraint = Constraint(text)
        self._constraints[name] = constraint
        return constraint

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, name: str) -> bool:
        return name in self._constraints

    def names(self) -> list[str]:
        return sorted(self._constraints)

    def variables(self) -> set[str]:
        result: set[str] = set()
        for constraint in self._constraints.values():
            result |= constraint.variables()
        return result

    def violations(self, environment: dict[str, Any]) -> list[str]:
        """Names of constraints the environment violates (empty = admitted)."""
        return [
            name
            for name, constraint in sorted(self._constraints.items())
            if not constraint.check(environment)
        ]

    def satisfied_by(self, environment: dict[str, Any]) -> bool:
        return not self.violations(environment)
