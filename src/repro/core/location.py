"""The Location Service: inferred sensor positions as a data stream.

Section 4.2: "The Location Service receives location information which is
inferred by the Receivers. This data is mainly used to target location
areas when transmitting control messages to the sensor field. Consumers
processing data from location-aware sensors may supply location hints to
the location service."

Section 5 explains the two deliberate generality choices reproduced here:
location is *inferred* (no location field burdens the message header, and
simple sensors need no positioning hardware) and *hint-augmented*
(consumers that can infer or otherwise know a sensor's position feed that
knowledge in).

Inference model
---------------
Each reception contributes an observation ``(receiver position, RSSI,
time)``. The estimate for a sensor is the weighted centroid of observing
receiver positions, where a contribution's weight is its linearised
signal strength times an exponential time decay — strong recent
receptions dominate, stale ones fade. Hints act as extra observations
with weight set by their stated confidence. The confidence radius is the
weighted RMS spread of contributors (floored at a fraction of receiver
range, since one receiver alone localises no better than its zone).

Location data is sensitive (Section 2): reading it through the broker
requires the dedicated ``LOCATION`` permission, and the service publishes
estimates as a normal (restricted) data stream so "location data [is
treated] as any other data stream".
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.core.envelopes import (
    LocationHint,
    LocationObservation,
    StreamArrival,
)
from repro.core.message import DataMessage
from repro.core.streamid import StreamId
from repro.errors import LocationError, RegistrationError
from repro.simnet.fixednet import FixedNetwork, RpcEndpoint
from repro.simnet.geometry import Circle, Point, weighted_centroid
from repro.simnet.kernel import PeriodicTask
from repro.util.ids import WrappingCounter

OBSERVATION_INBOX = "garnet.location.observations"
HINT_INBOX = "garnet.location.hints"
SERVICE_NAME = "garnet.location"

LOCATION_STREAM_KIND = "garnet.location"
"""Kind tag of the derived stream of location estimates (restricted)."""

_ESTIMATE_STRUCT = struct.Struct(">Iddd")


@dataclass(frozen=True, slots=True)
class LocationEstimate:
    """The service's best guess at a sensor's position."""

    sensor_id: int
    position: Point
    confidence_radius: float
    observation_count: int
    newest_observation_age: float

    def as_circle(self) -> Circle:
        """The target area the Message Replicator broadcasts into."""
        return Circle(self.position, self.confidence_radius)

    def pack(self) -> bytes:
        """Serialise for the location data stream's (opaque) payload."""
        return _ESTIMATE_STRUCT.pack(
            self.sensor_id,
            self.position.x,
            self.position.y,
            self.confidence_radius,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "LocationEstimate":
        sensor_id, x, y, radius = _ESTIMATE_STRUCT.unpack(payload)
        return cls(
            sensor_id=sensor_id,
            position=Point(x, y),
            confidence_radius=radius,
            observation_count=0,
            newest_observation_age=0.0,
        )


@dataclass(slots=True)
class _Observation:
    position: Point
    weight: float
    time: float


class LocationService(RpcEndpoint):
    """Maintains inferred location estimates for every heard sensor.

    Parameters
    ----------
    network:
        Fixed network (observation/hint inboxes + RPC registration).
    decay_tau:
        Time constant (seconds) of the exponential weight decay; after a
        few tau without receptions a mobile sensor's stale position stops
        anchoring the estimate.
    max_observations:
        Observations retained per sensor (newest kept).
    min_confidence_radius:
        Floor for the reported confidence radius, typically a fraction of
        receiver zone radius.
    """

    def __init__(
        self,
        network: FixedNetwork,
        decay_tau: float = 30.0,
        max_observations: int = 32,
        min_confidence_radius: float = 10.0,
    ) -> None:
        if decay_tau <= 0:
            raise ValueError("decay_tau must be positive")
        if max_observations < 1:
            raise ValueError("max_observations must be at least 1")
        self._network = network
        self._decay_tau = decay_tau
        self._max_observations = max_observations
        self._min_radius = min_confidence_radius
        self._receivers: dict[int, Point] = {}
        self._observations: dict[int, list[_Observation]] = {}
        self._hints: dict[int, list[_Observation]] = {}
        self.observations_received = 0
        self.hints_received = 0
        network.register_inbox(OBSERVATION_INBOX, self.on_observation)
        network.register_inbox(HINT_INBOX, self.on_hint)
        network.register_service(SERVICE_NAME, self)

    # ------------------------------------------------------------------
    def register_receiver(self, receiver_id: int, position: Point) -> None:
        """Teach the service where a receiver's antenna is."""
        if receiver_id in self._receivers:
            raise RegistrationError(
                f"receiver {receiver_id} already registered"
            )
        self._receivers[receiver_id] = position

    def on_observation(self, observation: LocationObservation) -> None:
        """Fold in one reception report from a receiver."""
        position = self._receivers.get(observation.receiver_id)
        if position is None:
            # A receiver we were never told about: ignore rather than
            # guess — the estimate must only ever use known anchors.
            return
        self.observations_received += 1
        weight = _rssi_to_weight(observation.rssi)
        bucket = self._observations.setdefault(observation.sensor_id, [])
        bucket.append(
            _Observation(position, weight, observation.observed_at)
        )
        if len(bucket) > self._max_observations:
            del bucket[: len(bucket) - self._max_observations]

    def on_hint(self, hint: LocationHint) -> None:
        """Fold in a consumer-supplied location hint (Section 5)."""
        self.hints_received += 1
        radius = max(hint.confidence_radius, 1.0)
        # A tight hint should outweigh radio observations; weight scales
        # with the implied precision (inverse area).
        weight = 1000.0 / (radius * radius)
        bucket = self._hints.setdefault(hint.sensor_id, [])
        bucket.append(
            _Observation(Point(hint.x, hint.y), weight, hint.supplied_at)
        )
        if len(bucket) > self._max_observations:
            del bucket[: len(bucket) - self._max_observations]

    # ------------------------------------------------------------------
    def estimate(self, sensor_id: int) -> LocationEstimate:
        """Best current estimate; raises :class:`LocationError` if unheard."""
        now = self._network.sim.now
        contributions = [
            (obs.position, self._decayed(obs, now))
            for obs in self._observations.get(sensor_id, ())
        ]
        contributions += [
            (obs.position, self._decayed(obs, now))
            for obs in self._hints.get(sensor_id, ())
        ]
        contributions = [(p, w) for p, w in contributions if w > 1e-12]
        if not contributions:
            raise LocationError(
                f"no usable observations for sensor {sensor_id}"
            )
        points = [p for p, _ in contributions]
        weights = [w for _, w in contributions]
        center = weighted_centroid(points, weights)
        total = sum(weights)
        spread_sq = (
            sum(w * center.distance_to(p) ** 2 for p, w in contributions)
            / total
        )
        radius = max(math.sqrt(spread_sq), self._min_radius)
        newest = max(
            obs.time
            for bucket in (
                self._observations.get(sensor_id, ()),
                self._hints.get(sensor_id, ()),
            )
            for obs in bucket
        )
        return LocationEstimate(
            sensor_id=sensor_id,
            position=center,
            confidence_radius=radius,
            observation_count=len(contributions),
            newest_observation_age=now - newest,
        )

    def try_estimate(self, sensor_id: int) -> LocationEstimate | None:
        """Like :meth:`estimate` but returns None instead of raising."""
        try:
            return self.estimate(sensor_id)
        except LocationError:
            return None

    def known_sensors(self) -> list[int]:
        """Sensors with at least one observation or hint."""
        return sorted(set(self._observations) | set(self._hints))

    def _decayed(self, observation: _Observation, now: float) -> float:
        age = max(0.0, now - observation.time)
        return observation.weight * math.exp(-age / self._decay_tau)

    # ------------------------------------------------------------------
    # RPC surface: the Message Replicator's "lookup" arrow in Figure 1.
    # ------------------------------------------------------------------
    def rpc_estimate(self, sensor_id: int) -> LocationEstimate | None:
        return self.try_estimate(sensor_id)

    def rpc_hint(self, hint: LocationHint) -> None:
        self.on_hint(hint)


def _rssi_to_weight(rssi_dbm: float) -> float:
    """Linearise an RSSI (dBm) into a positive weight (milliwatts)."""
    return 10.0 ** (rssi_dbm / 10.0)


def stream_id_for_location_service(virtual_sensor_id: int) -> StreamId:
    """The StreamId under which estimates are republished (stream index 0)."""
    return StreamId(virtual_sensor_id, 0)


class LocationPublisher:
    """Republishes location estimates as a normal (restricted) data stream.

    Section 2: "we provide a location service which treats location data
    as any other data stream since, depending on the context, location
    information may be regarded as sensitive and should be protected by
    additional security mechanisms."

    Every ``period`` seconds, the current estimate of every known sensor
    is packed (:meth:`LocationEstimate.pack`) and published on one
    derived stream whose descriptor carries a ``required_permission``
    attribute — the Dispatching Service's route guard then keeps the
    stream away from consumers lacking the LOCATION permission.
    """

    def __init__(
        self,
        network: FixedNetwork,
        location: "LocationService",
        stream_id: StreamId,
        period: float = 10.0,
        dispatch_inbox: str = "garnet.dispatching",
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._network = network
        self._location = location
        self._stream_id = stream_id
        self._dispatch_inbox = dispatch_inbox
        self._sequence = WrappingCounter(16)
        self.published = 0
        self._task = PeriodicTask(
            network.sim, period, self._publish_estimates
        )

    @property
    def stream_id(self) -> StreamId:
        return self._stream_id

    def stop(self) -> None:
        self._task.stop()

    def _publish_estimates(self) -> None:
        now = self._network.sim.now
        for sensor_id in self._location.known_sensors():
            estimate = self._location.try_estimate(sensor_id)
            if estimate is None:
                continue
            message = DataMessage(
                stream_id=self._stream_id,
                sequence=self._sequence.next(),
                payload=estimate.pack(),
            )
            self._network.send(
                self._dispatch_inbox,
                StreamArrival(
                    message=message, received_at=now, receiver_id=-1
                ),
            )
            self.published += 1
