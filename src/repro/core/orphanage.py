"""The Orphanage: default consumer for un-configured data.

Section 4.2: "The Orphanage is a default consumer process which receives
un-configured data. There, data messages are analysed and potentially
stored."

The Orphanage keeps a bounded backlog per orphan stream (oldest messages
evicted first), runs pluggable analyses over arrivals, and can replay the
retained backlog to a consumer that subscribes late — turning the window
between deployment and first subscription from data loss into a catch-up.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.envelopes import StreamArrival
from repro.core.streamid import StreamId
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork

INBOX = "garnet.orphanage"

Analyzer = Callable[[StreamArrival], None]


class OrphanageStats(RegistryBackedStats):
    PREFIX = "orphanage"

    received: int = 0
    evicted: int = 0
    """Backlog entries silently displaced by newer arrivals (bounded
    ``deque(maxlen)`` semantics made visible: an eviction is data loss,
    and capacity tuning needs a number to look at)."""
    replayed: int = 0
    discarded: int = 0


@dataclass(slots=True)
class OrphanStreamReport:
    """What the Orphanage has learned about one unclaimed stream."""

    stream_id: StreamId
    messages_seen: int
    messages_retained: int
    first_seen_at: float
    last_seen_at: float
    mean_payload_bytes: float
    mean_interarrival: float

    @property
    def estimated_rate(self) -> float:
        """Estimated messages/second, from mean inter-arrival time."""
        if self.mean_interarrival <= 0:
            return 0.0
        return 1.0 / self.mean_interarrival


class _OrphanStream:
    __slots__ = (
        "backlog",
        "messages_seen",
        "first_seen_at",
        "last_seen_at",
        "total_payload_bytes",
    )

    def __init__(self, capacity: int) -> None:
        self.backlog: deque[StreamArrival] = deque(maxlen=capacity)
        self.messages_seen = 0
        self.first_seen_at: float | None = None
        self.last_seen_at: float | None = None
        self.total_payload_bytes = 0


class Orphanage:
    """Bounded store + analysis for data no consumer has claimed."""

    def __init__(
        self,
        network: FixedNetwork,
        backlog_per_stream: int = 256,
        metrics: MetricsRegistry | None = None,
        inbox: str = INBOX,
    ) -> None:
        if backlog_per_stream < 0:
            raise ValueError("backlog_per_stream must be non-negative")
        self._network = network
        self._capacity = backlog_per_stream
        self._streams: dict[StreamId, _OrphanStream] = {}
        self._analyzers: list[Analyzer] = []
        self.inbox = inbox
        self.stats = OrphanageStats(metrics)
        network.register_inbox(inbox, self.on_arrival)

    @property
    def total_received(self) -> int:
        """Alias of ``stats.received`` (the historical attribute name)."""
        return self.stats.received

    def add_analyzer(self, analyzer: Analyzer) -> None:
        """Run ``analyzer`` over every orphaned arrival (policy hook)."""
        self._analyzers.append(analyzer)

    def on_arrival(self, arrival: StreamArrival) -> None:
        self.stats.received += 1
        stream_id = arrival.message.stream_id
        state = self._streams.get(stream_id)
        if state is None:
            state = _OrphanStream(self._capacity)
            self._streams[stream_id] = state
        state.messages_seen += 1
        if state.first_seen_at is None:
            state.first_seen_at = arrival.received_at
        state.last_seen_at = arrival.received_at
        state.total_payload_bytes += len(arrival.message.payload)
        if self._capacity > 0:
            if len(state.backlog) == self._capacity:
                # maxlen is about to displace the oldest entry; the deque
                # does it silently, the stats must not.
                self.stats.evicted += 1
            state.backlog.append(arrival)
        for analyzer in self._analyzers:
            analyzer(arrival)

    # ------------------------------------------------------------------
    def orphan_streams(self) -> list[StreamId]:
        """Streams currently holding orphaned data, in stable order."""
        return sorted(self._streams.keys())

    def report(self, stream_id: StreamId) -> OrphanStreamReport | None:
        """Analysis summary for one orphan stream; None when unseen."""
        state = self._streams.get(stream_id)
        if state is None or state.first_seen_at is None:
            return None
        span = (state.last_seen_at or 0.0) - state.first_seen_at
        intervals = state.messages_seen - 1
        return OrphanStreamReport(
            stream_id=stream_id,
            messages_seen=state.messages_seen,
            messages_retained=len(state.backlog),
            first_seen_at=state.first_seen_at,
            last_seen_at=state.last_seen_at or state.first_seen_at,
            mean_payload_bytes=(
                state.total_payload_bytes / state.messages_seen
                if state.messages_seen
                else 0.0
            ),
            mean_interarrival=(span / intervals if intervals > 0 else 0.0),
        )

    def replay(
        self, stream_id: StreamId, endpoint: str, limit: int | None = None
    ) -> int:
        """Send the retained backlog for ``stream_id`` to ``endpoint``.

        Returns the number of messages replayed. The backlog is kept (the
        stream stays orphaned until the Dispatching Service routes it
        elsewhere); callers typically follow a successful subscription
        with ``discard``.
        """
        state = self._streams.get(stream_id)
        if state is None:
            return 0
        arrivals = list(state.backlog)
        if limit is not None:
            arrivals = arrivals[-limit:]
        for arrival in arrivals:
            self._network.send(endpoint, arrival)
        self.stats.replayed += len(arrivals)
        return len(arrivals)

    def discard(self, stream_id: StreamId) -> int:
        """Drop state for a stream once a real consumer has claimed it."""
        state = self._streams.pop(stream_id, None)
        if state is None:
            return 0
        self.stats.discarded += len(state.backlog)
        return len(state.backlog)
