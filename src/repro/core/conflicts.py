"""Mediation policies for conflicting consumer demands.

Section 2: mutually-unaware consumers "may lead to conflicting interaction
with the sensor field", and the middleware must mediate "among consumers
with potentially conflicting demands for shared data". Section 1 stresses
that Garnet supplies the *mechanism* and hooks; "only simple,
straightforward policies are assumed".

A :class:`MediationPolicy` answers one question: given every standing
demand for one configuration parameter of one stream, what value should
the sensor actually be set to? The Resource Manager applies the policy
per parameter; the Super Coordinator may swap policies at run time
(Figure 1's "Resource Strategy" arrow).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.errors import AdmissionError


@dataclass(frozen=True, slots=True)
class Demand:
    """One consumer's standing request for one parameter of one stream."""

    consumer: str
    parameter: str
    value: Any
    priority: int = 0
    placed_at: float = 0.0


class MediationPolicy(ABC):
    """Strategy deciding the effective value among conflicting demands."""

    name: str = "abstract"

    @abstractmethod
    def resolve(self, demands: list[Demand]) -> Any:
        """The value the sensor should be configured to.

        ``demands`` is non-empty and all entries target the same
        parameter. May raise :class:`AdmissionError` to refuse the
        combination outright.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class PriorityWins(MediationPolicy):
    """Highest-priority demand wins; ties broken by most recent placement.

    The natural policy where some consumers are more trusted (Section 9:
    "support for trusted applications to ... override sensor management
    policies").
    """

    name = "priority"

    def resolve(self, demands: list[Demand]) -> Any:
        best = max(demands, key=lambda d: (d.priority, d.placed_at))
        return best.value


class LatestWins(MediationPolicy):
    """Most recently placed demand wins — last-writer-wins semantics."""

    name = "latest"

    def resolve(self, demands: list[Demand]) -> Any:
        return max(demands, key=lambda d: d.placed_at).value


class FirstComeFirstServed(MediationPolicy):
    """The earliest demand holds until its consumer releases it."""

    name = "fcfs"

    def resolve(self, demands: list[Demand]) -> Any:
        return min(demands, key=lambda d: d.placed_at).value


class MaxDemand(MediationPolicy):
    """Numeric maximum: serve the hungriest consumer.

    The canonical rate policy — a sensor sampling at the fastest demanded
    rate satisfies every slower consumer too (they can subsample), which
    is how Fjords-style proxies adjust "sensor output based on user
    demand" (Section 7).
    """

    name = "max"

    def resolve(self, demands: list[Demand]) -> Any:
        return max(_numeric(d) for d in demands)


class MinDemand(MediationPolicy):
    """Numeric minimum: the most conservative demand wins.

    Appropriate for power-sensitive parameters where overshooting drains
    batteries (e.g. transmit precision on energy-constrained nodes).
    """

    name = "min"

    def resolve(self, demands: list[Demand]) -> Any:
        return min(_numeric(d) for d in demands)


class FairShare(MediationPolicy):
    """Priority-weighted mean of numeric demands.

    A compromise policy: every consumer moves the outcome in proportion
    to its priority (minimum weight 1), so no single demand dominates.
    """

    name = "fair"

    def resolve(self, demands: list[Demand]) -> Any:
        weights = [max(1, d.priority + 1) for d in demands]
        total = sum(weights)
        return sum(_numeric(d) * w for d, w in zip(demands, weights)) / total


class DenyConflicts(MediationPolicy):
    """Refuse any disagreement: all demands must ask for the same value.

    The strictest policy — useful where a wrong setting is worse than no
    change (e.g. switching a chemical sensor's reagent mode mid-assay).
    """

    name = "deny"

    def resolve(self, demands: list[Demand]) -> Any:
        values = {d.value for d in demands}
        if len(values) > 1:
            holders = sorted({d.consumer for d in demands})
            raise AdmissionError(
                f"conflicting demands for {demands[0].parameter!r} from "
                f"{holders}: {sorted(map(repr, values))}"
            )
        return demands[0].value


def _numeric(demand: Demand) -> float:
    if isinstance(demand.value, bool) or not isinstance(
        demand.value, (int, float)
    ):
        raise AdmissionError(
            f"policy requires numeric demands; {demand.consumer!r} asked "
            f"for {demand.value!r} on {demand.parameter!r}"
        )
    return float(demand.value)


BUILTIN_POLICIES: dict[str, type[MediationPolicy]] = {
    policy.name: policy
    for policy in (
        PriorityWins,
        LatestWins,
        FirstComeFirstServed,
        MaxDemand,
        MinDemand,
        FairShare,
        DenyConflicts,
    )
}


def make_policy(name: str) -> MediationPolicy:
    """Instantiate a built-in policy by its short name."""
    try:
        return BUILTIN_POLICIES[name]()
    except KeyError as exc:
        raise AdmissionError(
            f"unknown mediation policy {name!r}; "
            f"available: {sorted(BUILTIN_POLICIES)}"
        ) from exc
