"""The Actuation Service: reliable-ish delivery of control messages.

Section 4.2: after Resource Manager approval, "the Actuation Service next
processes the request with timestamps, and checksums, before forwarding
to the message replicator."

Because the forward wireless hop is unreliable, the service also owns the
acknowledgement loop: every issued request is tracked until a matching
acknowledgement (the ``ACK`` field of Section 4.3, extracted by the
Filtering Service) arrives, with bounded retransmission on timeout. On
confirmation the Resource Manager's believed configuration is updated —
this is exactly why the overview is "approximate" (Section 6): between
issue and acknowledgement the middleware's belief and the sensor's state
legitimately diverge.

Retransmission timing follows a configurable
:class:`~repro.util.backoff.BackoffPolicy`: the first wait is
``ack_timeout``, subsequent waits grow by the policy's multiplier (with
optional jitter drawn from a simulation-forked RNG), so a congested or
partitioned return path sees progressively gentler retry pressure. The
default policy (multiplier 1, no jitter) reproduces the original fixed
``ack_timeout`` behaviour exactly.

Request ids are 16-bit and ephemeral, wrapping after 64K requests — the
identifier the paper calls "loosely comparable to a RETRI" (Section 7).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import Any

from repro.core.control import (
    ControlCodec,
    StreamUpdateCommand,
    StreamUpdateRequest,
    encode_mode_params,
    encode_precision_params,
    encode_rate_params,
)
from repro.core.envelopes import AckNotice, TransmitOrder
from repro.core.resource import ResourceManager
from repro.core.streamid import StreamId
from repro.errors import ActuationError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.kernel import EventHandle
from repro.simnet.trace import LatencyRecorder
from repro.util.backoff import BackoffPolicy
from repro.util.ids import WrappingCounter

ACK_INBOX = "garnet.actuation.acks"
REPLICATOR_INBOX = "garnet.replicator"

CompletionCallback = Callable[["PendingRequest", bool], None]


def encode_command_params(command: StreamUpdateCommand, value: Any) -> bytes:
    """Parameter bytes for ``command`` carrying ``value``."""
    if command is StreamUpdateCommand.SET_RATE:
        return encode_rate_params(float(value))
    if command is StreamUpdateCommand.SET_MODE:
        return encode_mode_params(int(value))
    if command is StreamUpdateCommand.SET_PRECISION:
        return encode_precision_params(int(value))
    if command in (
        StreamUpdateCommand.ENABLE_STREAM,
        StreamUpdateCommand.DISABLE_STREAM,
        StreamUpdateCommand.PING,
    ):
        return b""
    raise ActuationError(f"no parameter codec for {command!r}")


@dataclass(slots=True)
class PendingRequest:
    """An issued request awaiting acknowledgement."""

    request: StreamUpdateRequest
    parameter: str | None
    value: Any
    issued_at: float
    attempts: int = 1
    timer: EventHandle | None = None
    on_complete: CompletionCallback | None = None


class ActuationStats(RegistryBackedStats):
    PREFIX = "actuation"

    issued: int = 0
    retransmissions: int = 0
    acknowledged: int = 0
    failed: int = 0
    duplicate_acks: int = 0


class ActuationService:
    """Stamps, tracks and (re)transmits approved stream update requests."""

    def __init__(
        self,
        network: FixedNetwork,
        resource_manager: ResourceManager | None = None,
        ack_timeout: float = 2.0,
        max_attempts: int = 3,
        metrics: MetricsRegistry | None = None,
        backoff: BackoffPolicy | None = None,
    ) -> None:
        if ack_timeout <= 0:
            raise ActuationError("ack_timeout must be positive")
        if max_attempts < 1:
            raise ActuationError("max_attempts must be at least 1")
        self._network = network
        self._resource_manager = resource_manager
        self._ack_timeout = ack_timeout
        # ``backoff`` overrides the legacy (ack_timeout, max_attempts)
        # pair; the default multiplier-1 policy is exactly the historical
        # fixed-interval retransmission.
        self._backoff = backoff or BackoffPolicy(
            base=ack_timeout,
            multiplier=1.0,
            jitter=0.0,
            max_attempts=max_attempts,
        )
        self._max_attempts = self._backoff.max_attempts
        # Forked only when jitter is in play, preserving the historical
        # RNG stream layout for deterministic legacy deployments.
        self._backoff_rng: random.Random | None = (
            network.sim.fork_rng() if self._backoff.jitter > 0 else None
        )
        self._codec = ControlCodec()
        self._request_ids = WrappingCounter(16)
        self._pending: dict[int, PendingRequest] = {}
        self.stats = ActuationStats(metrics)
        self.ack_latency = LatencyRecorder("actuation-ack")
        self._ack_seconds = self.stats.registry.histogram(
            "actuation.ack_seconds",
            help="issue-to-acknowledgement latency in virtual seconds",
        )
        network.register_inbox(ACK_INBOX, self.on_ack)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def has_pending_for(self, target: StreamId) -> bool:
        """True while any request toward ``target`` awaits its ack.

        Rate controllers (adaptive tuning, QoS degradation) use this to
        avoid stacking a second in-flight actuation on a stream whose
        previous update has not been confirmed yet.
        """
        return any(
            pending.request.target == target
            for pending in self._pending.values()
        )

    @property
    def backoff(self) -> BackoffPolicy:
        """The retransmission schedule in force."""
        return self._backoff

    def backoff_schedule(self) -> tuple[float, ...]:
        """Nominal wait after each attempt, in order (jitter excluded)."""
        return self._backoff.schedule()

    # ------------------------------------------------------------------
    def issue(
        self,
        target: StreamId,
        command: StreamUpdateCommand,
        value: Any = None,
        parameter: str | None = None,
        on_complete: CompletionCallback | None = None,
    ) -> int:
        """Send one approved request toward its sensor; returns request id.

        The caller is expected to have obtained Resource Manager approval
        already (the :class:`~repro.core.middleware.Garnet` facade wires
        that sequence); this service adds the timestamp, checksum and
        ephemeral request id, and owns retries.
        """
        now = self._network.sim.now
        request_id = self._allocate_request_id()
        request = StreamUpdateRequest(
            request_id=request_id,
            target=target,
            command=command,
            params=encode_command_params(command, value),
            timestamp_us=int(now * 1_000_000),
        )
        pending = PendingRequest(
            request=request,
            parameter=parameter,
            value=value,
            issued_at=now,
            on_complete=on_complete,
        )
        self._pending[request_id] = pending
        self.stats.issued += 1
        self._transmit(pending)
        return request_id

    def _allocate_request_id(self) -> int:
        # Skip ids still pending; with 64K ids and bounded timeouts this
        # terminates after a handful of probes in any sane deployment.
        for _ in range(self._request_ids.modulus):
            candidate = self._request_ids.next()
            if candidate not in self._pending:
                return candidate
        raise ActuationError("all 65536 request ids are pending")

    def _transmit(self, pending: PendingRequest) -> None:
        # Each attempt carries a fresh timestamp: honest stamping, and it
        # makes retransmissions distinct frames so relay nodes (which
        # deduplicate forwarded control frames) pass retries through.
        pending.request = replace(
            pending.request,
            timestamp_us=int(self._network.sim.now * 1_000_000),
        )
        frame = self._codec.encode(pending.request)
        self._network.send(
            REPLICATOR_INBOX,
            TransmitOrder(
                frame=frame,
                target_sensor_id=pending.request.target.sensor_id,
                request_id=pending.request.request_id,
            ),
        )
        pending.timer = self._network.sim.schedule(
            self._backoff.delay(pending.attempts, self._backoff_rng),
            self._on_timeout,
            pending.request.request_id,
        )

    def _on_timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        if pending.attempts >= self._max_attempts:
            del self._pending[request_id]
            self.stats.failed += 1
            if pending.on_complete is not None:
                pending.on_complete(pending, False)
            return
        pending.attempts += 1
        self.stats.retransmissions += 1
        self._transmit(pending)

    # ------------------------------------------------------------------
    def on_ack(self, notice: AckNotice) -> None:
        """Handle an acknowledgement extracted by the Filtering Service."""
        pending = self._pending.pop(notice.request_id, None)
        if pending is None:
            self.stats.duplicate_acks += 1
            return
        if pending.timer is not None:
            pending.timer.cancel()
        self.stats.acknowledged += 1
        latency = max(0.0, notice.observed_at - pending.issued_at)
        self.ack_latency.record(latency)
        self._ack_seconds.observe(latency)
        if (
            self._resource_manager is not None
            and pending.parameter is not None
        ):
            self._resource_manager.confirm_applied(
                pending.request.target, pending.parameter, pending.value
            )
        if pending.on_complete is not None:
            pending.on_complete(pending, True)
