"""The Garnet facade: one object wiring every Figure 1 service together.

``Garnet`` builds the whole deployment — simulation kernel, wireless
medium, receiver/transmitter arrays, and all middleware services — and
offers the high-level operations a deployment operator performs: defining
sensor types, deploying sensors, admitting consumers, and running the
simulation.

It also owns the *control path* sequencing of Section 4.2: a consumer's
stream update request goes Resource Manager (approval + mediation) →
Actuation Service (timestamp, checksum, request id, retries) → Message
Replicator (location lookup, transmitter selection) → Transmitters →
sensor; the facade glues the approval to the issuance.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

from repro.core.actuation import ActuationService
from repro.core.config import GarnetConfig
from repro.core.connect import (
    USE_CONFIG,
    ConnectOptions,
    open_live_session,
)
from repro.core.constraints import ConstraintSet
from repro.core.consumer import Consumer
from repro.core.control import StreamUpdateCommand
from repro.core.coordinator import SuperCoordinator
from repro.core.dispatching import DispatchingService
from repro.core.filtering import FilteringService
from repro.core.location import (
    LOCATION_STREAM_KIND,
    LocationPublisher,
    LocationService,
)
from repro.core.message import MessageCodec
from repro.core.orphanage import Orphanage
from repro.core.pubsub import Broker
from repro.core.replicator import MessageReplicator
from repro.core.resource import (
    Decision,
    ResourceManager,
    SensorTypeSpec,
    StreamConfig,
)
from repro.core.security import AuthService, Permission, Token
from repro.core.session import GarnetSession
from repro.core.streamid import (
    MAX_SENSOR_ID,
    StreamId,
    VIRTUAL_SENSOR_FLOOR,
)
from repro.core.streams import StreamRegistry
from repro.errors import ConfigurationError, RegistrationError
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import KernelProbe, Tracer
from repro.qos import (
    QOS_CONSUMER,
    AdmissionController,
    BreakerPolicy,
    DegradationController,
    DeliveryManager,
    DropByStreamPriority,
    DropOldest,
)
from repro.radio.array import ReceiverArray, TransmitterArray
from repro.sensors.node import SensorNode, SensorStreamSpec
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.geometry import Point
from repro.simnet.kernel import Simulator
from repro.simnet.mobility import MobilityModel, Stationary
from repro.simnet.wireless import WirelessMedium
from repro.util.backoff import BackoffPolicy
from repro.util.ids import IdPool

#: Back-compat alias: the sentinel now lives in :mod:`repro.core.connect`
#: (it distinguishes "use the config default" from an explicit
#: ``heartbeat_period=None``).
_USE_CONFIG = USE_CONFIG

#: Which command applies each configuration parameter on the wire.
_PARAMETER_COMMANDS: dict[str, StreamUpdateCommand] = {
    "rate": StreamUpdateCommand.SET_RATE,
    "mode": StreamUpdateCommand.SET_MODE,
    "precision": StreamUpdateCommand.SET_PRECISION,
}


class ControlPath:
    """Glues Resource Manager approval to Actuation Service issuance."""

    def __init__(
        self,
        resource_manager: ResourceManager,
        actuation: ActuationService,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._resource_manager = resource_manager
        self._actuation = actuation
        self._observers: list[Any] = []
        registry = metrics if metrics is not None else MetricsRegistry()
        self._observer_errors = registry.counter(
            "control.observer_errors",
            help="actuation observers that raised during notification",
        )

    def add_actuation_observer(self, observer) -> None:
        """Observe actuation completions.

        ``observer(stream_id, parameter, value, success)`` fires when a
        request issued through this control path is acknowledged or gives
        up; experiments use it to timestamp when a configuration change
        actually landed on the sensor.
        """
        if not callable(observer):
            raise ConfigurationError(
                f"actuation observer must be callable, got {observer!r}"
            )
        self._observers.append(observer)

    @property
    def observer_errors(self) -> int:
        """How many observer callbacks raised (and were isolated)."""
        return int(self._observer_errors.value)

    def _notify(self, stream_id: StreamId, pending, success: bool) -> None:
        # An observer is experiment instrumentation riding on the
        # actuation ack path; one raising must not abort delivery to the
        # observers after it (or the ack processing that invoked us).
        for observer in list(self._observers):
            try:
                observer(stream_id, pending.parameter, pending.value, success)
            except Exception:
                self._observer_errors.inc()

    def request_update(
        self,
        consumer: str,
        stream_id: StreamId,
        command: StreamUpdateCommand,
        value: Any = None,
        priority: int = 0,
        token: Token | None = None,
    ) -> Decision:
        """The full Section 4.2 control sequence for one request."""
        decision = self._resource_manager.request_update(
            consumer=consumer,
            stream_id=stream_id,
            command=command,
            value=value,
            priority=priority,
            token=token,
        )
        if decision.approved and decision.issue_actuation:
            self._issue(stream_id, decision)
        return decision

    def release_demands(
        self, consumer: str, stream_id: StreamId | None = None
    ) -> int:
        """Withdraw demands and actuate any resulting re-mediations."""
        changes = self._resource_manager.release_demands(consumer, stream_id)
        for sid, parameter, value in changes:
            self._issue_parameter(sid, parameter, value)
        return len(changes)

    def _issue(self, stream_id: StreamId, decision: Decision) -> None:
        if decision.parameter is None:
            # PING and other parameterless commands go out verbatim.
            self._actuation.issue(
                stream_id,
                StreamUpdateCommand.PING,
                None,
                parameter=None,
                on_complete=lambda pending, ok: self._notify(
                    stream_id, pending, ok
                ),
            )
            return
        self._issue_parameter(
            stream_id, decision.parameter, decision.effective_value
        )

    def _issue_parameter(
        self, stream_id: StreamId, parameter: str, value: Any
    ) -> None:
        if parameter == "enabled":
            command = (
                StreamUpdateCommand.ENABLE_STREAM
                if value
                else StreamUpdateCommand.DISABLE_STREAM
            )
        else:
            command = _PARAMETER_COMMANDS[parameter]
        self._actuation.issue(
            stream_id,
            command,
            value,
            parameter=parameter,
            on_complete=lambda pending, ok: self._notify(
                stream_id, pending, ok
            ),
        )


@dataclass(slots=True)
class ConsumerRuntime:
    """Middleware access injected into each attached consumer.

    .. deprecated::
        Superseded by :class:`~repro.core.session.GarnetSession`, which
        is a superset of this surface and adds lease heartbeating and
        crash recovery; ``Garnet.add_consumer`` now injects a session.
        Kept for code that constructs a runtime by hand.
    """

    network: FixedNetwork
    broker: Broker
    control: ControlPath
    _publisher_pool: IdPool
    metrics: MetricsRegistry | None = None

    def allocate_publisher_id(self) -> int:
        return self._publisher_pool.allocate()


@dataclass(slots=True)
class QosRuntime:
    """The deployment's installed overload-protection components.

    Each slot is None when the corresponding ``qos_*`` config switch is
    off; ``Garnet.qos`` always exists so callers (fault injectors,
    sessions, operator tooling) can probe without hasattr dances.
    """

    admission: AdmissionController | None = None
    delivery: DeliveryManager | None = None
    degradation: DegradationController | None = None

    @property
    def enabled(self) -> bool:
        return (
            self.admission is not None
            or self.delivery is not None
            or self.degradation is not None
        )


class Garnet:
    """A complete simulated Garnet deployment.

    Examples
    --------
    >>> from repro.core import Garnet
    >>> deployment = Garnet(seed=42)
    >>> deployment.sim.now
    0.0
    """

    def __init__(
        self, config: GarnetConfig | None = None, seed: int = 0
    ) -> None:
        self.config = (config or GarnetConfig()).validate()
        cfg = self.config
        self.sim = Simulator(seed=seed)

        # Observability substrate: one registry for every service's
        # counters, timers keyed off virtual time, spans over the bus.
        self._metrics = MetricsRegistry(clock=lambda: self.sim.now)
        self.tracer = Tracer(self._metrics) if cfg.trace_spans else None
        if cfg.kernel_probe:
            self.sim.set_probe(KernelProbe(self._metrics))

        self.codec = MessageCodec(checksum=cfg.checksum)
        retry_policy = None
        if cfg.fixednet_retry_base is not None:
            retry_policy = BackoffPolicy(
                base=cfg.fixednet_retry_base,
                multiplier=cfg.fixednet_retry_multiplier,
                max_delay=cfg.fixednet_retry_max,
                jitter=cfg.fixednet_retry_jitter,
                max_attempts=cfg.fixednet_retry_attempts,
            )
        self.network = FixedNetwork(
            self.sim,
            message_latency=cfg.message_latency,
            rpc_latency=cfg.rpc_latency,
            metrics=self._metrics,
            tracer=self.tracer,
            retry_policy=retry_policy,
        )
        self.medium = WirelessMedium(
            self.sim,
            bitrate=cfg.bitrate,
            loss_model=cfg.loss_model,
            per_hop_latency=cfg.per_hop_latency,
            spatial_index=cfg.wireless_spatial_index,
            vectorized=cfg.wireless_vectorized,
            metrics=self._metrics,
        )
        self.registry = StreamRegistry()
        self.auth = AuthService(cfg.deployment_secret)

        # Data path services. On clustered deployments filtered arrivals
        # leave through the cluster ingress (which shard-routes them to
        # their owning broker) instead of straight into the dispatcher.
        filtering_kwargs: dict[str, Any] = {}
        if cfg.cluster_enabled:
            from repro.cluster.runtime import INGRESS_INBOX

            filtering_kwargs["dispatch_inbox"] = INGRESS_INBOX
        self.filtering = FilteringService(
            self.network,
            self.registry,
            window=cfg.filtering_window,
            reorder_timeout=cfg.reorder_timeout,
            max_held=cfg.reorder_max_held,
            metrics=self._metrics,
            **filtering_kwargs,
        )
        self.dispatcher = DispatchingService(
            self.network, self.registry, metrics=self._metrics
        )
        self.orphanage = Orphanage(
            self.network,
            backlog_per_stream=cfg.orphanage_backlog,
            metrics=self._metrics,
        )
        self.broker = Broker(
            self.network,
            self.registry,
            self.dispatcher,
            self.auth,
            metrics=self._metrics,
            lease_ttl=cfg.broker_lease_ttl,
        )
        self.location = LocationService(
            self.network,
            decay_tau=cfg.location_decay_tau,
            max_observations=cfg.location_max_observations,
            min_confidence_radius=cfg.location_min_confidence_radius,
        )

        # Radio edge
        self.receivers = ReceiverArray(
            cfg.area,
            cfg.receiver_rows,
            cfg.receiver_cols,
            medium=self.medium,
            network=self.network,
            codec=self.codec,
            overlap=cfg.receiver_overlap,
            location_service=self.location,
        )
        self.transmitters = TransmitterArray(
            cfg.area,
            cfg.transmitter_rows,
            cfg.transmitter_cols,
            medium=self.medium,
            overlap=cfg.transmitter_overlap,
        )

        # Control path services
        self.resource_manager = ResourceManager(
            self.network,
            auth=self.auth if cfg.require_auth else None,
            metrics=self._metrics,
        )
        self.actuation = ActuationService(
            self.network,
            resource_manager=self.resource_manager,
            ack_timeout=cfg.ack_timeout,
            max_attempts=cfg.ack_max_attempts,
            metrics=self._metrics,
            backoff=BackoffPolicy(
                base=cfg.ack_timeout,
                multiplier=cfg.ack_backoff_multiplier,
                max_delay=cfg.ack_backoff_max,
                jitter=cfg.ack_backoff_jitter,
                max_attempts=cfg.ack_max_attempts,
            ),
        )
        self.replicator = MessageReplicator(
            self.network,
            self.transmitters,
            margin=cfg.replicator_margin,
            metrics=self._metrics,
        )
        self.coordinator = SuperCoordinator(
            self.network,
            resource_manager=self.resource_manager,
            predictive=cfg.predictive_coordinator,
            confidence_threshold=cfg.prediction_confidence,
            lead_fraction=cfg.prediction_lead_fraction,
            metrics=self._metrics,
        )
        self.control = ControlPath(
            self.resource_manager, self.actuation, metrics=self._metrics
        )

        # Overload protection (repro.qos): each component installs only
        # when its config switch is on, so default deployments keep the
        # historical event sequence exactly.
        self.qos = QosRuntime()
        if cfg.qos_breaker_failures is not None:
            self.network.set_breaker_policy(
                BreakerPolicy(
                    failure_threshold=cfg.qos_breaker_failures,
                    reset_timeout=cfg.qos_breaker_reset,
                )
            )
        if cfg.qos_ingress_rate is not None:
            shedding = (
                DropByStreamPriority(self._stream_priority)
                if cfg.qos_shedding == "priority"
                else DropOldest()
            )
            self.qos.admission = AdmissionController(
                self.sim,
                self.dispatcher.process_admitted,
                rate=cfg.qos_ingress_rate,
                burst=cfg.qos_ingress_burst,
                queue_capacity=cfg.qos_ingress_queue,
                policy=shedding,
                metrics=self._metrics,
            )
            self.dispatcher.set_admission(self.qos.admission)
        if cfg.qos_consumer_queue is not None:
            self.qos.delivery = DeliveryManager(
                self.network,
                queue_capacity=cfg.qos_consumer_queue,
                quarantine_after=cfg.qos_quarantine_after,
                parked_capacity=cfg.qos_parked_capacity,
                metrics=self._metrics,
            )
            self.dispatcher.set_delivery_manager(self.qos.delivery)
        if cfg.qos_degradation:
            self.qos.degradation = DegradationController(
                self.sim,
                self.network,
                self.control,
                self.resource_manager,
                token=self.auth.issue(
                    QOS_CONSUMER, Permission.trusted_consumer()
                ),
                metrics=self._metrics,
                period=cfg.qos_degradation_period,
                degrade_after=cfg.qos_degrade_after,
                restore_after=cfg.qos_restore_after,
                degrade_factor=cfg.qos_degrade_factor,
                min_rate=cfg.qos_min_rate,
                priority=cfg.qos_degrade_priority,
                ingress_queue_capacity=(
                    cfg.qos_ingress_queue
                    if cfg.qos_ingress_rate is not None
                    else None
                ),
            )

        # Clustered federation (repro.cluster): extra broker nodes,
        # inter-broker links, the shard map and the handoff coordinator
        # install only when switched on; otherwise a placeholder keeps
        # ``deployment.cluster`` probe-able and the data path untouched.
        if cfg.cluster_enabled:
            from repro.cluster.runtime import ClusterRuntime

            self.cluster: Any = ClusterRuntime(self)
        else:
            from repro.cluster.runtime import DisabledCluster

            self.cluster = DisabledCluster()

        # Durable stream store (repro.store): a write-through tap at
        # every broker node's dispatcher, feeding the pluggable segment
        # log. Off by default — no appends, no ``store.*`` summary keys,
        # data path byte-identical (the golden digests pin this).
        self.store: Any = None
        self.store_tap: Any = None
        if cfg.store_enabled:
            from repro.store import StoreTap, build_store

            self.store = build_store(
                cfg, metrics=self._metrics, clock=lambda: self.sim.now
            )
            self.store_tap = StoreTap(
                self.store, self.codec, window=cfg.store_dedupe_window
            )
            if self.cluster.enabled:
                # Each shard owner persists its own streams: the tap
                # (and its dedupe windows) is shared, so handoff replay
                # at a new owner never double-appends.
                for node in self.cluster.nodes.values():
                    node.dispatcher.set_store(self.store_tap)
            else:
                self.dispatcher.set_store(self.store_tap)

        # Hierarchical fan-out (repro.fanout): relay trees aggregate
        # consumer interest so the dispatcher emits one delivery per
        # subtree, with inter-broker legs batched per link. Off by
        # default — the module is never imported, no relay inboxes
        # exist, and the per-consumer path is byte-identical (the
        # golden digests pin this).
        self.fanout: Any = None
        if cfg.fanout_enabled:
            from repro.fanout import FanoutRuntime

            self.fanout = FanoutRuntime(self)

        self._sensor_ids = IdPool(0, VIRTUAL_SENSOR_FLOOR - 1)
        self._publisher_ids = IdPool(VIRTUAL_SENSOR_FLOOR, MAX_SENSOR_ID)
        self._sensors: dict[int, SensorNode] = {}
        self._consumers: dict[str, Consumer] = {}
        self._sessions: dict[str, GarnetSession] = {}

        # Location data is itself a (restricted) data stream (Section 2):
        # estimates are republished periodically under a derived StreamId
        # whose required_permission keeps it away from consumers without
        # LOCATION rights.
        self.location_publisher: LocationPublisher | None = None
        if cfg.publish_location_stream:
            location_stream = StreamId(self._publisher_ids.allocate(), 0)
            self.registry.advertise(
                location_stream,
                kind=LOCATION_STREAM_KIND,
                publisher="garnet.location",
                attributes={"required_permission": Permission.LOCATION},
            )
            self.location_publisher = LocationPublisher(
                self.network,
                self.location,
                location_stream,
                period=cfg.location_stream_period,
            )

    def _stream_priority(self, arrival) -> int:
        """Shedding priority for one arrival (``DropByStreamPriority``).

        A stream advertised with a ``qos_priority`` attribute uses it;
        otherwise physical sensor streams outrank derived/publisher
        streams, so a flood published on the fixed network is shed
        before field telemetry is touched.
        """
        stream_id = arrival.message.stream_id
        descriptor = self.registry.find(stream_id)
        if descriptor is not None:
            priority = descriptor.attributes.get("qos_priority")
            if priority is not None:
                return int(priority)
        return 0 if stream_id.is_derived else 1

    # ------------------------------------------------------------------
    # Identity & types
    # ------------------------------------------------------------------
    def allocate_publisher_id(self) -> int:
        """Allocate a publisher id in the derived (virtual-sensor) range.

        Sessions do this implicitly on first publish; the public method
        exists for infrastructure that publishes without a session (e.g.
        the ``FloodBurst`` fault's synthetic load generator).
        """
        return self._publisher_ids.allocate()

    def release_publisher_id(self, value: int) -> None:
        """Return a virtual-sensor publisher id to the pool.

        Used by the live transport when it reaps a vanished client's
        session: simulated sessions keep their id for the deployment's
        lifetime (reuse would let a late frame impersonate a new
        publisher within one deterministic run), but a reaped live
        client is gone for good and millions of sessions would otherwise
        exhaust the virtual range.
        """
        self._publisher_ids.release(value)

    def reserve_publisher_id(self, value: int) -> int:
        """Claim a specific virtual-sensor publisher id.

        The live broker reserves the ids named in a persisted session
        table at startup so that clients connecting before those
        sessions resume cannot be handed an id whose streams (and
        subscriber dedupe state) already exist. Raises
        :class:`~repro.util.ids.IdExhaustedError` when the id is
        already taken.
        """
        return self._publisher_ids.reserve(value)

    def issue_token(
        self, principal: str, permissions: Permission | None = None
    ) -> Token:
        """Issue an access token (standard consumer rights by default)."""
        return self.auth.issue(
            principal,
            permissions
            if permissions is not None
            else Permission.standard_consumer(),
        )

    def define_sensor_type(
        self,
        name: str,
        constraints: dict[str, str] | ConstraintSet | None = None,
        default_config: StreamConfig | None = None,
        actuatable: bool = True,
    ) -> SensorTypeSpec:
        """Register a sensor model with its constraint set."""
        if not isinstance(constraints, ConstraintSet):
            constraints = ConstraintSet(constraints)
        spec = SensorTypeSpec(
            name=name,
            constraints=constraints,
            default_config=default_config or StreamConfig(),
            actuatable=actuatable,
        )
        self.resource_manager.register_sensor_type(spec)
        return spec

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_sensor(
        self,
        type_name: str,
        streams: list[SensorStreamSpec],
        mobility: MobilityModel | Point | None = None,
        sensor_id: int | None = None,
        tx_range: float | None = None,
        receive_capable: bool = True,
        relay: bool = False,
        battery=None,
        energy_model=None,
        cipher=None,
        attach_timestamps: bool = False,
        start: bool = True,
    ) -> SensorNode:
        """Deploy one sensor into the field and register it everywhere.

        ``mobility`` may be a :class:`MobilityModel`, a fixed
        :class:`Point`, or None (stationary at the area centre). The
        default transmit range is 1.2x the receiver zone radius so nodes
        inside the field are heard by overlapping receivers.
        """
        if sensor_id is None:
            sensor_id = self._sensor_ids.allocate()
        else:
            self._sensor_ids.reserve(sensor_id)
        if mobility is None:
            mobility = Stationary(self.config.area.center)
        elif isinstance(mobility, Point):
            mobility = Stationary(mobility)
        if tx_range is None:
            tx_range = self.receivers.reception_range * 1.2
        if tx_range <= 0:
            raise ConfigurationError("tx_range must be positive")
        node = SensorNode(
            sensor_id=sensor_id,
            sim=self.sim,
            medium=self.medium,
            mobility=mobility,
            streams=streams,
            message_codec=self.codec,
            tx_range=tx_range,
            receive_capable=receive_capable,
            relay=relay,
            battery=battery,
            energy_model=energy_model,
            cipher=cipher,
            attach_timestamps=attach_timestamps,
        )
        self._sensors[sensor_id] = node
        self.resource_manager.register_sensor(
            sensor_id,
            type_name,
            stream_indexes=tuple(
                spec.stream_index for spec in streams
            ),
        )
        for spec in streams:
            if spec.kind:
                self.registry.advertise(
                    StreamId(sensor_id, spec.stream_index),
                    kind=spec.kind,
                    encrypted=cipher is not None,
                )
        if start:
            node.start()
        return node

    def sensor(self, sensor_id: int) -> SensorNode:
        try:
            return self._sensors[sensor_id]
        except KeyError as exc:
            raise RegistrationError(f"unknown sensor {sensor_id}") from exc

    def sensors(self) -> list[SensorNode]:
        return [self._sensors[sid] for sid in sorted(self._sensors)]

    def connect(
        self,
        name: str | None = None,
        token: Token | None = None,
        permissions: Permission | None = None,
        *legacy_positional: Any,
        heartbeat_period: float | None | object = USE_CONFIG,
        broker: str | None = None,
        url: str | None = None,
        checksum: bool = True,
        timeout: float = 10.0,
        reconnect: Any | None = None,
        keepalive: float | None = None,
        options: ConnectOptions | None = None,
    ) -> GarnetSession:
        """Open a :class:`GarnetSession`: the consumer-side front door.

        One call replaces the register-inbox / register-consumer /
        subscribe / discover choreography against individual services:

        >>> session = deployment.connect("dashboard")       # doctest: +SKIP
        >>> session.subscribe(kind="temperature.*")         # doctest: +SKIP

        All flavours normalise into one validated
        :class:`~repro.core.connect.ConnectOptions` (pass a prebuilt
        ``options=`` to share a shape across call sites); bad
        combinations raise :class:`ConfigurationError`, a missing
        identity raises :class:`RegistrationError`.

        ``name`` defaults to the token's principal when a token is
        supplied. ``heartbeat_period`` (default: the config's
        ``session_heartbeat_period``) enables lease heartbeating and
        automatic crash recovery; pass ``None`` explicitly to disable
        heartbeats for this session regardless of the config.

        On clustered deployments ``broker`` picks which broker node the
        session is homed on (default: the primary). A session may home
        anywhere; publishes and subscriptions are shard-routed to the
        owning brokers transparently.

        ``url`` switches transports entirely: ``connect(url="garnet://
        host:port", name=...)`` opens a socket-backed
        :class:`~repro.transport.client.LiveSession` against a running
        ``garnet-broker`` instead of a session on *this* deployment —
        the same ``subscribe``/``publish``/``on_data`` surface over
        real TCP/UDP. Token, permissions, heartbeat and broker homing
        are simulated-transport concerns and do not combine with it;
        ``checksum`` and ``timeout`` apply only to it.
        """
        if legacy_positional:
            # heartbeat_period / broker / url used to be positional
            # parameters four through six; keep old call sites working
            # one release longer.
            if len(legacy_positional) > 3:
                raise TypeError(
                    "connect() takes at most 6 positional arguments "
                    f"({3 + len(legacy_positional)} given)"
                )
            warnings.warn(
                "passing heartbeat_period/broker/url positionally to "
                "Garnet.connect() is deprecated; use keywords",
                DeprecationWarning,
                stacklevel=2,
            )
            legacy_names = ("heartbeat_period", "broker", "url")
            legacy_defaults = (USE_CONFIG, None, None)
            given = {"heartbeat_period": heartbeat_period,
                     "broker": broker, "url": url}
            for label, default, value in zip(
                legacy_names, legacy_defaults, legacy_positional
            ):
                if given[label] is not default:
                    raise TypeError(
                        f"connect() got multiple values for argument "
                        f"{label!r}"
                    )
                given[label] = value
            heartbeat_period = given["heartbeat_period"]
            broker = given["broker"]
            url = given["url"]
        if options is not None:
            explicit = (
                name is not None
                or token is not None
                or permissions is not None
                or heartbeat_period is not USE_CONFIG
                or broker is not None
                or url is not None
                or checksum is not True
                or timeout != 10.0
                or reconnect is not None
                or keepalive is not None
            )
            if explicit:
                raise ConfigurationError(
                    "connect(options=...) already carries every argument; "
                    "do not combine it with individual keywords"
                )
        else:
            options = ConnectOptions(
                name=name,
                token=token,
                permissions=permissions,
                heartbeat_period=heartbeat_period,
                broker=broker,
                url=url,
                checksum=checksum,
                timeout=timeout,
                reconnect=reconnect,
                keepalive=keepalive,
            )
        options.validate()
        if options.live:
            return open_live_session(options)
        node = None
        if options.broker is not None:
            if not self.cluster.enabled:
                raise ConfigurationError(
                    "connect(broker=...) requires cluster_enabled=True"
                )
            node = self.cluster.node(options.broker)
        elif self.cluster.enabled:
            node = self.cluster.primary
        name = options.name
        token = options.token
        if name is None:
            name = token.principal
        if name in self._sessions:
            raise RegistrationError(f"session {name!r} already connected")
        if token is None:
            token = self.issue_token(name, options.permissions)
        heartbeat_period = options.heartbeat_period
        if heartbeat_period is USE_CONFIG:
            heartbeat_period = self.config.session_heartbeat_period
        session = GarnetSession(
            self, name, token, heartbeat_period=heartbeat_period, node=node
        )
        self._sessions[name] = session
        return session

    def _release_session(self, session: GarnetSession) -> None:
        # Called by GarnetSession.close(); keeps the name reusable.
        if self._sessions.get(session.name) is session:
            del self._sessions[session.name]

    def session(self, name: str) -> GarnetSession:
        try:
            return self._sessions[name]
        except KeyError as exc:
            raise RegistrationError(f"no session named {name!r}") from exc

    def sessions(self) -> list[GarnetSession]:
        return [self._sessions[name] for name in sorted(self._sessions)]

    def add_consumer(
        self,
        consumer: Consumer,
        token: Token | None = None,
        permissions: Permission | None = None,
    ) -> Consumer:
        """Admit a consumer process: session, registration, ``on_start``.

        The consumer is attached over a :class:`GarnetSession` (its
        ``runtime``), so it inherits lease heartbeating and broker-crash
        recovery when those are enabled in the config.
        """
        if consumer.name in self._consumers:
            raise RegistrationError(
                f"consumer {consumer.name!r} already added"
            )
        session = self.connect(consumer.name, token, permissions)
        session.on_data(consumer._deliver)
        consumer._attach(session, session.token)
        self._consumers[consumer.name] = consumer
        consumer.on_start()
        return consumer

    def claim_orphans(
        self, consumer: Consumer, kind: str | None = None
    ) -> int:
        """Replay and release orphaned backlogs matching the consumer.

        For every stream the Orphanage currently holds whose advertised
        kind matches ``kind`` (all orphan streams when None), the
        retained backlog is replayed to ``consumer``'s inbox and the
        orphan state discarded — the catch-up move a late subscriber
        performs after its subscription is installed (Section 4.2's
        "potentially stored" data put to use). Returns the number of
        messages replayed.
        """
        if self._consumers.get(consumer.name) is not consumer:
            raise RegistrationError(
                f"consumer {consumer.name!r} is not part of this deployment"
            )
        replayed = 0
        claimed: set[StreamId] = set()
        for orphanage in self.orphanages():
            for stream_id in list(orphanage.orphan_streams()):
                if stream_id in claimed:
                    orphanage.discard(stream_id)
                    continue
                if kind is not None:
                    descriptor = self.registry.find(stream_id)
                    stream_kind = descriptor.kind if descriptor else ""
                    if not (
                        stream_kind == kind
                        or (
                            kind.endswith("*")
                            and stream_kind.startswith(kind[:-1])
                        )
                    ):
                        continue
                claimed.add(stream_id)
                replayed += orphanage.replay(stream_id, consumer.endpoint)
                orphanage.discard(stream_id)
        self.invalidate_routes()
        return replayed

    def orphanages(self) -> list[Orphanage]:
        """Every Orphanage in the deployment (one per broker node)."""
        if self.cluster.enabled:
            return self.cluster.orphanages()
        return [self.orphanage]

    def twins(self) -> Any:
        """A :class:`~repro.twins.TwinView` over the stream store.

        Materialises last-known per-sensor state (one
        :class:`~repro.twins.SensorTwin` per sensor, one property per
        stream) from the durable log; requires ``store_enabled=True``.
        """
        from repro.twins import TwinView

        return TwinView(self)

    def invalidate_routes(self) -> None:
        """Flush memoised dispatch routing on every broker node."""
        if self.cluster.enabled:
            for node in self.cluster.nodes.values():
                node.dispatcher.invalidate_routes()
        else:
            self.dispatcher.invalidate_routes()

    def remove_consumer(self, consumer: Consumer) -> None:
        """Retire a consumer: demands released, subscriptions dropped."""
        if self._consumers.get(consumer.name) is not consumer:
            raise RegistrationError(
                f"consumer {consumer.name!r} is not part of this deployment"
            )
        session = self._sessions.get(consumer.name)
        if session is not None:
            session.close()
        else:
            self.control.release_demands(consumer.name)
            self.dispatcher.remove_endpoint(consumer.endpoint)
            self.network.unregister_inbox(consumer.endpoint)
        del self._consumers[consumer.name]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsRegistry:
        """The deployment-wide metrics registry.

        Every service's legacy ``.stats`` attribute is a write-through
        view over counters living here, so this is the single place to
        snapshot or export a deployment's telemetry.
        """
        return self._metrics

    def metrics_snapshot(self) -> dict:
        """A JSON-serialisable snapshot of every metric, plus the clock."""
        snapshot = self._metrics.snapshot()
        snapshot["time"] = self.sim.now
        return snapshot

    def write_metrics(self, path: str) -> None:
        """Dump :meth:`metrics_snapshot` to ``path`` as JSON."""
        from repro.obs.export import write_json

        write_json(self._metrics, path, extra={"time": self.sim.now})

    # ------------------------------------------------------------------
    # Execution & reporting
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance the deployment by ``duration`` simulated seconds.

        With ``cluster_workers > 0`` the non-primary broker nodes
        execute in forked worker processes for the duration (see
        :func:`repro.cluster.mp.run_multiprocess`); delivery sets match
        the in-process run on the same seed.
        """
        if duration < 0:
            raise ConfigurationError("duration must be non-negative")
        if self.config.cluster_workers > 0:
            from repro.cluster.mp import run_multiprocess

            run_multiprocess(
                self, duration, workers=self.config.cluster_workers
            )
            return
        self.sim.run(until=self.sim.now + duration)

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Drain every pending event (sensors stopped beforehand)."""
        self.sim.run(max_events=max_events)

    def report(self) -> str:
        """A multi-line operations report across every service.

        The human-readable counterpart of :meth:`summary`, suitable for
        logging at the end of a run or printing from an operator shell.
        """
        lines = [f"Garnet deployment report @ t={self.sim.now:.1f}s"]
        lines.append(
            f"  field    : {len(self._sensors)} sensors "
            f"({sum(1 for n in self._sensors.values() if n.alive)} alive), "
            f"{len(self.receivers)} receivers, "
            f"{len(self.transmitters)} transmitters"
        )
        medium = self.medium.stats
        lines.append(
            f"  radio    : {medium.transmissions} transmissions, "
            f"{medium.deliveries} deliveries, {medium.losses} lost, "
            f"{medium.bytes_sent} B sent"
        )
        filtering = self.filtering.stats
        lines.append(
            f"  filtering: {filtering.received} received -> "
            f"{filtering.delivered} delivered "
            f"({filtering.duplicates} duplicates, {filtering.stale} stale, "
            f"{filtering.acks_extracted} acks extracted)"
        )
        dispatch = self.dispatcher.stats
        lines.append(
            f"  dispatch : {dispatch.deliveries} deliveries to "
            f"{len(self._consumers)} consumers "
            f"({self.dispatcher.subscription_count()} subscriptions, "
            f"{dispatch.orphaned} orphaned)"
        )
        actuation = self.actuation.stats
        lines.append(
            f"  actuation: {actuation.issued} issued, "
            f"{actuation.acknowledged} acknowledged, "
            f"{actuation.failed} failed, "
            f"{actuation.retransmissions} retransmissions"
        )
        lines.append(
            f"  location : {self.location.observations_received} "
            f"observations, {self.location.hints_received} hints, "
            f"{len(self.location.known_sensors())} sensors localised"
        )
        coordinator = self.coordinator.stats
        lines.append(
            f"  coord    : {coordinator.reports} reports, "
            f"{coordinator.reactive_actions} reactive / "
            f"{coordinator.predictive_actions} predictive actions, "
            f"{coordinator.policy_changes} policy changes"
        )
        lines.append(
            f"  streams  : {len(self.registry)} known, "
            f"{len(self.orphanage.orphan_streams())} orphaned "
            f"({self.orphanage.total_received} orphan messages, "
            f"{self.orphanage.stats.evicted} evicted)"
        )
        if self.qos.enabled:
            parts = []
            if self.qos.admission is not None:
                admission = self.qos.admission.stats
                parts.append(
                    f"ingress {admission.admitted} admitted / "
                    f"{admission.shed} shed"
                )
            if self.qos.delivery is not None:
                delivery = self.qos.delivery.stats
                parts.append(
                    f"{delivery.quarantines} quarantines "
                    f"({delivery.replayed} replayed)"
                )
            if self.qos.degradation is not None:
                degradation = self.qos.degradation.stats
                parts.append(
                    f"{degradation.degradations} degradations / "
                    f"{degradation.restorations} restorations"
                )
            lines.append("  qos      : " + ", ".join(parts))
        if self.cluster.enabled:
            cluster = self.cluster.stats
            lines.append(
                f"  cluster  : {len(self.cluster.live)}/"
                f"{len(self.cluster.nodes)} brokers up, "
                f"{cluster.forwards} link forwards "
                f"({cluster.dedupe_hits} deduped), "
                f"{cluster.handoffs} handoffs "
                f"({cluster.streams_reassigned} streams, "
                f"{cluster.replayed} replayed)"
            )
        if self.store is not None:
            store = self.store.stats
            lines.append(
                f"  store    : {store.appended} appended "
                f"({store.bytes_appended} B) across "
                f"{len(self.store.streams())} streams / "
                f"{self.store.segment_count()} segments, "
                f"{store.records_evicted} evicted, "
                f"{store.records_replayed} replayed, "
                f"{store.queries} queries"
            )
        if self.fanout is not None:
            fanout = self.fanout.stats
            lines.append(
                f"  fanout   : {self.fanout.session_count()} sessions on "
                f"{self.fanout.relay_count()} relays, "
                f"{fanout.root_batches} root batches -> "
                f"{fanout.leaf_deliveries} member deliveries "
                f"({fanout.link_batches} link batches)"
            )
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        """Cross-service counters for experiment reporting.

        The key set is fixed for single-broker deployments (the golden
        digest depends on it); ``cluster.*`` keys appear only when
        clustering is enabled.
        """
        summary = self._base_summary()
        if self.cluster.enabled:
            cluster = self.cluster.stats
            summary["cluster.ingress_routed"] = float(cluster.ingress_routed)
            summary["cluster.publish_forwards"] = float(
                cluster.publish_forwards
            )
            summary["cluster.forwards"] = float(cluster.forwards)
            summary["cluster.dedupe_hits"] = float(cluster.dedupe_hits)
            summary["cluster.handoffs"] = float(cluster.handoffs)
            summary["cluster.streams_reassigned"] = float(
                cluster.streams_reassigned
            )
            summary["cluster.replayed"] = float(cluster.replayed)
            summary["cluster.reroutes"] = float(cluster.reroutes)
            unknown = self.cluster.unknown_frames.value
            if unknown:
                # Conditional so healthy runs keep the pre-existing key
                # set (the cluster golden digest hashes summary items).
                summary["cluster.link.unknown_frames"] = float(unknown)
        if self.store is not None:
            # ``store.*`` keys appear only when the store is enabled, so
            # the store-less golden digests stay byte-identical.
            store = self.store.stats
            summary["store.appended"] = float(store.appended)
            summary["store.bytes_appended"] = float(store.bytes_appended)
            summary["store.duplicates_skipped"] = float(
                store.duplicates_skipped
            )
            summary["store.segments"] = float(self.store.segment_count())
            summary["store.segments_evicted"] = float(store.segments_evicted)
            summary["store.records_evicted"] = float(store.records_evicted)
            summary["store.replays"] = float(store.replays)
            summary["store.records_replayed"] = float(store.records_replayed)
            summary["store.queries"] = float(store.queries)
            summary["store.truncated_tail"] = float(store.truncated_tail)
        if self.fanout is not None:
            # ``fanout.*`` keys appear only when fan-out is enabled, so
            # the flat-delivery golden digests stay byte-identical.
            fanout = self.fanout.stats
            summary["fanout.sessions"] = float(self.fanout.session_count())
            summary["fanout.relays"] = float(self.fanout.relay_count())
            summary["fanout.root_batches"] = float(fanout.root_batches)
            summary["fanout.relay_forwards"] = float(fanout.relay_forwards)
            summary["fanout.leaf_deliveries"] = float(fanout.leaf_deliveries)
            summary["fanout.quarantine_diverted"] = float(
                fanout.quarantine_diverted
            )
            summary["fanout.link_batches"] = float(fanout.link_batches)
            summary["fanout.link_batched_arrivals"] = float(
                fanout.link_batched_arrivals
            )
        return summary

    def _base_summary(self) -> dict[str, float]:
        return {
            "time": self.sim.now,
            "radio.transmissions": float(self.medium.stats.transmissions),
            "radio.deliveries": float(self.medium.stats.deliveries),
            "radio.losses": float(self.medium.stats.losses),
            "filtering.received": float(self.filtering.stats.received),
            "filtering.delivered": float(self.filtering.stats.delivered),
            "filtering.duplicates": float(self.filtering.stats.duplicates),
            "dispatch.deliveries": float(self.dispatcher.stats.deliveries),
            "dispatch.orphaned": float(self.dispatcher.stats.orphaned),
            "actuation.issued": float(self.actuation.stats.issued),
            "actuation.acknowledged": float(
                self.actuation.stats.acknowledged
            ),
            "actuation.failed": float(self.actuation.stats.failed),
            "orphanage.received": float(self.orphanage.total_received),
            "orphanage.evicted": float(self.orphanage.stats.evicted),
        }
