"""Envelope records exchanged between services over the fixed network.

These are the in-network representations wrapping wire messages with the
reception metadata that later services need (Figure 1's arrows). They are
deliberately plain, immutable dataclasses: services stay decoupled by
sharing only these shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.message import DataMessage
from repro.core.streamid import StreamId


@dataclass(frozen=True, slots=True)
class Reception:
    """One receiver's copy of a sensor transmission → Filtering Service."""

    message: DataMessage
    receiver_id: int
    rssi: float
    received_at: float


@dataclass(frozen=True, slots=True)
class StreamArrival:
    """A deduplicated, ordered message → Dispatching Service → consumers."""

    message: DataMessage
    received_at: float
    """When the first surviving copy reached a receiver (virtual time)."""

    receiver_id: int
    """The receiver whose copy survived filtering (diagnostic only)."""

    delivered_at: float = 0.0
    """Stamped by the Dispatching Service on hand-off to each consumer."""


@dataclass(frozen=True, slots=True)
class LocationObservation:
    """Reception metadata → Location Service (Section 4.2: location
    information "inferred by the Receivers")."""

    sensor_id: int
    receiver_id: int
    rssi: float
    observed_at: float


@dataclass(frozen=True, slots=True)
class LocationHint:
    """An application-supplied location estimate for a sensor (Section 5:
    "we allow consumer processes to provide location hints instead")."""

    sensor_id: int
    x: float
    y: float
    confidence_radius: float
    supplied_by: str
    supplied_at: float


@dataclass(frozen=True, slots=True)
class AckNotice:
    """A sensor's acknowledgement of a stream update request, extracted
    from a data message by the Filtering Service → Actuation Service."""

    request_id: int
    sensor_id: int
    observed_at: float
    status: int = 0


@dataclass(frozen=True, slots=True)
class StateChangeReport:
    """A sophisticated consumer's state-change detail → Super Coordinator
    (Section 4.2)."""

    consumer: str
    state: str
    reported_at: float
    detail: dict[str, Any] | None = None


@dataclass(frozen=True, slots=True)
class TransmitOrder:
    """An encoded control frame → Message Replicator → Transmitters."""

    frame: bytes
    target_sensor_id: int
    request_id: int


@dataclass(frozen=True, slots=True)
class StreamAdvertisement:
    """Broker notification that a stream appeared or changed metadata."""

    stream_id: StreamId
    kind: str
    encrypted: bool
    advertised_at: float
