"""ConnectOptions: the one validated shape behind every ``connect()``.

Three connect flavours grew up side by side — the in-simulation default
(``deployment.connect("app")``), cluster homing (``connect("app",
broker="b2")``) and the live socket transport (``connect(name="app",
url="garnet://host:port")``) — each validating its own corner of the
argument space. This module is the consolidation: every entrypoint
(:meth:`Garnet.connect`, :func:`repro.transport.client.connect`,
:func:`repro.transport.connect`) normalises its arguments into one
:class:`ConnectOptions` and calls :meth:`ConnectOptions.validate`, so a
bad combination fails the same way with the same message no matter which
door it came through.

The split of error types is deliberate and load-bearing for callers:

- :class:`~repro.errors.ConfigurationError` — the *combination* of
  options is contradictory (``url=`` with ``broker=``, live-only knobs
  on a simulated connect, ...).
- :class:`~repro.errors.RegistrationError` — the options are coherent
  but the caller's *identity* is missing (no ``name`` and no ``token``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError, RegistrationError

#: Sentinel for "defer to the deployment config" — distinguishes an
#: explicit ``heartbeat_period=None`` (disable heartbeats) from the
#: argument not being passed at all.
USE_CONFIG: Any = object()

#: Defaults for the live-transport-only knobs; a non-default value on a
#: simulated connect is a combination error, not a silent no-op.
_DEFAULT_CHECKSUM = True
_DEFAULT_TIMEOUT = 10.0


@dataclass(frozen=True, slots=True)
class ConnectOptions:
    """Every argument any ``connect()`` flavour accepts, in one place.

    ``name``/``token``/``permissions`` identify the consumer;
    ``heartbeat_period`` and ``broker`` shape a *simulated* session
    (lease heartbeating, cluster homing); ``url`` switches to the live
    socket transport, whose extra knobs are ``checksum``, ``timeout``,
    ``reconnect`` and ``keepalive``. :meth:`validate` enforces that the
    two halves never mix.

    ``reconnect`` opts a live session into the resilience loop: pass a
    :class:`~repro.util.backoff.BackoffPolicy` to control the re-dial
    schedule, or ``True`` for the default policy. Off (``None``, the
    default) preserves the historical fail-fast behaviour. ``keepalive``
    is the period in seconds of liveness PINGs (``None`` lets the
    session pick one when reconnect is enabled, otherwise off).
    """

    name: str | None = None
    token: Any | None = None
    permissions: Any | None = None
    heartbeat_period: float | None | Any = USE_CONFIG
    broker: str | None = None
    url: str | None = None
    checksum: bool = _DEFAULT_CHECKSUM
    timeout: float = _DEFAULT_TIMEOUT
    reconnect: Any | None = None
    keepalive: float | None = None

    @property
    def live(self) -> bool:
        """True when these options describe a socket-backed session."""
        return self.url is not None

    def validate(self) -> "ConnectOptions":
        """Reject contradictory combinations; returns self.

        Raises :class:`ConfigurationError` for bad combinations and
        :class:`RegistrationError` when no identity was supplied.
        """
        if self.live:
            simulated_only = [
                label
                for label, given in (
                    ("token", self.token is not None),
                    ("permissions", self.permissions is not None),
                    ("broker", self.broker is not None),
                    (
                        "heartbeat_period",
                        self.heartbeat_period is not USE_CONFIG,
                    ),
                )
                if given
            ]
            if simulated_only:
                raise ConfigurationError(
                    "connect(url=...) opens a live-transport session; "
                    f"{'/'.join(simulated_only)} do(es) not apply"
                )
            if self.timeout <= 0:
                raise ConfigurationError(
                    f"connect timeout must be positive, got {self.timeout}"
                )
            if self.keepalive is not None and self.keepalive <= 0:
                raise ConfigurationError(
                    f"connect keepalive must be positive, got "
                    f"{self.keepalive}"
                )
            if self.reconnect is not None and self.reconnect is not True:
                from repro.util.backoff import BackoffPolicy

                if not isinstance(self.reconnect, BackoffPolicy):
                    raise ConfigurationError(
                        "connect reconnect must be None, True or a "
                        f"BackoffPolicy, got {self.reconnect!r}"
                    )
            if self.name is None:
                raise RegistrationError(
                    "connect(url=...) needs an explicit session name"
                )
            return self
        live_only = [
            label
            for label, given in (
                ("checksum", self.checksum is not _DEFAULT_CHECKSUM),
                ("timeout", self.timeout != _DEFAULT_TIMEOUT),
                ("reconnect", self.reconnect is not None),
                ("keepalive", self.keepalive is not None),
            )
            if given
        ]
        if live_only:
            raise ConfigurationError(
                f"{'/'.join(live_only)} only apply to live-transport "
                "sessions (connect(url=...))"
            )
        if self.name is None and self.token is None:
            raise RegistrationError(
                "connect() needs a session name or a token"
            )
        return self


def open_live_session(options: ConnectOptions):
    """Open the :class:`~repro.transport.client.LiveSession` an already-
    validated live :class:`ConnectOptions` describes."""
    from repro.transport.client import LiveSession

    return LiveSession(
        options.url,
        options.name,
        checksum=options.checksum,
        timeout=options.timeout,
        reconnect=options.reconnect,
        keepalive=options.keepalive,
    )


__all__ = ["USE_CONFIG", "ConnectOptions", "open_live_session"]
