"""The Dispatching Service: delivery of filtered streams to consumers.

Section 4.2: filtered data is "forwarded to the Dispatching Service for
delivery to subscribed consumer processes", while data no subscriber has
claimed goes to the Orphanage, "a default consumer process which receives
un-configured data".

Delivery is *address-free* (Section 6, "Delayed delivery and distribution
decisions"): messages carry only their source StreamID; the set of
destinations is computed here, in the fixed network, from the current
subscription table — never encoded by the sensor.

Subscriptions are either exact (one StreamId) or pattern-based
(:class:`SubscriptionPattern`: by sensor, stream index, advertised kind,
derived/physical). Pattern matching is memoised per stream and
invalidated whenever the subscription table or stream metadata changes,
so steady-state dispatch is one dictionary lookup plus fan-out.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.core.envelopes import StreamArrival, StreamAdvertisement
from repro.core.streamid import StreamId
from repro.core.streams import StreamDescriptor, StreamRegistry
from repro.errors import SubscriptionError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork

INBOX = "garnet.dispatching"
ORPHANAGE_INBOX = "garnet.orphanage"
BROKER_INBOX = "garnet.broker.advertisements"


@dataclass(frozen=True, slots=True, kw_only=True)
class SubscriptionPattern:
    """A declarative description of the streams a consumer wants.

    All specified fields must match (conjunction); unspecified fields
    match anything. ``kind`` supports a trailing ``*`` wildcard against
    the stream's advertised kind tag.

    Construction is keyword-only: a bare ``SubscriptionPattern(x)`` is
    ambiguous (is ``x`` a stream, a sensor, a kind?), and the field most
    callers want — ``kind`` — is nowhere near first position.
    """

    stream_id: StreamId | None = None
    sensor_id: int | None = None
    stream_index: int | None = None
    kind: str | None = None
    derived: bool | None = None

    def __post_init__(self) -> None:
        if (
            self.stream_id is None
            and self.sensor_id is None
            and self.stream_index is None
            and self.kind is None
            and self.derived is None
        ):
            # A fully-wild pattern is legal (the Orphanage effectively has
            # one) but must be asked for explicitly via match_all().
            raise SubscriptionError(
                "empty pattern; use SubscriptionPattern.match_all() for a "
                "catch-all subscription"
            )

    def matches(self, descriptor: StreamDescriptor) -> bool:
        stream_id = descriptor.stream_id
        if self.stream_id is not None and stream_id != self.stream_id:
            return False
        if self.sensor_id is not None and stream_id.sensor_id != self.sensor_id:
            return False
        if (
            self.stream_index is not None
            and stream_id.stream_index != self.stream_index
        ):
            return False
        if self.derived is not None and stream_id.is_derived != self.derived:
            return False
        if self.kind is not None:
            if self.kind.endswith("*"):
                if not descriptor.kind.startswith(self.kind[:-1]):
                    return False
            elif descriptor.kind != self.kind:
                return False
        return True


# A catch-all pattern must bypass __post_init__'s emptiness guard (the
# guard exists to catch *accidentally* empty patterns); build the single
# shared instance directly and expose it as a classmethod.
def _build_match_all() -> SubscriptionPattern:
    pattern = object.__new__(SubscriptionPattern)
    object.__setattr__(pattern, "stream_id", None)
    object.__setattr__(pattern, "sensor_id", None)
    object.__setattr__(pattern, "stream_index", None)
    object.__setattr__(pattern, "kind", None)
    object.__setattr__(pattern, "derived", None)
    return pattern


_MATCH_ALL = _build_match_all()


def _match_all(cls: type[SubscriptionPattern]) -> SubscriptionPattern:
    """A catch-all pattern (matches every stream)."""
    return _MATCH_ALL


SubscriptionPattern.match_all = classmethod(_match_all)  # type: ignore[attr-defined]


@dataclass(slots=True)
class Subscription:
    """One consumer's registered interest."""

    subscription_id: int
    endpoint: str
    pattern: SubscriptionPattern
    delivered: int = 0


class DispatchStats(RegistryBackedStats):
    PREFIX = "dispatch"

    arrivals: int = 0
    deliveries: int = 0
    orphaned: int = 0
    advertisements: int = 0


class DispatchingService:
    """Routes stream arrivals to subscribers; unclaimed data to the Orphanage."""

    def __init__(
        self,
        network: FixedNetwork,
        registry: StreamRegistry,
        orphanage_inbox: str = ORPHANAGE_INBOX,
        metrics: MetricsRegistry | None = None,
        inbox: str = INBOX,
        broker_inbox: str = BROKER_INBOX,
    ) -> None:
        self._network = network
        self._registry = registry
        self._orphanage_inbox = orphanage_inbox
        self.inbox = inbox
        self._broker_inbox = broker_inbox
        self._subscriptions: dict[int, Subscription] = {}
        self._exact: dict[StreamId, set[int]] = {}
        # Patterned subscriptions are bucketed by their most selective
        # pinned field so _compute_route only examines plausible
        # candidates: patterns pinning a sensor_id live in _by_sensor,
        # remaining patterns pinning an exact (non-wildcard) kind live
        # in _by_kind, everything else is scanned unconditionally from
        # _wild. Bucketing is a pure pruning step — a pattern outside
        # the probed buckets provably cannot match — and matches() is
        # still consulted per candidate.
        self._by_sensor: dict[int, dict[int, Subscription]] = {}
        self._by_kind: dict[str, dict[int, Subscription]] = {}
        self._wild: dict[int, Subscription] = {}
        # Per-endpoint subscription ids so remove_endpoint (every lease
        # reap under churn) needn't scan the whole table.
        self._by_endpoint: dict[str, set[int]] = {}
        self._next_subscription_id = 1
        self._route_cache: dict[StreamId, tuple[int, ...]] = {}
        self._advertised: set[StreamId] = set()
        self._route_guard: Callable[[str, StreamDescriptor], bool] | None = None
        # Optional overload-protection hooks (repro.qos); typed loosely
        # so the data path does not import the qos package.
        self._admission: Any | None = None
        self._delivery: Any | None = None
        # Cluster routing hook (repro.cluster); None on single-broker
        # deployments, keeping the historical data path untouched.
        self._cluster: Any | None = None
        # Stream-store write-through tap (repro.store); None unless
        # store_enabled, keeping the data path byte-identical otherwise.
        self._store: Any | None = None
        # Hierarchical fan-out hook (repro.fanout); None unless
        # fanout_enabled. Tree-root legs are intercepted in _fan_out and
        # delivered as one batch per subtree instead of per consumer.
        self._fanout: Any | None = None
        self.stats = DispatchStats(metrics)
        network.register_inbox(inbox, self.on_arrival)

    def set_admission(self, admission: Any | None) -> None:
        """Install admission control in front of arrival processing.

        ``admission.offer(arrival)`` decides whether each arrival is
        processed now, queued for a later drain (which re-enters via
        :meth:`process_admitted`), or shed.
        """
        self._admission = admission

    def set_delivery_manager(self, delivery: Any | None) -> None:
        """Route per-subscription deliveries through a delivery manager.

        ``delivery.deliver(endpoint, arrival)`` replaces the direct
        ``network.send`` per fan-out leg; ``delivery.release(endpoint)``
        is called whenever an endpoint's subscriptions are dropped.
        """
        self._delivery = delivery

    def set_cluster(self, cluster: Any | None) -> None:
        """Install this node's cluster router (repro.cluster).

        ``cluster.on_fresh(arrival)`` decides whether a fresh arrival is
        processed here (this broker owns the stream) or forwarded to the
        owning broker; ``cluster.remote_targets(stream_id)`` yields the
        inter-broker link inboxes with aggregated remote interest;
        ``cluster.filter_local(...)`` suppresses duplicate local
        deliveries for streams that also travel over links or handoff
        replay; ``cluster.interest_added/removed`` propagate subscription
        interest to peer brokers.
        """
        self._cluster = cluster

    def set_store(self, tap: Any | None) -> None:
        """Install a stream-store write-through tap (repro.store).

        ``tap.record(arrival)`` appends each arrival this node processes
        as the stream's owner — fresh traffic past the admission and
        cluster gates, plus handoff replay — to the durable log. Link
        fan-out (:meth:`process_remote_delivery`) never appends: the
        owning node already did.
        """
        self._store = tap

    def set_fanout(self, fanout: Any | None) -> None:
        """Install hierarchical fan-out trees (repro.fanout).

        ``fanout.is_root(endpoint)`` marks subscriptions held by a tree
        root; ``fanout.deliver_root(endpoint, arrival)`` hands the leg
        to the tree (one delivery per subtree, fanned to members at the
        leaves); ``fanout.invalidate(stream_id)`` mirrors route-cache
        flushes into the per-relay route caches.
        """
        self._fanout = fanout

    def set_route_guard(
        self, guard: Callable[[str, StreamDescriptor], bool] | None
    ) -> None:
        """Install a data-path permission check.

        ``guard(endpoint, descriptor)`` must return True for a delivery to
        proceed; the broker uses this to keep restricted streams (e.g.
        location data, Section 2) away from consumers without the right
        permission, enforced on every route rather than only at
        subscription time.
        """
        self._route_guard = guard
        self._route_cache.clear()

    # ------------------------------------------------------------------
    # Subscription management (driven by the broker)
    # ------------------------------------------------------------------
    def add_subscription(
        self, endpoint: str, pattern: SubscriptionPattern
    ) -> int:
        """Register interest; returns the subscription id."""
        if not self._network.has_inbox(endpoint):
            raise SubscriptionError(
                f"endpoint {endpoint!r} has no inbox on the fixed network"
            )
        subscription_id = self._next_subscription_id
        self._next_subscription_id += 1
        subscription = Subscription(subscription_id, endpoint, pattern)
        self._subscriptions[subscription_id] = subscription
        self._by_endpoint.setdefault(endpoint, set()).add(subscription_id)
        if pattern.stream_id is not None:
            self._exact.setdefault(pattern.stream_id, set()).add(
                subscription_id
            )
            self._route_cache.pop(pattern.stream_id, None)
        else:
            self._pattern_bucket(pattern)[subscription_id] = subscription
            self._route_cache.clear()
        if self._cluster is not None:
            self._cluster.interest_added(pattern)
        return subscription_id

    def _pattern_bucket(self, pattern: SubscriptionPattern) -> dict[int, Subscription]:
        """The bucket a (non-exact) pattern lives in; creates it on demand."""
        if pattern.sensor_id is not None:
            return self._by_sensor.setdefault(pattern.sensor_id, {})
        kind = pattern.kind
        if kind is not None and not kind.endswith("*"):
            return self._by_kind.setdefault(kind, {})
        return self._wild

    def remove_subscription(self, subscription_id: int) -> None:
        subscription = self._subscriptions.pop(subscription_id, None)
        if subscription is None:
            raise SubscriptionError(
                f"unknown subscription {subscription_id}"
            )
        endpoints = self._by_endpoint.get(subscription.endpoint)
        if endpoints is not None:
            endpoints.discard(subscription_id)
            if not endpoints:
                del self._by_endpoint[subscription.endpoint]
        pattern = subscription.pattern
        if pattern.stream_id is not None:
            targets = self._exact.get(pattern.stream_id)
            if targets is not None:
                targets.discard(subscription_id)
                if not targets:
                    del self._exact[pattern.stream_id]
            self._route_cache.pop(pattern.stream_id, None)
        else:
            if pattern.sensor_id is not None:
                bucket = self._by_sensor.get(pattern.sensor_id)
                if bucket is not None:
                    bucket.pop(subscription_id, None)
                    if not bucket:
                        del self._by_sensor[pattern.sensor_id]
            elif pattern.kind is not None and not pattern.kind.endswith("*"):
                bucket = self._by_kind.get(pattern.kind)
                if bucket is not None:
                    bucket.pop(subscription_id, None)
                    if not bucket:
                        del self._by_kind[pattern.kind]
            else:
                self._wild.pop(subscription_id, None)
            self._route_cache.clear()
        if self._cluster is not None:
            self._cluster.interest_removed(pattern)

    def remove_endpoint(self, endpoint: str) -> int:
        """Drop every subscription held by ``endpoint``; returns the count."""
        # Ascending id order matches the old full-table scan (ids are
        # allocated monotonically, so table order was ascending too).
        doomed = sorted(self._by_endpoint.get(endpoint, ()))
        for sid in doomed:
            self.remove_subscription(sid)
        if self._delivery is not None:
            # A quarantined consumer's parked backlog must not outlive
            # its subscriptions (lease reaping funnels through here).
            self._delivery.release(endpoint)
        return len(doomed)

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def invalidate_routes(self, stream_id: StreamId | None = None) -> None:
        """Flush memoised routing (called when stream metadata changes)."""
        if stream_id is None:
            self._route_cache.clear()
        else:
            self._route_cache.pop(stream_id, None)
        if self._cluster is not None:
            self._cluster.invalidate(stream_id)
        if self._fanout is not None:
            self._fanout.invalidate(stream_id)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_arrival(self, arrival: StreamArrival) -> None:
        self.stats.arrivals += 1
        if self._admission is not None:
            self._admission.offer(arrival)
            return
        self.process_admitted(arrival)

    def process_admitted(self, arrival: StreamArrival) -> None:
        """Route one arrival that has passed (or bypassed) admission."""
        cluster = self._cluster
        if cluster is not None and not cluster.on_fresh(arrival):
            # Another broker owns this stream; the router has buffered
            # the arrival for handoff replay and forwarded it to the
            # owner's dispatch inbox. Stream stats are observed there.
            return
        stream_id = arrival.message.stream_id
        if arrival.receiver_id < 0:
            # Published directly on the fixed network (derived streams);
            # the Filtering Service never saw it, so record stats here.
            self._registry.detect(stream_id).stats.observe(
                arrival.received_at,
                len(arrival.message.payload),
                arrival.message.sequence,
            )
        if self._store is not None:
            self._store.record(arrival)
        self._advertise_if_new(stream_id)
        if cluster is None:
            route = self._route_cache.get(stream_id)
            if route is None:
                route = self._compute_route(stream_id)
                self._route_cache[stream_id] = route
            if not route:
                self.stats.orphaned += 1
                self._network.send(self._orphanage_inbox, arrival)
                return
            self._fan_out(route, arrival)
            return
        self._route_and_deliver_clustered(arrival, stream_id)

    def process_replayed(self, arrival: StreamArrival) -> None:
        """Owner-path processing for a handoff-replayed arrival.

        Replay re-enters below admission and below the fresh-arrival
        cluster gate: the stream was already observed and buffered when
        it first entered the cluster, so only routing and fan-out run.
        Local deliveries are recorded in the dedupe window so a consumer
        that already received a copy (over a link, before the handoff)
        does not see it twice.
        """
        stream_id = arrival.message.stream_id
        if self._store is not None:
            # The old owner may have appended this before crashing; the
            # tap's sequence window keeps the log duplicate-free.
            self._store.record(arrival)
        self._advertise_if_new(stream_id)
        self._route_and_deliver_clustered(
            arrival, stream_id, record_local=True
        )

    def process_remote_delivery(self, arrival: StreamArrival) -> int:
        """Local-only fan-out for an arrival received over a link.

        The owning broker already routed this message; here it may only
        reach this node's own subscribers — never the Orphanage, never
        another link (that would defeat once-per-link aggregation).
        Returns the number of local deliveries.
        """
        stream_id = arrival.message.stream_id
        self._advertise_if_new(stream_id)
        route = self._route_cache.get(stream_id)
        if route is None:
            route = self._compute_route(stream_id)
            self._route_cache[stream_id] = route
        if not route:
            return 0
        return self._fan_out(route, arrival)

    def _route_and_deliver_clustered(
        self,
        arrival: StreamArrival,
        stream_id: StreamId,
        *,
        record_local: bool = False,
    ) -> None:
        """Owner-side routing: local fan-out plus once-per-link legs."""
        cluster = self._cluster
        route = self._route_cache.get(stream_id)
        if route is None:
            route = self._compute_route(stream_id)
            self._route_cache[stream_id] = route
        remote = cluster.remote_targets(stream_id)
        if not route and not remote:
            self.stats.orphaned += 1
            self._network.send(self._orphanage_inbox, arrival)
            return
        if route and cluster.filter_local(
            stream_id, arrival.message.sequence, record=record_local
        ):
            self._fan_out(route, arrival)
        for link_inbox in remote:
            cluster.send_remote(link_inbox, arrival)

    def _fan_out(
        self, route: tuple[int, ...], arrival: StreamArrival
    ) -> int:
        delivered_at = self._network.sim.now
        delivered = 0
        fanout = self._fanout
        seen_roots: set[str] | None = None
        for subscription_id in route:
            subscription = self._subscriptions.get(subscription_id)
            if subscription is None:
                continue
            if fanout is not None and fanout.is_root(subscription.endpoint):
                # One batch per tree per message: a root holding several
                # matching patterns still receives a single delivery
                # (the leaves fan to members by their own patterns).
                endpoint = subscription.endpoint
                if seen_roots is None:
                    seen_roots = {endpoint}
                elif endpoint in seen_roots:
                    continue
                else:
                    seen_roots.add(endpoint)
                subscription.delivered += 1
                self.stats.deliveries += 1
                delivered += fanout.deliver_root(
                    endpoint,
                    StreamArrival(
                        message=arrival.message,
                        received_at=arrival.received_at,
                        receiver_id=arrival.receiver_id,
                        delivered_at=delivered_at,
                    ),
                )
                continue
            subscription.delivered += 1
            self.stats.deliveries += 1
            outbound = StreamArrival(
                message=arrival.message,
                received_at=arrival.received_at,
                receiver_id=arrival.receiver_id,
                delivered_at=delivered_at,
            )
            if self._delivery is not None:
                self._delivery.deliver(subscription.endpoint, outbound)
            else:
                self._network.send(subscription.endpoint, outbound)
            delivered += 1
        return delivered

    def _compute_route(self, stream_id: StreamId) -> tuple[int, ...]:
        descriptor = self._registry.detect(stream_id)
        targets = set(self._exact.get(stream_id, ()))
        sensor_bucket = self._by_sensor.get(stream_id.sensor_id)
        kind_bucket = self._by_kind.get(descriptor.kind)
        for bucket in (sensor_bucket, kind_bucket, self._wild):
            if not bucket:
                continue
            for subscription_id, subscription in bucket.items():
                if subscription.pattern.matches(descriptor):
                    targets.add(subscription_id)
        if self._route_guard is not None:
            targets = {
                sid
                for sid in targets
                if self._route_guard(
                    self._subscriptions[sid].endpoint, descriptor
                )
            }
        return tuple(sorted(targets))

    def _advertise_if_new(self, stream_id: StreamId) -> None:
        if stream_id in self._advertised:
            return
        self._advertised.add(stream_id)
        descriptor = self._registry.detect(stream_id)
        self.stats.advertisements += 1
        if self._network.has_inbox(self._broker_inbox):
            self._network.send(
                self._broker_inbox,
                StreamAdvertisement(
                    stream_id=stream_id,
                    kind=descriptor.kind,
                    encrypted=descriptor.encrypted,
                    advertised_at=self._network.sim.now,
                ),
            )
