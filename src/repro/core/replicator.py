"""The Message Replicator: location-targeted control broadcast.

Section 4.2: "The Message Replicator determines the expected location
area of the target sensor. Based on the location area, the appropriate
set of Transmitters broadcast the request, whereupon it may be received
by the sensor node."

The replicator queries the Location Service (the "lookup" arrow of
Figure 1), pads the returned confidence area by a safety margin (the
sensor keeps moving between estimate and broadcast), and hands the frame
to every transmitter whose footprint intersects the padded area. With no
usable estimate it floods all transmitters — correctness over economy.
"""

from __future__ import annotations

from repro.core.envelopes import TransmitOrder
from repro.core.location import SERVICE_NAME as LOCATION_SERVICE
from repro.core.location import LocationEstimate
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.radio.array import TransmitterArray
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.geometry import Circle

INBOX = "garnet.replicator"


class ReplicatorStats(RegistryBackedStats):
    PREFIX = "replicator"

    orders: int = 0
    targeted: int = 0
    flooded: int = 0
    transmitters_used: int = 0

    @property
    def mean_transmitters_per_order(self) -> float:
        if self.orders == 0:
            return 0.0
        return self.transmitters_used / self.orders


class MessageReplicator:
    """Turns transmit orders into minimal transmitter broadcasts."""

    def __init__(
        self,
        network: FixedNetwork,
        transmitters: TransmitterArray,
        margin: float = 25.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self._network = network
        self._transmitters = transmitters
        self._margin = margin
        self.stats = ReplicatorStats(metrics)
        network.register_inbox(INBOX, self.on_order)

    def on_order(self, order: TransmitOrder) -> None:
        self.stats.orders += 1
        estimate = self._lookup(order.target_sensor_id)
        if estimate is None:
            self.stats.flooded += 1
            used = self._transmitters.broadcast_all(order.frame)
        else:
            self.stats.targeted += 1
            area = Circle(
                estimate.position,
                estimate.confidence_radius + self._margin,
            )
            used = self._transmitters.broadcast_to_area(order.frame, area)
        self.stats.transmitters_used += used

    def _lookup(self, sensor_id: int) -> LocationEstimate | None:
        # Figure 1 draws this as a synchronous lookup; the estimate and
        # broadcast must not be separated by queueing delay or the target
        # area goes stale.
        return self._network.call_sync(
            LOCATION_SERVICE, "estimate", sensor_id
        )
