"""The Message Replicator: location-targeted control broadcast.

Section 4.2: "The Message Replicator determines the expected location
area of the target sensor. Based on the location area, the appropriate
set of Transmitters broadcast the request, whereupon it may be received
by the sensor node."

The replicator queries the Location Service (the "lookup" arrow of
Figure 1), pads the returned confidence area by a safety margin (the
sensor keeps moving between estimate and broadcast), and hands the frame
to every transmitter whose footprint intersects the padded area. With no
usable estimate it floods all transmitters — correctness over economy.

Transmitters can fail (receiver-array outages and hardware faults are
first-class events in :mod:`repro.faults`): when every transmitter the
replicator would have chosen is offline, it *fails over* to the nearest
in-service antenna instead of losing the control message, counting the
recovery as ``resilience.replicator_failovers``. Only when the whole
array is dark does the order go unbroadcast (``replicator.blackouts``).
"""

from __future__ import annotations

from repro.core.envelopes import TransmitOrder
from repro.core.location import SERVICE_NAME as LOCATION_SERVICE
from repro.core.location import LocationEstimate
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.radio.array import TransmitterArray
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.geometry import Circle

INBOX = "garnet.replicator"


class ReplicatorStats(RegistryBackedStats):
    PREFIX = "replicator"

    orders: int = 0
    targeted: int = 0
    flooded: int = 0
    transmitters_used: int = 0
    failovers: int = 0
    """Orders whose chosen transmitters were all offline and that were
    re-routed to the nearest in-service antenna instead."""
    blackouts: int = 0
    """Orders that could not be broadcast at all (every antenna offline)."""

    @property
    def mean_transmitters_per_order(self) -> float:
        if self.orders == 0:
            return 0.0
        return self.transmitters_used / self.orders


class MessageReplicator:
    """Turns transmit orders into minimal transmitter broadcasts."""

    def __init__(
        self,
        network: FixedNetwork,
        transmitters: TransmitterArray,
        margin: float = 25.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self._network = network
        self._transmitters = transmitters
        self._margin = margin
        self.stats = ReplicatorStats(metrics)
        self._failover_counter = self.stats.registry.counter(
            "resilience.replicator_failovers",
            help="control broadcasts re-routed around offline transmitters",
        )
        network.register_inbox(INBOX, self.on_order)

    def on_order(self, order: TransmitOrder) -> None:
        self.stats.orders += 1
        estimate = self._lookup(order.target_sensor_id)
        if estimate is None:
            self.stats.flooded += 1
            chosen = list(self._transmitters.transmitters)
            fallback_point = None
        else:
            self.stats.targeted += 1
            area = Circle(
                estimate.position,
                estimate.confidence_radius + self._margin,
            )
            chosen = self._transmitters.select_covering(area)
            if not chosen:
                # Conservative fallback, as before failover existed: an
                # empty covering set floods rather than dropping control.
                chosen = list(self._transmitters.transmitters)
            fallback_point = estimate.position
        online = [t for t in chosen if t.online]
        if not online and chosen:
            # First choice(s) down: fail over to the nearest antenna that
            # still works rather than losing the control message.
            alternate = (
                self._transmitters.nearest_online(fallback_point)
                if fallback_point is not None
                else None
            )
            if alternate is None:
                remaining = self._transmitters.online_transmitters()
                alternate = remaining[0] if remaining else None
            if alternate is None:
                self.stats.blackouts += 1
                return
            self.stats.failovers += 1
            self._failover_counter.inc()
            online = [alternate]
        for transmitter in online:
            transmitter.broadcast(order.frame)
        self.stats.transmitters_used += len(online)

    def _lookup(self, sensor_id: int) -> LocationEstimate | None:
        # Figure 1 draws this as a synchronous lookup; the estimate and
        # broadcast must not be separated by queueing delay or the target
        # area goes stale.
        return self._network.call_sync(
            LOCATION_SERVICE, "estimate", sensor_id
        )
