"""The consumer-process framework, including multi-level consumers.

Consumers are the applications of Section 4.2: mutually unaware of each
other, they discover and subscribe to streams through the broker, may
attempt to influence sensors through the Resource Manager, may supply
location hints, and may report state changes to the Super Coordinator.

**Multi-level consumption** (Sections 4.2 and 6): a consumer "may
generate further derived data streams by performing additional processing
on received data", so consumers form "an essentially arbitrary graph of
consumer processes and data streams over the Garnet middleware". A
consumer that publishes is allocated a *virtual sensor id* (top of the
24-bit space) and its derived messages re-enter the normal dispatching
path — downstream consumers cannot tell them from sensor data.

Subclass :class:`Consumer` and override :meth:`on_start` /
:meth:`on_data`; the :class:`~repro.core.middleware.Garnet` facade wires
the runtime in when the consumer is added to a deployment.
"""

from __future__ import annotations

from typing import Any

from repro.core.control import StreamUpdateCommand
from repro.core.dispatching import INBOX as DISPATCH_INBOX
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import (
    LocationHint,
    StateChangeReport,
    StreamArrival,
)
from repro.core.location import HINT_INBOX
from repro.core.message import DataMessage
from repro.core.resource import Decision
from repro.core.security import Token
from repro.core.streamid import StreamId
from repro.core.streams import StreamDescriptor
from repro.errors import GarnetError, RegistrationError
from repro.obs.stats import RegistryBackedStats
from repro.util.ids import WrappingCounter

COORDINATOR_INBOX = "garnet.coordinator"


class ConsumerStats(RegistryBackedStats):
    received: int = 0
    published: int = 0
    state_reports: int = 0
    hints_supplied: int = 0
    update_requests: int = 0


class Consumer:
    """Base class for Garnet consumer processes.

    The runtime (fixed-network access, broker session, virtual publisher
    identity) is injected by ``Garnet.add_consumer``; until then the
    consumer is inert and every middleware operation raises.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise RegistrationError("consumer name must be non-empty")
        self.name = name
        self.stats = ConsumerStats(prefix=f"consumer.{name}")
        self._runtime: Any = None
        self._token: Token | None = None
        self._publisher_id: int | None = None
        self._publish_sequences: dict[int, WrappingCounter] = {}
        self._subscription_ids: list[int] = []

    # ------------------------------------------------------------------
    # Wiring (called by the middleware facade)
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        return f"consumer.{self.name}"

    @property
    def attached(self) -> bool:
        return self._runtime is not None

    def _attach(self, runtime: Any, token: Token) -> None:
        if self._runtime is not None:
            raise RegistrationError(
                f"consumer {self.name!r} is already attached"
            )
        self._runtime = runtime
        self._token = token
        metrics = getattr(runtime, "metrics", None)
        if metrics is not None:
            # Fold this consumer's pre-attachment counters into the
            # deployment's shared registry.
            self.stats.bind(metrics)

    def _require_runtime(self) -> Any:
        if self._runtime is None:
            raise GarnetError(
                f"consumer {self.name!r} is not attached to a deployment; "
                "add it with Garnet.add_consumer() first"
            )
        return self._runtime

    def _deliver(self, arrival: StreamArrival) -> None:
        self.stats.received += 1
        self.on_data(arrival)

    # ------------------------------------------------------------------
    # Behaviour hooks (override these)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once, after attachment; subscribe and discover here."""

    def on_data(self, arrival: StreamArrival) -> None:
        """Called for every delivered message of a subscribed stream."""

    # ------------------------------------------------------------------
    # Middleware operations available to subclasses
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._require_runtime().network.sim.now

    def subscribe(
        self,
        pattern: SubscriptionPattern | None = None,
        *,
        stream_id: StreamId | None = None,
        sensor_id: int | None = None,
        stream_index: int | None = None,
        kind: str | None = None,
        derived: bool | None = None,
    ) -> int:
        """Subscribe by explicit pattern or by pattern fields.

        When the consumer is attached through a
        :class:`~repro.core.session.GarnetSession` (the normal case),
        the subscription is recorded in the session's re-subscription
        ledger and survives broker crash/restart.
        """
        runtime = self._require_runtime()
        if pattern is None:
            pattern = SubscriptionPattern(
                stream_id=stream_id,
                sensor_id=sensor_id,
                stream_index=stream_index,
                kind=kind,
                derived=derived,
            )
        session_subscribe = getattr(runtime, "subscribe", None)
        if session_subscribe is not None:
            subscription_id = session_subscribe(pattern)
        else:
            # Legacy ConsumerRuntime: talk to the broker directly (no
            # crash-recovery ledger).
            subscription_id = runtime.broker.subscribe(
                self._token, self.endpoint, pattern
            )
        self._subscription_ids.append(subscription_id)
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> None:
        runtime = self._require_runtime()
        session_unsubscribe = getattr(runtime, "unsubscribe", None)
        if session_unsubscribe is not None:
            session_unsubscribe(subscription_id)
        else:
            runtime.broker.unsubscribe(self._token, subscription_id)
        self._subscription_ids.remove(subscription_id)

    def discover(
        self,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
    ) -> list[StreamDescriptor]:
        runtime = self._require_runtime()
        return runtime.broker.discover(
            self._token, kind=kind, sensor_id=sensor_id, derived=derived
        )

    def request_update(
        self,
        stream_id: StreamId,
        command: StreamUpdateCommand,
        value: Any = None,
        priority: int = 0,
    ) -> Decision:
        """Ask the middleware to reconfigure a sensor stream.

        Returns the Resource Manager's decision; when approved and a real
        change results, the actuation path (Actuation Service → Message
        Replicator → Transmitters) is engaged automatically.
        """
        runtime = self._require_runtime()
        self.stats.update_requests += 1
        return runtime.control.request_update(
            consumer=self.name,
            token=self._token,
            stream_id=stream_id,
            command=command,
            value=value,
            priority=priority,
        )

    def release_demands(self, stream_id: StreamId | None = None) -> None:
        """Withdraw standing demands (call when interest ends)."""
        runtime = self._require_runtime()
        runtime.control.release_demands(self.name, stream_id)

    def supply_hint(
        self, sensor_id: int, x: float, y: float, confidence_radius: float
    ) -> None:
        """Give the Location Service an application-level hint (Section 5)."""
        runtime = self._require_runtime()
        self.stats.hints_supplied += 1
        runtime.network.send(
            HINT_INBOX,
            LocationHint(
                sensor_id=sensor_id,
                x=x,
                y=y,
                confidence_radius=confidence_radius,
                supplied_by=self.name,
                supplied_at=self.now,
            ),
        )

    def report_state(self, state: str, detail: dict | None = None) -> None:
        """Forward a state change to the Super Coordinator (Section 4.2)."""
        runtime = self._require_runtime()
        self.stats.state_reports += 1
        runtime.network.send(
            COORDINATOR_INBOX,
            StateChangeReport(
                consumer=self.name,
                state=state,
                reported_at=self.now,
                detail=detail,
            ),
        )

    # ------------------------------------------------------------------
    # Derived-stream publication (multi-level consumers)
    # ------------------------------------------------------------------
    def publish(
        self,
        stream_index: int,
        payload: bytes,
        kind: str = "",
        fused: bool = False,
        encrypted: bool = False,
        extensions: tuple[tuple[int, bytes], ...] = (),
    ) -> StreamId:
        """Publish one message on this consumer's derived stream.

        The first publication on a stream index advertises it through the
        broker with ``kind``. Returns the derived stream's id.
        """
        runtime = self._require_runtime()
        if self._publisher_id is None:
            self._publisher_id = runtime.allocate_publisher_id()
        stream_id = StreamId(self._publisher_id, stream_index)
        counter = self._publish_sequences.get(stream_index)
        if counter is None:
            counter = WrappingCounter(16)
            self._publish_sequences[stream_index] = counter
            if kind:
                runtime.broker.advertise(
                    self._token, stream_id, kind=kind, encrypted=encrypted
                )
        message = DataMessage(
            stream_id=stream_id,
            sequence=counter.next(),
            payload=payload,
            fused=fused,
            encrypted=encrypted,
            extensions=extensions,
        )
        now = self.now
        runtime.network.send(
            DISPATCH_INBOX,
            StreamArrival(
                message=message, received_at=now, receiver_id=-1
            ),
        )
        self.stats.published += 1
        return stream_id

    @property
    def publisher_id(self) -> int | None:
        """This consumer's virtual sensor id (None until first publish)."""
        return self._publisher_id
