"""The Super Coordinator: global consumer view and predictive control.

Section 4.2: "Suitably sophisticated consumer processes may forward
state-change details to the Super Coordinator, which eventually amasses a
global view of these consumers. In response to (or in anticipation of)
global consumer states, the Super Coordinator may invoke policy changes
in the strategy used by the Resource Manager."

Section 6 sharpens the claim reproduced by experiment E6: from its
"nearly correct" global view the coordinator can "predictively anticipate
changes and invoke the services of the resource manager, reducing the
effect of latencies arising from message-handling".

Two operating modes are provided:

- **reactive** — a registered action fires when a consumer *reports*
  entering a state; the actuation then pays the full round trip
  (report → action → Resource Manager → Actuation → radio → ack);
- **predictive** — an online Markov model over each consumer's state
  transitions (transition counts + mean dwell times) forecasts the next
  state on every report; when the forecast is confident enough, the
  action for the *predicted* state fires ahead of the actual transition,
  hiding the actuation latency. Mispredictions fire wrong actions — the
  experiment measures both the latency won and the spurious actuations
  paid, which is precisely the trade the paper proposes policies for.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.conflicts import MediationPolicy
from repro.core.envelopes import StateChangeReport
from repro.core.resource import ResourceManager
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.kernel import EventHandle

INBOX = "garnet.coordinator"

Action = Callable[[str], None]
"""A state action; receives the consumer name it fired for."""


@dataclass(frozen=True, slots=True)
class Prediction:
    """The model's forecast after one state entry."""

    consumer: str
    current_state: str
    next_state: str
    probability: float
    expected_dwell: float


class MarkovStateModel:
    """Online first-order Markov model of one population of state machines.

    Tracks, per consumer, transition counts between observed states and
    the mean dwell time spent in each state before leaving it.
    """

    def __init__(self) -> None:
        self._transitions: dict[
            tuple[str, str], dict[str, int]
        ] = defaultdict(lambda: defaultdict(int))
        self._dwell_total: dict[tuple[str, str], float] = defaultdict(float)
        self._dwell_count: dict[tuple[str, str], int] = defaultdict(int)

    def record(
        self, consumer: str, from_state: str, to_state: str, dwell: float
    ) -> None:
        key = (consumer, from_state)
        self._transitions[key][to_state] += 1
        self._dwell_total[key] += max(0.0, dwell)
        self._dwell_count[key] += 1

    def predict(self, consumer: str, state: str) -> Prediction | None:
        """Most likely next state, or None before any observation."""
        key = (consumer, state)
        outcomes = self._transitions.get(key)
        if not outcomes:
            return None
        total = sum(outcomes.values())
        next_state, count = max(
            outcomes.items(), key=lambda item: (item[1], item[0])
        )
        dwell_count = self._dwell_count[key]
        expected_dwell = (
            self._dwell_total[key] / dwell_count if dwell_count else 0.0
        )
        return Prediction(
            consumer=consumer,
            current_state=state,
            next_state=next_state,
            probability=count / total,
            expected_dwell=expected_dwell,
        )

    def observed_states(self, consumer: str) -> set[str]:
        states: set[str] = set()
        for (c, from_state), outcomes in self._transitions.items():
            if c == consumer:
                states.add(from_state)
                states.update(outcomes)
        return states


@dataclass(slots=True)
class _ConsumerView:
    state: str
    entered_at: float
    reports: int = 1
    detail: dict | None = None


class CoordinatorStats(RegistryBackedStats):
    PREFIX = "coordinator"

    reports: int = 0
    reactive_actions: int = 0
    predictive_actions: int = 0
    correct_predictions: int = 0
    wrong_predictions: int = 0
    policy_changes: int = 0
    global_rule_firings: int = 0


@dataclass(slots=True)
class _GlobalRule:
    """An edge-triggered rule over the whole consumer population.

    Section 4.2: "In response to (or in anticipation of) global consumer
    states, the Super Coordinator may invoke policy changes". A rule's
    predicate sees the current global view (consumer -> state); its
    action fires on the False→True edge, then not again until the
    predicate has gone False (plus any cooldown).
    """

    name: str
    predicate: Callable[[dict[str, str]], bool]
    action: Callable[[], None]
    cooldown: float
    anticipatory: bool = False
    active: bool = False
    last_fired_at: float = float("-inf")
    firings: int = 0
    anticipated_firings: int = 0


class SuperCoordinator:
    """Amasses the global consumer view; drives anticipatory policy.

    Parameters
    ----------
    network:
        Fixed network (listens on :data:`INBOX`).
    resource_manager:
        Optional; enables :meth:`set_resource_strategy` policy pushes.
    predictive:
        Enable the anticipatory mode.
    confidence_threshold:
        Minimum forecast probability before a predictive action fires.
    lead_fraction:
        When to fire, as a fraction of the expected dwell time in the
        current state (0.5 = halfway through the expected stay).
    """

    def __init__(
        self,
        network: FixedNetwork,
        resource_manager: ResourceManager | None = None,
        predictive: bool = False,
        confidence_threshold: float = 0.6,
        lead_fraction: float = 0.5,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in (0, 1]")
        if not 0.0 <= lead_fraction <= 1.0:
            raise ValueError("lead_fraction must be in [0, 1]")
        self._network = network
        self._resource_manager = resource_manager
        self.predictive = predictive
        self._confidence = confidence_threshold
        self._lead_fraction = lead_fraction
        self.model = MarkovStateModel()
        self._views: dict[str, _ConsumerView] = {}
        self._actions: dict[str, list[Action]] = defaultdict(list)
        self._global_rules: list[_GlobalRule] = []
        self._pending_predictions: dict[str, tuple[str, EventHandle]] = {}
        self.stats = CoordinatorStats(metrics)
        network.register_inbox(INBOX, self.on_report)

    # ------------------------------------------------------------------
    # Policy surface
    # ------------------------------------------------------------------
    def register_state_action(self, state: str, action: Action) -> None:
        """Run ``action(consumer)`` whenever a consumer enters ``state``
        (reactively) or is predicted to (predictive mode)."""
        self._actions[state].append(action)

    def register_global_rule(
        self,
        name: str,
        predicate: Callable[[dict[str, str]], bool],
        action: Callable[[], None],
        cooldown: float = 0.0,
        anticipatory: bool = False,
    ) -> None:
        """Fire ``action`` when the *global* consumer view first satisfies
        ``predicate`` (edge-triggered; re-arms when the predicate clears,
        rate-limited by ``cooldown`` seconds).

        With ``anticipatory=True`` (and the coordinator in predictive
        mode), the rule is additionally evaluated against the
        *anticipated* view — each consumer's state replaced by its
        confidently-predicted next state — so the action can fire before
        the global condition is actually reported. This is Section 4.2's
        "in response to (or **in anticipation of**) global consumer
        states" verbatim.
        """
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self._global_rules.append(
            _GlobalRule(
                name=name,
                predicate=predicate,
                action=action,
                cooldown=cooldown,
                anticipatory=anticipatory,
            )
        )

    def set_resource_strategy(
        self, policy: MediationPolicy, parameter: str | None = None
    ) -> None:
        """Push a mediation-policy change into the Resource Manager
        (Figure 1's "Resource Strategy" arrow)."""
        if self._resource_manager is None:
            raise ValueError("no resource manager wired to the coordinator")
        self._resource_manager.set_policy(policy, parameter)
        self.stats.policy_changes += 1

    # ------------------------------------------------------------------
    # Global view
    # ------------------------------------------------------------------
    def on_report(self, report: StateChangeReport) -> None:
        self.stats.reports += 1
        previous = self._views.get(report.consumer)
        if previous is not None and previous.state == report.state:
            previous.reports += 1
            previous.detail = report.detail
            return
        if previous is not None:
            dwell = report.reported_at - previous.entered_at
            self.model.record(
                report.consumer, previous.state, report.state, dwell
            )
            self._resolve_prediction(report.consumer, report.state)
        self._views[report.consumer] = _ConsumerView(
            state=report.state,
            entered_at=report.reported_at,
            detail=report.detail,
        )
        self._fire_reactive(report.consumer, report.state)
        self._evaluate_global_rules()
        if self.predictive:
            self._arm_prediction(report.consumer, report.state)

    def _evaluate_global_rules(self) -> None:
        view = self.global_view()
        now = self._network.sim.now
        anticipated = (
            self.anticipated_view()
            if self.predictive
            and any(rule.anticipatory for rule in self._global_rules)
            else None
        )
        for rule in self._global_rules:
            satisfied = bool(rule.predicate(view))
            anticipatively = (
                not satisfied
                and rule.anticipatory
                and anticipated is not None
                and bool(rule.predicate(anticipated))
            )
            if (
                (satisfied or anticipatively)
                and not rule.active
                and now - rule.last_fired_at >= rule.cooldown
            ):
                rule.active = True
                rule.last_fired_at = now
                rule.firings += 1
                if anticipatively:
                    rule.anticipated_firings += 1
                self.stats.global_rule_firings += 1
                rule.action()
            elif not satisfied and not anticipatively:
                rule.active = False

    def global_rule_stats(self) -> dict[str, tuple[int, int]]:
        """Per rule: ``(total firings, of which anticipated)``."""
        return {
            rule.name: (rule.firings, rule.anticipated_firings)
            for rule in self._global_rules
        }

    def anticipated_view(self) -> dict[str, str]:
        """The global view with each consumer advanced to its
        confidently-predicted next state (unpredictable consumers keep
        their current state)."""
        anticipated: dict[str, str] = {}
        for consumer, view in self._views.items():
            prediction = self.model.predict(consumer, view.state)
            if (
                prediction is not None
                and prediction.probability >= self._confidence
            ):
                anticipated[consumer] = prediction.next_state
            else:
                anticipated[consumer] = view.state
        return anticipated

    def consumer_state(self, consumer: str) -> str | None:
        view = self._views.get(consumer)
        return view.state if view is not None else None

    def global_view(self) -> dict[str, str]:
        """The (approximate) current state of every reporting consumer."""
        return {name: view.state for name, view in self._views.items()}

    def consumers_in_state(self, state: str) -> list[str]:
        return sorted(
            name
            for name, view in self._views.items()
            if view.state == state
        )

    # ------------------------------------------------------------------
    # Action firing
    # ------------------------------------------------------------------
    def _fire_reactive(self, consumer: str, state: str) -> None:
        for action in self._actions.get(state, ()):
            self.stats.reactive_actions += 1
            action(consumer)

    def _arm_prediction(self, consumer: str, state: str) -> None:
        self._cancel_prediction(consumer)
        prediction = self.model.predict(consumer, state)
        if prediction is None or prediction.probability < self._confidence:
            return
        if not self._actions.get(prediction.next_state):
            return
        delay = prediction.expected_dwell * self._lead_fraction
        handle = self._network.sim.schedule(
            max(0.0, delay),
            self._fire_predictive,
            consumer,
            prediction.next_state,
        )
        self._pending_predictions[consumer] = (
            prediction.next_state,
            handle,
        )

    def _fire_predictive(self, consumer: str, predicted_state: str) -> None:
        # Leave the entry so _resolve_prediction can score it when the
        # actual transition is reported.
        self.stats.predictive_actions += 1
        for action in self._actions.get(predicted_state, ()):
            action(consumer)

    def _resolve_prediction(self, consumer: str, actual_state: str) -> None:
        entry = self._pending_predictions.pop(consumer, None)
        if entry is None:
            return
        predicted_state, handle = entry
        fired = not handle.cancelled and handle.time <= self._network.sim.now
        handle.cancel()
        if not fired:
            return
        if predicted_state == actual_state:
            self.stats.correct_predictions += 1
        else:
            self.stats.wrong_predictions += 1

    def _cancel_prediction(self, consumer: str) -> None:
        entry = self._pending_predictions.pop(consumer, None)
        if entry is not None:
            entry[1].cancel()
