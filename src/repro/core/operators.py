"""Stream operators: ready-made multi-level consumers.

Section 4.2 envisages "multi-level data consumption where each layer
offers increasingly enhanced services to successive levels" building "an
arbitrarily rich application infrastructure". These operator consumers
are the building blocks: each subscribes to input streams, transforms,
and republishes a derived stream. Chains and DAGs of them exercise the
same publish/subscribe machinery as hand-written applications.

All operators assume the standard sample payload format of
:class:`repro.sensors.sampling.SampleCodec` (opaque to the middleware,
shared by producer and consumer as Section 4.3 intends); undecodable
payloads are counted and skipped, never fatal.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.core.consumer import Consumer
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import StreamArrival
from repro.errors import CodecError
from repro.sensors.sampling import Sample, SampleCodec


class _SampleOperator(Consumer):
    """Shared plumbing: decode inputs, publish transformed samples."""

    def __init__(
        self,
        name: str,
        pattern: SubscriptionPattern,
        input_codec: SampleCodec,
        output_codec: SampleCodec,
        output_kind: str,
        output_stream_index: int = 0,
        output_precision: int = 16,
    ) -> None:
        super().__init__(name)
        self._pattern = pattern
        self._input_codec = input_codec
        self._output_codec = output_codec
        self._output_kind = output_kind
        self._output_stream_index = output_stream_index
        self._output_precision = output_precision
        self.decode_failures = 0

    def on_start(self) -> None:
        self.subscribe(self._pattern)

    def on_data(self, arrival: StreamArrival) -> None:
        try:
            sample = self._input_codec.decode(arrival.message.payload)
        except CodecError:
            self.decode_failures += 1
            return
        self.process(arrival, sample)

    def process(self, arrival: StreamArrival, sample: Sample) -> None:
        raise NotImplementedError

    def emit(self, time_us: int, value: float, fused: bool = False) -> None:
        payload = self._output_codec.encode(
            time_us, value, self._output_precision
        )
        self.publish(
            self._output_stream_index,
            payload,
            kind=self._output_kind,
            fused=fused,
        )

    def emit_fused(
        self, time_us: int, value: float, source_count: int
    ) -> None:
        """Emit a fused sample carrying a FUSION_COUNT extension
        (Section 4.3: the header flags fused data; the extension says
        how many source readings went in)."""
        from repro.core.flags import ExtensionType

        payload = self._output_codec.encode(
            time_us, value, self._output_precision
        )
        self.publish(
            self._output_stream_index,
            payload,
            kind=self._output_kind,
            fused=True,
            extensions=(
                (
                    int(ExtensionType.FUSION_COUNT),
                    min(source_count, 0xFFFF).to_bytes(2, "big"),
                ),
            ),
        )


class MapOperator(_SampleOperator):
    """Applies ``fn(value) -> value`` to every sample (unit conversion,
    calibration, scaling...)."""

    def __init__(
        self,
        name: str,
        pattern: SubscriptionPattern,
        fn: Callable[[float], float],
        input_codec: SampleCodec,
        output_codec: SampleCodec,
        output_kind: str,
        **kwargs,
    ) -> None:
        super().__init__(
            name, pattern, input_codec, output_codec, output_kind, **kwargs
        )
        self._fn = fn

    def process(self, arrival: StreamArrival, sample: Sample) -> None:
        self.emit(sample.time_us, self._fn(sample.value))


class FilterOperator(_SampleOperator):
    """Forwards only samples where ``predicate(value)`` holds."""

    def __init__(
        self,
        name: str,
        pattern: SubscriptionPattern,
        predicate: Callable[[float], bool],
        input_codec: SampleCodec,
        output_codec: SampleCodec,
        output_kind: str,
        **kwargs,
    ) -> None:
        super().__init__(
            name, pattern, input_codec, output_codec, output_kind, **kwargs
        )
        self._predicate = predicate
        self.dropped = 0

    def process(self, arrival: StreamArrival, sample: Sample) -> None:
        if self._predicate(sample.value):
            self.emit(sample.time_us, sample.value)
        else:
            self.dropped += 1


class WindowAggregator(_SampleOperator):
    """Sliding-count-window aggregate (mean/min/max/...) per input stream.

    Emits one derived sample per ``stride`` inputs once the window fills,
    with the ``fused`` header flag set (Section 4.3 flags fused data).
    """

    AGGREGATES: dict[str, Callable[[list[float]], float]] = {
        "mean": lambda xs: sum(xs) / len(xs),
        "min": min,
        "max": max,
        "sum": sum,
        "range": lambda xs: max(xs) - min(xs),
    }

    def __init__(
        self,
        name: str,
        pattern: SubscriptionPattern,
        window: int,
        aggregate: str,
        input_codec: SampleCodec,
        output_codec: SampleCodec,
        output_kind: str,
        stride: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(
            name, pattern, input_codec, output_codec, output_kind, **kwargs
        )
        if window < 1:
            raise ValueError("window must be at least 1")
        if stride < 1:
            raise ValueError("stride must be at least 1")
        if aggregate not in self.AGGREGATES:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; "
                f"available: {sorted(self.AGGREGATES)}"
            )
        self._window = window
        self._stride = stride
        self._fn = self.AGGREGATES[aggregate]
        self._buffers: dict[int, deque[float]] = {}
        self._since_emit: dict[int, int] = {}

    def process(self, arrival: StreamArrival, sample: Sample) -> None:
        key = arrival.message.stream_id.pack()
        buffer = self._buffers.setdefault(key, deque(maxlen=self._window))
        buffer.append(sample.value)
        count = self._since_emit.get(key, 0) + 1
        if len(buffer) == self._window and count >= self._stride:
            self._since_emit[key] = 0
            self.emit_fused(
                sample.time_us, self._fn(list(buffer)), self._window
            )
        else:
            self._since_emit[key] = count


class FusionOperator(Consumer):
    """Fuses the latest sample from several input streams into one value.

    Emits whenever every input has reported at least once and any input
    updates — e.g. averaging the water-level readings of all gauges in a
    river reach. Demonstrates fan-in in the consumer graph.
    """

    def __init__(
        self,
        name: str,
        patterns: list[SubscriptionPattern],
        fuse: Callable[[list[float]], float],
        input_codec: SampleCodec,
        output_codec: SampleCodec,
        output_kind: str,
        min_inputs: int = 2,
        output_stream_index: int = 0,
        output_precision: int = 16,
    ) -> None:
        super().__init__(name)
        if min_inputs < 1:
            raise ValueError("min_inputs must be at least 1")
        self._patterns = patterns
        self._fuse = fuse
        self._input_codec = input_codec
        self._output_codec = output_codec
        self._output_kind = output_kind
        self._min_inputs = min_inputs
        self._output_stream_index = output_stream_index
        self._output_precision = output_precision
        self._latest: dict[int, float] = {}
        self.decode_failures = 0

    def on_start(self) -> None:
        for pattern in self._patterns:
            self.subscribe(pattern)

    def on_data(self, arrival: StreamArrival) -> None:
        try:
            sample = self._input_codec.decode(arrival.message.payload)
        except CodecError:
            self.decode_failures += 1
            return
        self._latest[arrival.message.stream_id.pack()] = sample.value
        if len(self._latest) >= self._min_inputs:
            fused_value = self._fuse(list(self._latest.values()))
            payload = self._output_codec.encode(
                sample.time_us, fused_value, self._output_precision
            )
            self.publish(
                self._output_stream_index,
                payload,
                kind=self._output_kind,
                fused=True,
            )


class CollectingConsumer(Consumer):
    """A terminal consumer that simply records what it receives.

    The workhorse of tests and benchmarks: subscribe it anywhere and
    inspect ``arrivals`` / ``values`` afterwards.
    """

    def __init__(
        self,
        name: str,
        pattern: SubscriptionPattern | None = None,
        codec: SampleCodec | None = None,
        max_kept: int | None = None,
    ) -> None:
        super().__init__(name)
        self._pattern = pattern
        self._codec = codec
        self.arrivals: deque[StreamArrival] = deque(maxlen=max_kept)
        self.values: deque[float] = deque(maxlen=max_kept)
        self.decode_failures = 0

    def on_start(self) -> None:
        if self._pattern is not None:
            self.subscribe(self._pattern)

    def on_data(self, arrival: StreamArrival) -> None:
        self.arrivals.append(arrival)
        if self._codec is not None:
            try:
                sample = self._codec.decode(arrival.message.payload)
            except CodecError:
                self.decode_failures += 1
                return
            self.values.append(sample.value)
