"""The 32-bit composite StreamID from Figure 2.

Section 4.3: "The composite StreamID field is used to identify the data
stream to which a message belongs." The proof-of-concept widths in
Section 1 — "up to 16.7M sensors, 256 internal-streams/sensor" — pin the
composition down exactly: a 24-bit sensor identifier (2^24 = 16,777,216)
concatenated with an 8-bit internal stream index (2^8 = 256).

Section 5 ("Delayed delivery decision-making"): the StreamID implicitly
identifies the *source*; destinations are never encoded — delivery is
decided in the fixed network (address-free routing).

Derived streams (Section 4.2, multi-level consumers) reuse the same id
space: consumer processes that republish data are allocated *virtual*
sensor ids from the top of the 24-bit range, so a derived stream is
indistinguishable on the wire from a physical one — exactly the property
that lets "an essentially arbitrary graph of consumer processes and data
streams" form over the middleware (Section 6).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.util.bitfields import check_range

SENSOR_ID_BITS = 24
STREAM_INDEX_BITS = 8
MAX_SENSOR_ID = (1 << SENSOR_ID_BITS) - 1
MAX_STREAM_INDEX = (1 << STREAM_INDEX_BITS) - 1

VIRTUAL_SENSOR_FLOOR = 0xF00000
"""Sensor ids at or above this value denote consumer processes publishing
derived streams; physical sensors are allocated below it. The split leaves
15.7M physical ids and 1M virtual ids."""


class StreamId(NamedTuple):
    """A (sensor id, internal stream index) pair — one logical data stream."""

    sensor_id: int
    stream_index: int

    def pack(self) -> int:
        """The 32-bit on-wire word: sensor id in the top 24 bits."""
        check_range("sensor_id", self.sensor_id, SENSOR_ID_BITS)
        check_range("stream_index", self.stream_index, STREAM_INDEX_BITS)
        return (self.sensor_id << STREAM_INDEX_BITS) | self.stream_index

    @classmethod
    def from_word(cls, word: int) -> "StreamId":
        """Decode a 32-bit on-wire word."""
        check_range("stream_id_word", word, SENSOR_ID_BITS + STREAM_INDEX_BITS)
        return cls(word >> STREAM_INDEX_BITS, word & MAX_STREAM_INDEX)

    @property
    def is_derived(self) -> bool:
        """True when the source is a consumer process, not a physical sensor."""
        return self.sensor_id >= VIRTUAL_SENSOR_FLOOR

    def validate(self) -> "StreamId":
        """Range-check both components; returns self for chaining."""
        check_range("sensor_id", self.sensor_id, SENSOR_ID_BITS)
        check_range("stream_index", self.stream_index, STREAM_INDEX_BITS)
        return self

    def __str__(self) -> str:
        kind = "derived" if self.is_derived else "sensor"
        return f"{kind}:{self.sensor_id}/{self.stream_index}"
