"""Garnet core: the paper's contribution.

Every box in Figure 1 is implemented as a service in this package, all of
them joined by the Figure 2 data-message format:

- wire formats: :mod:`repro.core.message`, :mod:`repro.core.control`,
  :mod:`repro.core.streamid`, :mod:`repro.core.flags`
- data path: :mod:`repro.core.filtering`, :mod:`repro.core.dispatching`,
  :mod:`repro.core.pubsub`, :mod:`repro.core.orphanage`,
  :mod:`repro.core.streams`
- control path: :mod:`repro.core.resource`, :mod:`repro.core.actuation`,
  :mod:`repro.core.replicator`
- cross-cutting: :mod:`repro.core.location`, :mod:`repro.core.coordinator`,
  :mod:`repro.core.security`
- applications: :mod:`repro.core.consumer`, :mod:`repro.core.operators`,
  :mod:`repro.core.session`
- assembly: :mod:`repro.core.middleware`, :mod:`repro.core.config`
"""

from repro.core.config import GarnetConfig
from repro.core.flags import HeaderFlags, PROTOCOL_VERSION
from repro.core.message import DataMessage, MessageCodec
from repro.core.middleware import Garnet
from repro.core.session import GarnetSession
from repro.core.streamid import StreamId

__all__ = [
    "DataMessage",
    "Garnet",
    "GarnetConfig",
    "GarnetSession",
    "HeaderFlags",
    "MessageCodec",
    "PROTOCOL_VERSION",
    "StreamId",
]
