"""The Filtering Service: stream reconstruction from raw receptions.

Section 4.2: "The Filtering Service reconstructs the data streams by
eliminating duplicate data messages. Filtered data is then forwarded to
the Dispatching Service for delivery to subscribed consumer processes."

Duplicates arise because receiver reception areas overlap by design
(better coverage at the price of multiple copies) and because sensors may
retransmit. Elimination is per-stream sequence tracking with 16-bit
wrap-around handled by serial-number arithmetic: a sequence is *new* when
it is ahead of the newest seen by less than half the space and has not
been recorded in the recent-set.

The service additionally:

- extracts stream-update-request acknowledgements (the ``ACK`` header
  field, Section 4.3) and forwards them to the Actuation Service;
- optionally reorders messages that arrived out of sequence, holding gaps
  for a bounded time (delivery is never delayed unboundedly by a lost
  message);
- maintains per-stream statistics in the shared registry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.envelopes import AckNotice, Reception, StreamArrival
from repro.core.flags import ExtensionType
from repro.core.message import parse_request_status_extension
from repro.core.streamid import StreamId
from repro.core.streams import StreamRegistry
from repro.errors import CodecError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork
from repro.util.ids import sequence_is_newer

SEQUENCE_BITS = 16

INBOX = "garnet.filtering"
DISPATCH_INBOX = "garnet.dispatching"
ACK_INBOX = "garnet.actuation.acks"


class FilteringStats(RegistryBackedStats):
    """Counters reported by experiment E2."""

    PREFIX = "filtering"

    received: int = 0
    delivered: int = 0
    duplicates: int = 0
    stale: int = 0
    reordered: int = 0
    acks_extracted: int = 0
    buffered_flushes: int = 0
    reorder_evictions: int = 0
    """Held messages force-flushed because a stream hit ``max_held``."""


@dataclass(slots=True)
class _StreamState:
    """Per-stream duplicate and ordering state."""

    newest: int | None = None
    recent: OrderedDict = field(default_factory=OrderedDict)
    # Reorder buffer: sequence -> (Reception, flush EventHandle)
    held: dict = field(default_factory=dict)
    next_expected: int | None = None


class FilteringService:
    """Reconstructs ordered, duplicate-free streams from receptions.

    Parameters
    ----------
    network:
        Fixed network; the service listens on :data:`INBOX` and forwards
        to :data:`DISPATCH_INBOX` / :data:`ACK_INBOX`.
    registry:
        Shared stream catalogue; newly seen streams are detected into it.
    window:
        How many recent sequence numbers to remember per stream. Must be
        well below half the 16-bit space so wrap-around stays sound.
    reorder_timeout:
        When positive, out-of-order messages are buffered until the gap
        fills or this many seconds elapse; when zero, messages flow in
        arrival order (duplicates still eliminated).
    max_held:
        Hard cap on buffered out-of-order messages per stream. Under
        sustained loss every gap would otherwise pin one reception and
        one flush timer indefinitely; at the cap the entry nearest the
        delivery cursor is flushed early (counted in
        ``stats.reorder_evictions``) so memory stays bounded.
    metrics:
        Shared deployment registry for the stats counters; a private
        registry is created when omitted (standalone/unit-test use).
    """

    def __init__(
        self,
        network: FixedNetwork,
        registry: StreamRegistry,
        window: int = 1024,
        reorder_timeout: float = 0.0,
        max_held: int = 64,
        metrics: MetricsRegistry | None = None,
        dispatch_inbox: str = DISPATCH_INBOX,
    ) -> None:
        if not 1 <= window <= (1 << (SEQUENCE_BITS - 1)) - 1:
            raise ValueError(
                f"window must be in [1, {(1 << (SEQUENCE_BITS - 1)) - 1}]"
            )
        if reorder_timeout < 0:
            raise ValueError("reorder_timeout must be non-negative")
        if max_held < 1:
            raise ValueError("max_held must be at least 1")
        self._network = network
        self._registry = registry
        self._window = window
        self._reorder_timeout = reorder_timeout
        self._max_held = max_held
        self._states: dict[StreamId, _StreamState] = {}
        self._dispatch_inbox = dispatch_inbox
        self.stats = FilteringStats(metrics)
        network.register_inbox(INBOX, self.on_reception)

    # ------------------------------------------------------------------
    def on_reception(self, reception: Reception) -> None:
        """Entry point for one receiver copy of one message."""
        if not isinstance(reception, Reception):
            raise CodecError(
                f"filtering inbox expects Reception, got {type(reception)!r}"
            )
        self.stats.received += 1
        message = reception.message
        stream_id = message.stream_id
        state = self._states.get(stream_id)
        if state is None:
            state = _StreamState()
            self._states[stream_id] = state
            self._registry.detect(stream_id)

        if not self._accept_sequence(state, message.sequence):
            self.stats.duplicates += 1
            descriptor = self._registry.find(stream_id)
            if descriptor is not None:
                descriptor.stats.duplicates_dropped += 1
            return

        self._extract_acks(reception)

        if self._reorder_timeout > 0:
            self._deliver_ordered(stream_id, state, reception)
        else:
            self._forward(reception)

    # ------------------------------------------------------------------
    # Duplicate elimination
    # ------------------------------------------------------------------
    def _accept_sequence(self, state: _StreamState, sequence: int) -> bool:
        """True when ``sequence`` is fresh for this stream; records it."""
        if state.newest is None:
            state.newest = sequence
            self._remember(state, sequence)
            return True
        if sequence in state.recent:
            return False
        if sequence_is_newer(sequence, state.newest, SEQUENCE_BITS):
            state.newest = sequence
            self._remember(state, sequence)
            return True
        # Behind the newest: fresh only if within the remembered window
        # (a reordered straggler) and not already seen. Anything older is
        # indistinguishable from a duplicate after wrap-around — treat as
        # stale, mirroring the paper's tolerance for lossy streams.
        behind = (state.newest - sequence) % (1 << SEQUENCE_BITS)
        if behind <= self._window:
            self._remember(state, sequence)
            self.stats.reordered += 1
            return True
        self.stats.stale += 1
        return False

    def _remember(self, state: _StreamState, sequence: int) -> None:
        state.recent[sequence] = True
        while len(state.recent) > self._window:
            state.recent.popitem(last=False)

    # ------------------------------------------------------------------
    # Acknowledgement extraction (return-path support)
    # ------------------------------------------------------------------
    def _extract_acks(self, reception: Reception) -> None:
        message = reception.message
        sensor_id = message.stream_id.sensor_id
        if message.ack_request_id is not None:
            self.stats.acks_extracted += 1
            self._network.send(
                ACK_INBOX,
                AckNotice(
                    request_id=message.ack_request_id,
                    sensor_id=sensor_id,
                    observed_at=reception.received_at,
                ),
            )
        for status_blob in message.find_extensions(
            ExtensionType.REQUEST_STATUS
        ):
            request_id, status = parse_request_status_extension(status_blob)
            self.stats.acks_extracted += 1
            self._network.send(
                ACK_INBOX,
                AckNotice(
                    request_id=request_id,
                    sensor_id=sensor_id,
                    observed_at=reception.received_at,
                    status=status,
                ),
            )

    # ------------------------------------------------------------------
    # Ordered delivery (optional reorder buffer)
    # ------------------------------------------------------------------
    def _deliver_ordered(
        self, stream_id: StreamId, state: _StreamState, reception: Reception
    ) -> None:
        sequence = reception.message.sequence
        if state.next_expected is None:
            state.next_expected = sequence
        if sequence == state.next_expected:
            self._forward(reception)
            state.next_expected = (sequence + 1) % (1 << SEQUENCE_BITS)
            self._drain_held(stream_id, state)
        elif sequence_is_newer(sequence, state.next_expected, SEQUENCE_BITS):
            handle = self._network.sim.schedule(
                self._reorder_timeout, self._flush_through, stream_id, sequence
            )
            state.held[sequence] = (reception, handle)
            if len(state.held) > self._max_held:
                self._evict_oldest(stream_id, state)
        else:
            # Older than the delivery cursor: a straggler whose slot was
            # already given up on. Deliver immediately rather than drop —
            # dedup already vouched it is fresh data.
            self._forward(reception)

    def _drain_held(self, stream_id: StreamId, state: _StreamState) -> None:
        while state.next_expected in state.held:
            reception, handle = state.held.pop(state.next_expected)
            handle.cancel()
            self._forward(reception)
            state.next_expected = (
                state.next_expected + 1
            ) % (1 << SEQUENCE_BITS)

    def _evict_oldest(self, stream_id: StreamId, state: _StreamState) -> None:
        """Flush the held entry nearest the cursor to respect ``max_held``."""
        cursor = state.next_expected or 0
        oldest = min(
            state.held,
            key=lambda seq: (seq - cursor) % (1 << SEQUENCE_BITS),
        )
        self.stats.reorder_evictions += 1
        self._release_through(stream_id, state, oldest)

    def _flush_through(self, stream_id: StreamId, sequence: int) -> None:
        """Give up waiting for gaps below ``sequence``; deliver what we hold."""
        state = self._states.get(stream_id)
        if state is None or sequence not in state.held:
            return
        self.stats.buffered_flushes += 1
        self._release_through(stream_id, state, sequence)

    def _release_through(
        self, stream_id: StreamId, state: _StreamState, sequence: int
    ) -> None:
        # Advance the cursor to the stalled message, delivering any held
        # messages we pass (their timers will find them gone).
        reception, handle = state.held.pop(sequence)
        handle.cancel()
        # Deliver everything held below the stalled message, ordered by
        # forward distance from the cursor (plain numeric order would
        # misorder across a 16-bit wrap).
        cursor = state.next_expected or 0
        intermediate = sorted(
            (
                seq
                for seq in state.held
                if sequence_is_newer(sequence, seq, SEQUENCE_BITS)
            ),
            key=lambda seq: (seq - cursor) % (1 << SEQUENCE_BITS),
        )
        for seq in intermediate:
            held_reception, held_handle = state.held.pop(seq)
            held_handle.cancel()
            self._forward(held_reception)
        self._forward(reception)
        state.next_expected = (sequence + 1) % (1 << SEQUENCE_BITS)
        self._drain_held(stream_id, state)

    # ------------------------------------------------------------------
    def _forward(self, reception: Reception) -> None:
        message = reception.message
        descriptor = self._registry.detect(message.stream_id)
        descriptor.stats.observe(
            reception.received_at, len(message.payload), message.sequence
        )
        self.stats.delivered += 1
        self._network.send(
            self._dispatch_inbox,
            StreamArrival(
                message=message,
                received_at=reception.received_at,
                receiver_id=reception.receiver_id,
            ),
        )

    # ------------------------------------------------------------------
    def tracked_streams(self) -> int:
        """Number of streams with live dedup state (capacity diagnostics)."""
        return len(self._states)

    def forget_stream(self, stream_id: StreamId) -> None:
        """Drop dedup state for a stream (e.g. after sensor retirement)."""
        state = self._states.pop(stream_id, None)
        if state is not None:
            for _, handle in state.held.values():
                handle.cancel()
