"""Closed-loop adaptive sampling: a consumer that tunes its sensor.

The paper's opening argument for the return path (Section 1): "Garnet
permits mutually unaware consumers to undertake dynamic control of the
sensors and influence the data delivery process, which is desirable
since application-level knowledge can be used to improve the overall
operation of the network."

:class:`AdaptiveRateController` is that argument as a working consumer.
It watches one stream, estimates the signal's current *activity* (mean
absolute slope over a sliding window, normalised by a configured scale),
maps activity onto a sampling rate between a floor and a ceiling, and —
when the desired rate differs enough from what it last asked for —
issues a ``SET_RATE`` through the normal mediated control path. A quiet
signal is sampled slowly (saving the sensor's battery, experiment E14);
an active one is sampled quickly (bounding reconstruction error,
experiment E15). The Resource Manager still mediates: other consumers'
demands and the sensor type's constraints bound what the controller can
actually get.
"""

from __future__ import annotations

from collections import deque

from repro.core.consumer import Consumer
from repro.core.control import StreamUpdateCommand
from repro.core.envelopes import StreamArrival
from repro.core.streamid import StreamId
from repro.errors import CodecError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.sensors.sampling import SampleCodec


class RateRequestGate:
    """Decides whether a new ``SET_RATE`` demand is worth issuing.

    The request-suppression plumbing shared by
    :class:`AdaptiveRateController` and the
    :class:`~repro.qos.degradation.DegradationController`: a desired
    rate within ``hysteresis`` (relative) of the last approved request
    is not worth the control traffic, and re-asking the exact value the
    Resource Manager last denied just spams it.
    """

    __slots__ = ("hysteresis", "requested_rate", "last_denied")

    def __init__(self, hysteresis: float = 0.0) -> None:
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.hysteresis = hysteresis
        self.requested_rate: float | None = None
        self.last_denied: float | None = None

    def within_hysteresis(self, desired: float) -> bool:
        """True when ``desired`` is too close to the last approved rate."""
        reference = self.requested_rate
        if reference is None or reference <= 0:
            return False
        return abs(desired - reference) / reference < self.hysteresis

    def is_denied(self, rate: float) -> bool:
        """True when ``rate`` (rounded) was the last value denied."""
        return round(rate, 3) == self.last_denied

    def record(self, rate: float, approved: bool) -> None:
        rounded = round(rate, 3)
        if approved:
            self.requested_rate = rounded
            self.last_denied = None
        else:
            self.last_denied = rounded


class ControllerStats(RegistryBackedStats):
    evaluations: int = 0
    rate_requests: int = 0
    denied_requests: int = 0

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        prefix: str | None = None,
    ) -> None:
        super().__init__(metrics, prefix)
        self.rate_trace: list = []
        """(time, requested_rate) for each actuated change."""


class AdaptiveRateController(Consumer):
    """Drives one stream's sampling rate from its observed activity.

    Parameters
    ----------
    stream_id:
        The (physical) stream to watch and control.
    codec:
        Payload codec shared with the sensor.
    min_rate, max_rate:
        The rate band the controller moves within (further clipped by
        the sensor type's constraints at admission time).
    activity_scale:
        Mean |d value / d t| that should map to the top of the band, in
        value-units per second. Below ~0 activity the controller sits at
        ``min_rate``.
    window:
        Samples per activity estimate.
    hysteresis:
        Minimum relative change versus the last requested rate before a
        new request is issued (keeps control traffic quiet near a
        steady state).
    priority:
        Demand priority used at the Resource Manager.
    """

    def __init__(
        self,
        name: str,
        stream_id: StreamId,
        codec: SampleCodec,
        min_rate: float = 0.2,
        max_rate: float = 5.0,
        activity_scale: float = 1.0,
        window: int = 6,
        hysteresis: float = 0.25,
        priority: int = 0,
    ) -> None:
        super().__init__(name)
        if not 0 < min_rate <= max_rate:
            raise ValueError(
                f"invalid rate band [{min_rate}, {max_rate}]"
            )
        if activity_scale <= 0:
            raise ValueError("activity_scale must be positive")
        if window < 3:
            raise ValueError("window must be at least 3")
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self._stream_id = stream_id
        self._codec = codec
        self._min_rate = min_rate
        self._max_rate = max_rate
        self._activity_scale = activity_scale
        self._window = window
        self._priority = priority
        self._samples: deque[tuple[float, float]] = deque(maxlen=window)
        self._gate = RateRequestGate(hysteresis)
        self.decode_failures = 0
        self.controller_stats = ControllerStats(
            prefix=f"adaptive.{name}"
        )

    def _attach(self, runtime, token) -> None:
        super()._attach(runtime, token)
        metrics = getattr(runtime, "metrics", None)
        if metrics is not None:
            self.controller_stats.bind(metrics)

    # ------------------------------------------------------------------
    @property
    def requested_rate(self) -> float | None:
        """The rate last asked of the Resource Manager (None = never)."""
        return self._gate.requested_rate

    def on_start(self) -> None:
        self.subscribe(stream_id=self._stream_id)

    def on_data(self, arrival: StreamArrival) -> None:
        if not arrival.message.payload:
            return
        try:
            sample = self._codec.decode(arrival.message.payload)
        except CodecError:
            self.decode_failures += 1
            return
        self._samples.append((sample.time_seconds, sample.value))
        if len(self._samples) == self._window:
            self._evaluate()

    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        self.controller_stats.evaluations += 1
        desired = self._desired_rate(self._activity())
        if self._gate.within_hysteresis(desired):
            return
        self._request(desired)

    def _activity(self) -> float:
        """Mean |slope| over the window, in value-units per second."""
        pairs = list(self._samples)
        slopes = []
        for (t0, v0), (t1, v1) in zip(pairs, pairs[1:]):
            dt = t1 - t0
            if dt > 0:
                slopes.append(abs(v1 - v0) / dt)
        if not slopes:
            return 0.0
        return sum(slopes) / len(slopes)

    def _desired_rate(self, activity: float) -> float:
        fraction = min(1.0, activity / self._activity_scale)
        return self._min_rate + fraction * (
            self._max_rate - self._min_rate
        )

    def _request(self, rate: float) -> None:
        rounded = round(rate, 3)
        if self._gate.is_denied(rounded):
            return  # re-asking the exact denied value just spams the RM
        decision = self.request_update(
            self._stream_id,
            StreamUpdateCommand.SET_RATE,
            rounded,
            priority=self._priority,
        )
        self.controller_stats.rate_requests += 1
        self._gate.record(rounded, decision.approved)
        if decision.approved:
            self.controller_stats.rate_trace.append(
                (self.now, self._gate.requested_rate)
            )
        else:
            self.controller_stats.denied_requests += 1
