"""Garnet's security model: authentication, capabilities, opaque payloads.

The paper's security posture has three planks:

1. **Opaque payloads** (Section 4.3): "The payload field is not
   interpreted and is opaque to the Garnet infrastructure. This provides a
   basic level of security and contributes to our security model."
2. **Authenticated access** (Section 3): consumers use "advertising,
   discovery, registration, authentication and publish/subscribe
   mechanisms" — every broker operation requires a token.
3. **End-to-end encryption** (Section 9): "a high-level abstraction of
   data streams supporting end-to-end encryption" — producers and
   consumers share keys; the middleware forwards ciphertext it cannot
   read, and location data "should be protected by additional security
   mechanisms" (Section 2), which falls out of requiring a dedicated
   permission for location access.

Tokens are HMAC-SHA256-signed capability strings, so any service holding
the deployment secret can verify a token without a round trip to the
authentication service. Payload encryption uses a SHA-256 keystream
(CTR-style) with an HMAC tag — not an audited cipher, but structurally
faithful: confidentiality and integrity end-to-end, with zero middleware
involvement.
"""

from __future__ import annotations

import hashlib
import hmac
import enum
from dataclasses import dataclass

from repro.errors import AuthenticationError, AuthorizationError


class Permission(enum.Flag):
    """Capabilities a consumer may hold (least privilege by default)."""

    NONE = 0
    SUBSCRIBE = enum.auto()
    PUBLISH = enum.auto()
    ACTUATE = enum.auto()
    HINT = enum.auto()
    COORDINATE = enum.auto()
    LOCATION = enum.auto()

    @classmethod
    def standard_consumer(cls) -> "Permission":
        """Subscribe + publish derived streams + supply hints."""
        return cls.SUBSCRIBE | cls.PUBLISH | cls.HINT

    @classmethod
    def trusted_consumer(cls) -> "Permission":
        """Everything: the 'trusted applications' of Section 9 that may
        provide advance warning and override management policies."""
        return (
            cls.SUBSCRIBE
            | cls.PUBLISH
            | cls.ACTUATE
            | cls.HINT
            | cls.COORDINATE
            | cls.LOCATION
        )


@dataclass(frozen=True, slots=True)
class Token:
    """A signed capability: principal + permission bits + signature."""

    principal: str
    permissions: Permission
    signature: bytes

    def signed_blob(self) -> bytes:
        return _token_blob(self.principal, self.permissions)


def _token_blob(principal: str, permissions: Permission) -> bytes:
    return f"{principal}\x00{permissions.value}".encode()


class AuthService:
    """Issues and verifies capability tokens for a deployment.

    One instance per deployment; the secret never leaves it, but
    verification only needs :meth:`verify`, which other services call via
    a shared reference (standing in for distributing the verification key).
    """

    def __init__(self, secret: bytes) -> None:
        if len(secret) < 8:
            raise AuthenticationError("deployment secret too short (< 8 bytes)")
        self._secret = secret
        self._revoked: set[str] = set()

    def issue(self, principal: str, permissions: Permission) -> Token:
        """Issue a token binding ``principal`` to ``permissions``."""
        if not principal:
            raise AuthenticationError("principal must be non-empty")
        signature = hmac.new(
            self._secret, _token_blob(principal, permissions), hashlib.sha256
        ).digest()
        return Token(principal, permissions, signature)

    def revoke(self, principal: str) -> None:
        """Invalidate every token previously issued to ``principal``."""
        self._revoked.add(principal)

    def verify(self, token: Token) -> None:
        """Raise unless ``token`` is authentic and not revoked."""
        if not isinstance(token, Token):
            raise AuthenticationError(f"not a token: {token!r}")
        expected = hmac.new(
            self._secret, token.signed_blob(), hashlib.sha256
        ).digest()
        if not hmac.compare_digest(expected, token.signature):
            raise AuthenticationError(
                f"invalid token signature for {token.principal!r}"
            )
        if token.principal in self._revoked:
            raise AuthenticationError(
                f"token for {token.principal!r} has been revoked"
            )

    def require(self, token: Token, permission: Permission) -> str:
        """Verify ``token`` and demand ``permission``; returns the principal."""
        self.verify(token)
        if token.permissions & permission != permission:
            raise AuthorizationError(
                f"{token.principal!r} lacks {permission!r}"
            )
        return token.principal


# ----------------------------------------------------------------------
# End-to-end payload encryption
# ----------------------------------------------------------------------

_TAG_BYTES = 8
_NONCE_BYTES = 8


class PayloadCipher:
    """Symmetric payload encryption shared by a producer and its consumers.

    Format: ``nonce (8) || ciphertext || tag (8)``, where the keystream is
    SHA-256(key || nonce || counter) blocks and the tag is truncated
    HMAC-SHA256 over nonce+ciphertext. The middleware never sees the key;
    the ``ENCRYPTED`` header flag merely marks the payload as ciphertext.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 8:
            raise AuthenticationError("payload key too short (< 8 bytes)")
        self._key = key
        self._nonce_counter = 0

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = bytearray()
        counter = 0
        while len(blocks) < length:
            blocks.extend(
                hashlib.sha256(
                    self._key + nonce + counter.to_bytes(4, "big")
                ).digest()
            )
            counter += 1
        return bytes(blocks[:length])

    def _tag(self, nonce: bytes, ciphertext: bytes) -> bytes:
        return hmac.new(
            self._key, nonce + ciphertext, hashlib.sha256
        ).digest()[:_TAG_BYTES]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt and authenticate ``plaintext``."""
        nonce = self._nonce_counter.to_bytes(_NONCE_BYTES, "big")
        self._nonce_counter += 1
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        return nonce + ciphertext + self._tag(nonce, ciphertext)

    def decrypt(self, blob: bytes) -> bytes:
        """Verify and decrypt; raises :class:`AuthenticationError` on tamper."""
        if len(blob) < _NONCE_BYTES + _TAG_BYTES:
            raise AuthenticationError("ciphertext too short")
        nonce = blob[:_NONCE_BYTES]
        ciphertext = blob[_NONCE_BYTES:-_TAG_BYTES]
        tag = blob[-_TAG_BYTES:]
        if not hmac.compare_digest(tag, self._tag(nonce, ciphertext)):
            raise AuthenticationError("payload authentication failed")
        stream = self._keystream(nonce, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))
