"""Deployment configuration for a Garnet instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.simnet.geometry import Rect
from repro.simnet.wireless import LossModel


@dataclass(slots=True)
class GarnetConfig:
    """Everything needed to stand up one simulated Garnet deployment.

    The defaults describe a 1 km x 1 km field with a 4x4 receiver grid at
    1.5x coverage overlap — enough duplication to make the Filtering
    Service earn its keep, matching the Section 4.2 design intent.
    """

    area: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 1000.0, 1000.0))

    # Radio arrays
    receiver_rows: int = 4
    receiver_cols: int = 4
    receiver_overlap: float = 1.5
    transmitter_rows: int = 2
    transmitter_cols: int = 2
    transmitter_overlap: float = 1.5

    # Wireless medium
    bitrate: float = 250_000.0
    loss_model: LossModel | None = field(default_factory=LossModel)
    per_hop_latency: float = 0.001

    # Fixed network
    message_latency: float = 0.0005
    rpc_latency: float = 0.001

    # Wire format
    checksum: bool = True

    # Filtering Service
    filtering_window: int = 1024
    reorder_timeout: float = 0.0
    reorder_max_held: int = 64

    # Orphanage
    orphanage_backlog: int = 256

    # Location Service
    location_decay_tau: float = 30.0
    location_max_observations: int = 32
    location_min_confidence_radius: float = 10.0
    publish_location_stream: bool = True
    location_stream_period: float = 10.0

    # Actuation Service
    ack_timeout: float = 2.0
    ack_max_attempts: int = 3
    replicator_margin: float = 25.0

    # Super Coordinator
    predictive_coordinator: bool = False
    prediction_confidence: float = 0.6
    prediction_lead_fraction: float = 0.5

    # Security
    deployment_secret: bytes = b"garnet-deployment-secret"
    require_auth: bool = True

    # Observability (repro.obs): the metrics registry is always on —
    # the per-service stats views need it — these gate the optional
    # instrumentation layered on top.
    trace_spans: bool = True
    kernel_probe: bool = True

    def validate(self) -> "GarnetConfig":
        """Sanity-check cross-field consistency; returns self."""
        if self.reorder_max_held < 1:
            raise ConfigurationError("reorder_max_held must be at least 1")
        if self.receiver_rows < 1 or self.receiver_cols < 1:
            raise ConfigurationError("receiver grid must be at least 1x1")
        if self.transmitter_rows < 1 or self.transmitter_cols < 1:
            raise ConfigurationError("transmitter grid must be at least 1x1")
        if self.area.width <= 0 or self.area.height <= 0:
            raise ConfigurationError("deployment area must have extent")
        return self
