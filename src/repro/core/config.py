"""Deployment configuration for a Garnet instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.simnet.geometry import Rect
from repro.simnet.wireless import LossModel


@dataclass(slots=True)
class GarnetConfig:
    """Everything needed to stand up one simulated Garnet deployment.

    The defaults describe a 1 km x 1 km field with a 4x4 receiver grid at
    1.5x coverage overlap — enough duplication to make the Filtering
    Service earn its keep, matching the Section 4.2 design intent.
    """

    area: Rect = field(default_factory=lambda: Rect(0.0, 0.0, 1000.0, 1000.0))

    # Radio arrays
    receiver_rows: int = 4
    receiver_cols: int = 4
    receiver_overlap: float = 1.5
    transmitter_rows: int = 2
    transmitter_cols: int = 2
    transmitter_overlap: float = 1.5

    # Wireless medium
    bitrate: float = 250_000.0
    loss_model: LossModel | None = field(default_factory=LossModel)
    per_hop_latency: float = 0.001
    #: Grid-index static listeners so broadcast prunes out-of-range ones
    #: without visiting them. Behaviour-neutral (same seed ⇒ identical
    #: traces); exposed as a kill switch for A/B perf measurement.
    wireless_spatial_index: bool = True
    #: Compute each broadcast disc as numpy array operations with a
    #: single RNG call per transmission and batched delivery. NOT
    #: behaviour-neutral: the RNG draw order changes, so vectorized runs
    #: are pinned by their own VECTOR_GOLDEN_DIGEST; flag off stays
    #: byte-identical to the scalar medium. Requires numpy.
    wireless_vectorized: bool = False

    # Fixed network
    message_latency: float = 0.0005
    rpc_latency: float = 0.001

    # Wire format
    checksum: bool = True

    # Filtering Service
    filtering_window: int = 1024
    reorder_timeout: float = 0.0
    reorder_max_held: int = 64

    # Orphanage
    orphanage_backlog: int = 256

    # Location Service
    location_decay_tau: float = 30.0
    location_max_observations: int = 32
    location_min_confidence_radius: float = 10.0
    publish_location_stream: bool = True
    location_stream_period: float = 10.0

    # Actuation Service. The backoff defaults (multiplier 1, no jitter)
    # reproduce the historical fixed-interval retransmission exactly.
    ack_timeout: float = 2.0
    ack_max_attempts: int = 3
    ack_backoff_multiplier: float = 1.0
    ack_backoff_max: float | None = None
    ack_backoff_jitter: float = 0.0
    replicator_margin: float = 25.0

    # Fixed-network resilience: when ``fixednet_retry_base`` is set,
    # sends to an unreachable endpoint are retried on that backoff
    # schedule instead of being dropped immediately; exhausted retries
    # go to the dead-letter hook either way.
    fixednet_retry_base: float | None = None
    fixednet_retry_multiplier: float = 2.0
    fixednet_retry_max: float | None = None
    fixednet_retry_jitter: float = 0.0
    fixednet_retry_attempts: int = 3

    # Broker leases & session liveness: both default off, which is the
    # pre-lease behaviour (registrations never expire, no heartbeats).
    broker_lease_ttl: float | None = None
    session_heartbeat_period: float | None = None

    # Overload protection & graceful degradation (repro.qos). Everything
    # defaults off, which is the pre-QoS behaviour (unbounded ingress,
    # direct fan-out, no breakers, no degradation).
    #
    # ``qos_ingress_rate`` (messages/second of virtual time) switches on
    # token-bucket admission control at the Dispatching Service ingress.
    qos_ingress_rate: float | None = None
    qos_ingress_burst: float = 64.0
    qos_ingress_queue: int = 256
    qos_shedding: str = "drop_oldest"  # or "priority"
    # ``qos_consumer_queue`` switches on per-consumer delivery queues
    # with slow-consumer quarantine.
    qos_consumer_queue: int | None = None
    qos_quarantine_after: float = 5.0
    qos_parked_capacity: int = 1024
    # ``qos_breaker_failures`` switches on fixed-network circuit
    # breakers (dead-letters before a trip; reset = half-open probe
    # delay in virtual seconds).
    qos_breaker_failures: int | None = None
    qos_breaker_reset: float = 30.0
    # ``qos_degradation`` switches on the load-driven sensor
    # down-throttling controller.
    qos_degradation: bool = False
    qos_degradation_period: float = 5.0
    qos_degrade_after: int = 2
    qos_restore_after: int = 3
    qos_degrade_factor: float = 0.5
    qos_min_rate: float = 0.1
    qos_degrade_priority: int = 50

    # Clustered federation (repro.cluster). Defaults off: the single-
    # broker deployment is byte-identical to the pre-cluster behaviour
    # (the golden digest in tests/test_perf_determinism.py pins this).
    #
    # ``cluster_enabled`` stands up ``cluster_brokers`` broker nodes over
    # the fixed network; stream ownership is assigned by consistent
    # hashing (``cluster_virtual_nodes`` ring entries per broker, with
    # explicit pin overrides), publishes/interest cross brokers over
    # InterBrokerLink inboxes, and a ClusterCoordinator polls broker
    # liveness every ``cluster_failover_check_period`` virtual seconds to
    # execute ownership handoff with replay from a bounded per-stream
    # backlog (``cluster_handoff_backlog``). ``cluster_dedupe_window``
    # bounds the per-stream sequence window each node keeps to suppress
    # duplicate deliveries across link/replay paths.
    cluster_enabled: bool = False
    cluster_brokers: int = 2
    #: Run broker nodes b1..bN in worker *processes* (repro.cluster.mp):
    #: 0 keeps everything in-process; N > 0 distributes the non-historical
    #: nodes over N workers with inter-broker frames carried over pipes
    #: and a conservative sim-time barrier. Delivery sets match the
    #: in-process run on the same seed.
    cluster_workers: int = 0
    cluster_virtual_nodes: int = 64
    cluster_failover_check_period: float = 1.0
    cluster_handoff_backlog: int = 64
    cluster_dedupe_window: int = 512

    # Durable stream store (repro.store). Default off: appends never
    # happen, the ``store.*`` keys stay out of summary(), and the data
    # path is byte-identical to the store-less build (golden digests).
    #
    # ``store_enabled`` installs a write-through tap at every broker
    # node's dispatcher; ``store_backend`` picks where segments live
    # ("memory" or "file" — the latter needs ``store_dir``). Segments
    # rotate at ``store_segment_bytes``; retention evicts whole sealed
    # segments by per-stream count, total byte budget and age (against
    # virtual time). ``store_dedupe_window`` bounds the per-stream
    # sequence window the tap uses to keep the log duplicate-free
    # through cluster handoff replay.
    store_enabled: bool = False
    store_backend: str = "memory"
    store_dir: str | None = None
    store_segment_bytes: int = 64 * 1024
    store_segments_per_stream: int = 8
    store_max_bytes: int | None = None
    store_max_age: float | None = None
    store_dedupe_window: int = 512

    # Hierarchical fan-out (repro.fanout). Default off: no relay
    # inboxes, no ``fanout.*`` summary keys, and the per-consumer
    # delivery path is byte-identical to the pre-fanout build (the
    # golden digests pin this).
    #
    # ``fanout_enabled`` stands up the deployment fan-out tree and
    # installs the dispatcher hook that intercepts tree-root legs:
    # consumer interest aggregates through ``fanout_levels`` tiers of
    # relays (each capped at ``fanout_branching`` children), the
    # dispatcher emits one delivery per subtree, and inter-broker legs
    # coalesce into DELIVERY_BATCH frames of at most
    # ``fanout_link_batch`` arrivals. ``fanout_datagram_budget`` bounds
    # a live-transport batch datagram (protocol.md §7).
    fanout_enabled: bool = False
    fanout_branching: int = 64
    fanout_levels: int = 3
    fanout_link_batch: int = 128
    fanout_datagram_budget: int = 60_000

    # Live transport (repro.transport): where a LiveBroker binds when
    # this deployment is served over real sockets (``garnet-broker``).
    # Port 0 means "pick a free port and announce it"; the defaults keep
    # everything on loopback, which is the only deployment mode the
    # reproduction supports.
    transport_host: str = "127.0.0.1"
    transport_control_port: int = 0
    transport_data_port: int = 0
    # Resilient live sessions: ``transport_resume_grace`` keeps a
    # disconnected client's server-side session (subscriptions, parked
    # deliveries, publisher id) alive for that many wall-clock seconds
    # so a RESUME with the session's token can pick up where it left
    # off. None (the default) disables parking entirely — a dropped
    # control connection tears the session down immediately, the
    # pre-resume behaviour. ``transport_park_capacity`` bounds the
    # per-session parked-delivery buffer; overflow evicts oldest (the
    # store, when enabled, still repairs evicted records on resume).
    transport_resume_grace: float | None = None
    transport_park_capacity: int = 4096

    # Super Coordinator
    predictive_coordinator: bool = False
    prediction_confidence: float = 0.6
    prediction_lead_fraction: float = 0.5

    # Security
    deployment_secret: bytes = b"garnet-deployment-secret"
    require_auth: bool = True

    # Observability (repro.obs): the metrics registry is always on —
    # the per-service stats views need it — these gate the optional
    # instrumentation layered on top.
    trace_spans: bool = True
    kernel_probe: bool = True

    def validate(self) -> "GarnetConfig":
        """Sanity-check cross-field consistency; returns self."""
        if self.reorder_max_held < 1:
            raise ConfigurationError("reorder_max_held must be at least 1")
        if self.receiver_rows < 1 or self.receiver_cols < 1:
            raise ConfigurationError("receiver grid must be at least 1x1")
        if self.transmitter_rows < 1 or self.transmitter_cols < 1:
            raise ConfigurationError("transmitter grid must be at least 1x1")
        if self.area.width <= 0 or self.area.height <= 0:
            raise ConfigurationError("deployment area must have extent")
        if self.broker_lease_ttl is not None and self.broker_lease_ttl <= 0:
            raise ConfigurationError("broker_lease_ttl must be positive")
        if (
            self.transport_resume_grace is not None
            and self.transport_resume_grace <= 0
        ):
            raise ConfigurationError(
                "transport_resume_grace must be positive or None"
            )
        if self.transport_park_capacity < 1:
            raise ConfigurationError(
                "transport_park_capacity must be at least 1"
            )
        if (
            self.session_heartbeat_period is not None
            and self.session_heartbeat_period <= 0
        ):
            raise ConfigurationError(
                "session_heartbeat_period must be positive"
            )
        if (
            self.broker_lease_ttl is not None
            and self.session_heartbeat_period is not None
            and self.session_heartbeat_period >= self.broker_lease_ttl
        ):
            raise ConfigurationError(
                "session_heartbeat_period must be shorter than "
                "broker_lease_ttl or every lease expires between heartbeats"
            )
        if self.qos_ingress_rate is not None:
            if self.qos_ingress_rate <= 0:
                raise ConfigurationError("qos_ingress_rate must be positive")
            if self.qos_ingress_burst < 1:
                raise ConfigurationError(
                    "qos_ingress_burst must be at least one message"
                )
            if self.qos_ingress_queue < 1:
                raise ConfigurationError(
                    "qos_ingress_queue must be at least 1"
                )
        if self.qos_shedding not in ("drop_oldest", "priority"):
            raise ConfigurationError(
                f"unknown qos_shedding policy {self.qos_shedding!r} "
                "(expected 'drop_oldest' or 'priority')"
            )
        if self.qos_consumer_queue is not None:
            if self.qos_consumer_queue < 1:
                raise ConfigurationError(
                    "qos_consumer_queue must be at least 1"
                )
            if self.qos_quarantine_after <= 0:
                raise ConfigurationError(
                    "qos_quarantine_after must be positive"
                )
            if self.qos_parked_capacity < 1:
                raise ConfigurationError(
                    "qos_parked_capacity must be at least 1"
                )
        if self.qos_breaker_failures is not None:
            if self.qos_breaker_failures < 1:
                raise ConfigurationError(
                    "qos_breaker_failures must be at least 1"
                )
            if self.qos_breaker_reset <= 0:
                raise ConfigurationError("qos_breaker_reset must be positive")
        if self.qos_degradation:
            if self.qos_degradation_period <= 0:
                raise ConfigurationError(
                    "qos_degradation_period must be positive"
                )
            if self.qos_degrade_after < 1 or self.qos_restore_after < 1:
                raise ConfigurationError(
                    "qos_degrade_after and qos_restore_after must be "
                    "at least 1"
                )
            if not 0 < self.qos_degrade_factor < 1:
                raise ConfigurationError(
                    "qos_degrade_factor must be in (0, 1)"
                )
            if self.qos_min_rate <= 0:
                raise ConfigurationError("qos_min_rate must be positive")
        if self.cluster_brokers < 1:
            raise ConfigurationError("cluster_brokers must be at least 1")
        if self.cluster_workers < 0:
            raise ConfigurationError("cluster_workers must be non-negative")
        if self.cluster_workers > 0 and not self.cluster_enabled:
            raise ConfigurationError(
                "cluster_workers requires cluster_enabled"
            )
        if self.cluster_enabled:
            if self.cluster_virtual_nodes < 1:
                raise ConfigurationError(
                    "cluster_virtual_nodes must be at least 1"
                )
            if self.cluster_failover_check_period <= 0:
                raise ConfigurationError(
                    "cluster_failover_check_period must be positive"
                )
            if self.cluster_handoff_backlog < 1:
                raise ConfigurationError(
                    "cluster_handoff_backlog must be at least 1"
                )
            if self.cluster_dedupe_window < 1:
                raise ConfigurationError(
                    "cluster_dedupe_window must be at least 1"
                )
        if self.store_backend not in ("memory", "file"):
            raise ConfigurationError(
                f"unknown store_backend {self.store_backend!r} "
                "(expected 'memory' or 'file')"
            )
        if self.store_enabled:
            if self.store_backend == "file" and not self.store_dir:
                raise ConfigurationError(
                    "store_backend='file' requires store_dir"
                )
            if self.store_segment_bytes < 1:
                raise ConfigurationError(
                    "store_segment_bytes must be at least 1"
                )
            if self.store_segments_per_stream < 1:
                raise ConfigurationError(
                    "store_segments_per_stream must be at least 1"
                )
            if self.store_max_bytes is not None and self.store_max_bytes < 1:
                raise ConfigurationError(
                    "store_max_bytes must be at least 1 byte"
                )
            if self.store_max_age is not None and self.store_max_age <= 0:
                raise ConfigurationError("store_max_age must be positive")
            if self.store_dedupe_window < 1:
                raise ConfigurationError(
                    "store_dedupe_window must be at least 1"
                )
        if self.fanout_enabled:
            if self.fanout_branching < 2:
                raise ConfigurationError(
                    "fanout_branching must be at least 2"
                )
            if not 1 <= self.fanout_levels <= 8:
                raise ConfigurationError(
                    "fanout_levels must be in [1, 8]"
                )
            if self.fanout_link_batch < 1:
                raise ConfigurationError(
                    "fanout_link_batch must be at least 1"
                )
            if not 64 <= self.fanout_datagram_budget <= 65_000:
                raise ConfigurationError(
                    "fanout_datagram_budget must be in [64, 65000]"
                )
        if not self.transport_host:
            raise ConfigurationError("transport_host must be non-empty")
        for port_field in ("transport_control_port", "transport_data_port"):
            port = getattr(self, port_field)
            if not 0 <= port <= 65535:
                raise ConfigurationError(
                    f"{port_field} must be in [0, 65535], got {port}"
                )
        return self
