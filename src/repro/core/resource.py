"""The Resource Manager: admission control over the sensor field.

Section 4.2: "a pathway exists for consumer processes to transmit control
messages to sensors in a location-neutral manner. First, approval is
sought from the Resource Manager which exercises control over the
permissible actions which a set of consumers may request."

Section 6: "The resource manager acquires an approximate overview of the
sensors' configuration. This allows admission control decisions to be
made, and is necessary given the potential for conflicting consumer
requests."

The manager therefore keeps three bodies of state:

1. **sensor types** — each with a :class:`~repro.core.constraints.ConstraintSet`
   limiting legal configurations (the Section 8 constraint language);
2. **an approximate configuration overview** — the *believed* current
   configuration of every registered stream, updated optimistically when
   a request is issued and confirmed when the sensor acknowledges (it is
   approximate precisely because the wireless path may drop requests);
3. **standing demands** — each consumer's latest wish per parameter,
   mediated into one effective value by the active
   :class:`~repro.core.conflicts.MediationPolicy` (swappable at run time
   by the Super Coordinator — Figure 1's "Resource Strategy" arrow).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.core.conflicts import Demand, MediationPolicy, PriorityWins
from repro.core.constraints import ConstraintSet
from repro.core.control import StreamUpdateCommand
from repro.core.security import AuthService, Permission, Token
from repro.core.streamid import StreamId
from repro.errors import AdmissionError, RegistrationError
from repro.obs.registry import MetricsRegistry
from repro.obs.stats import RegistryBackedStats
from repro.simnet.fixednet import FixedNetwork, RpcEndpoint

SERVICE_NAME = "garnet.resource_manager"

#: Which configuration parameter each actuation command drives.
COMMAND_PARAMETERS: dict[StreamUpdateCommand, str] = {
    StreamUpdateCommand.SET_RATE: "rate",
    StreamUpdateCommand.SET_MODE: "mode",
    StreamUpdateCommand.ENABLE_STREAM: "enabled",
    StreamUpdateCommand.DISABLE_STREAM: "enabled",
    StreamUpdateCommand.SET_PRECISION: "precision",
}


@dataclass(frozen=True, slots=True)
class StreamConfig:
    """One internal stream's configuration, as the middleware believes it."""

    rate: float = 1.0
    mode: Any = "normal"
    enabled: bool = True
    precision: int = 16

    def as_environment(self) -> dict[str, Any]:
        """The variable bindings constraint expressions evaluate against."""
        return {
            "rate": self.rate,
            "mode": self.mode,
            "enabled": self.enabled,
            "precision": self.precision,
        }

    def with_parameter(self, parameter: str, value: Any) -> "StreamConfig":
        if parameter not in ("rate", "mode", "enabled", "precision"):
            raise AdmissionError(f"unknown parameter {parameter!r}")
        return replace(self, **{parameter: value})


@dataclass(frozen=True, slots=True)
class SensorTypeSpec:
    """Capabilities and limits of one sensor model."""

    name: str
    constraints: ConstraintSet
    default_config: StreamConfig = field(default_factory=StreamConfig)
    actuatable: bool = True
    """False for transmit-only sensors: every update request is refused,
    which is how simple and sophisticated sensors coexist (Section 5)."""


@dataclass(frozen=True, slots=True)
class Decision:
    """The Resource Manager's verdict on one stream update request."""

    approved: bool
    consumer: str
    stream_id: StreamId
    parameter: str | None
    requested_value: Any
    effective_value: Any = None
    """What the sensor will actually be asked for after mediation — may
    differ from the requested value when other demands win."""

    reason: str = ""
    violations: tuple[str, ...] = ()
    issue_actuation: bool = False
    """True when the mediated value differs from the believed config and
    a control message should be sent toward the sensor."""


class ResourceStats(RegistryBackedStats):
    PREFIX = "resource"

    requests: int = 0
    approved: int = 0
    denied_constraint: int = 0
    denied_conflict: int = 0
    denied_capability: int = 0
    actuations_issued: int = 0
    policy_changes: int = 0


@dataclass(slots=True)
class _StreamState:
    config: StreamConfig
    pending: dict[str, Any] = field(default_factory=dict)
    demands: dict[tuple[str, str], Demand] = field(default_factory=dict)
    """(consumer, parameter) -> latest standing demand."""


class ResourceManager(RpcEndpoint):
    """Admission control + conflict mediation for the actuation path."""

    def __init__(
        self,
        network: FixedNetwork,
        auth: AuthService | None = None,
        default_policy: MediationPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._network = network
        self._auth = auth
        self._default_policy = default_policy or PriorityWins()
        self._parameter_policies: dict[str, MediationPolicy] = {}
        self._types: dict[str, SensorTypeSpec] = {}
        self._sensor_types: dict[int, str] = {}
        self._streams: dict[StreamId, _StreamState] = {}
        self.stats = ResourceStats(metrics)
        network.register_service(SERVICE_NAME, self)

    # ------------------------------------------------------------------
    # Sensor field registration
    # ------------------------------------------------------------------
    def register_sensor_type(self, spec: SensorTypeSpec) -> None:
        if spec.name in self._types:
            raise RegistrationError(f"sensor type {spec.name!r} exists")
        self._types[spec.name] = spec

    def register_sensor(
        self,
        sensor_id: int,
        type_name: str,
        stream_indexes: tuple[int, ...] = (0,),
    ) -> None:
        """Admit a deployed sensor into the configuration overview."""
        spec = self._types.get(type_name)
        if spec is None:
            raise RegistrationError(f"unknown sensor type {type_name!r}")
        if sensor_id in self._sensor_types:
            raise RegistrationError(f"sensor {sensor_id} already registered")
        self._sensor_types[sensor_id] = type_name
        for index in stream_indexes:
            self._streams[StreamId(sensor_id, index)] = _StreamState(
                config=spec.default_config
            )

    def sensor_type_of(self, sensor_id: int) -> SensorTypeSpec | None:
        name = self._sensor_types.get(sensor_id)
        return self._types.get(name) if name is not None else None

    # ------------------------------------------------------------------
    # Policy control (invoked by the Super Coordinator)
    # ------------------------------------------------------------------
    def set_policy(
        self, policy: MediationPolicy, parameter: str | None = None
    ) -> None:
        """Swap the mediation policy, globally or for one parameter."""
        if parameter is None:
            self._default_policy = policy
        else:
            self._parameter_policies[parameter] = policy
        self.stats.policy_changes += 1

    def policy_for(self, parameter: str) -> MediationPolicy:
        return self._parameter_policies.get(parameter, self._default_policy)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def request_update(
        self,
        consumer: str,
        stream_id: StreamId,
        command: StreamUpdateCommand,
        value: Any = None,
        priority: int = 0,
        token: Token | None = None,
    ) -> Decision:
        """Vet one stream update request; the heart of the control path.

        When an :class:`~repro.core.security.AuthService` was supplied,
        ``token`` must carry the ``ACTUATE`` permission.
        """
        if self._auth is not None:
            consumer = self._auth.require(token, Permission.ACTUATE)
        self.stats.requests += 1

        state = self._streams.get(stream_id)
        if state is None:
            self.stats.denied_capability += 1
            return Decision(
                approved=False,
                consumer=consumer,
                stream_id=stream_id,
                parameter=None,
                requested_value=value,
                reason=f"stream {stream_id} is not registered",
            )
        spec = self.sensor_type_of(stream_id.sensor_id)
        assert spec is not None  # registration keeps these in lockstep
        if not spec.actuatable:
            self.stats.denied_capability += 1
            return Decision(
                approved=False,
                consumer=consumer,
                stream_id=stream_id,
                parameter=None,
                requested_value=value,
                reason=(
                    f"sensor type {spec.name!r} is transmit-only and "
                    "cannot be actuated"
                ),
            )

        if command is StreamUpdateCommand.PING:
            # No configuration change: approve straight through.
            self.stats.approved += 1
            return Decision(
                approved=True,
                consumer=consumer,
                stream_id=stream_id,
                parameter=None,
                requested_value=None,
                issue_actuation=True,
                reason="ping",
            )

        parameter = COMMAND_PARAMETERS[command]
        if command is StreamUpdateCommand.ENABLE_STREAM:
            value = True
        elif command is StreamUpdateCommand.DISABLE_STREAM:
            value = False

        now = self._network.sim.now
        demand = Demand(
            consumer=consumer,
            parameter=parameter,
            value=value,
            priority=priority,
            placed_at=now,
        )
        previous = state.demands.get((consumer, parameter))
        state.demands[(consumer, parameter)] = demand

        try:
            effective = self._mediate(state, parameter)
        except AdmissionError as exc:
            # Conflict refused by policy: withdraw the new demand.
            self._restore_demand(state, consumer, parameter, previous)
            self.stats.denied_conflict += 1
            return Decision(
                approved=False,
                consumer=consumer,
                stream_id=stream_id,
                parameter=parameter,
                requested_value=value,
                reason=str(exc),
            )

        candidate = state.config.with_parameter(parameter, effective)
        violations = spec.constraints.violations(candidate.as_environment())
        if violations:
            self._restore_demand(state, consumer, parameter, previous)
            self.stats.denied_constraint += 1
            return Decision(
                approved=False,
                consumer=consumer,
                stream_id=stream_id,
                parameter=parameter,
                requested_value=value,
                reason=(
                    "constraint violation: " + ", ".join(violations)
                ),
                violations=tuple(violations),
            )

        # Issue an actuation only when the mediated value differs from
        # both the believed configuration and anything already in flight
        # toward the sensor (re-issuing a pending change would just
        # duplicate control traffic).
        changed = (
            getattr(state.config, parameter) != effective
            and state.pending.get(parameter) != effective
        )
        if changed:
            state.pending[parameter] = effective
            self.stats.actuations_issued += 1
        self.stats.approved += 1
        return Decision(
            approved=True,
            consumer=consumer,
            stream_id=stream_id,
            parameter=parameter,
            requested_value=value,
            effective_value=effective,
            issue_actuation=changed,
            reason="mediated" if effective != value else "granted",
        )

    def _restore_demand(
        self,
        state: _StreamState,
        consumer: str,
        parameter: str,
        previous: Demand | None,
    ) -> None:
        if previous is None:
            state.demands.pop((consumer, parameter), None)
        else:
            state.demands[(consumer, parameter)] = previous

    def _mediate(self, state: _StreamState, parameter: str) -> Any:
        demands = [
            d for (_, p), d in state.demands.items() if p == parameter
        ]
        policy = self.policy_for(parameter)
        return policy.resolve(demands)

    # ------------------------------------------------------------------
    # Demand lifecycle
    # ------------------------------------------------------------------
    def release_demands(
        self, consumer: str, stream_id: StreamId | None = None
    ) -> list[tuple[StreamId, str, Any]]:
        """Withdraw a consumer's demands (on exit or loss of interest).

        Returns re-mediated ``(stream, parameter, new_effective_value)``
        triples for every parameter whose effective value changed — the
        middleware should issue actuations for these (e.g. dropping a
        sensor back to a low rate once the hungry consumer leaves).
        """
        changes: list[tuple[StreamId, str, Any]] = []
        targets = (
            [stream_id] if stream_id is not None else list(self._streams)
        )
        for sid in targets:
            state = self._streams.get(sid)
            if state is None:
                continue
            parameters = {
                p
                for (c, p) in list(state.demands)
                if c == consumer
            }
            for parameter in parameters:
                del state.demands[(consumer, parameter)]
            for parameter in sorted(parameters):
                remaining = [
                    d for (_, p), d in state.demands.items() if p == parameter
                ]
                if not remaining:
                    continue
                effective = self.policy_for(parameter).resolve(remaining)
                if getattr(state.config, parameter) != effective:
                    state.pending[parameter] = effective
                    changes.append((sid, parameter, effective))
        return changes

    # ------------------------------------------------------------------
    # Configuration overview maintenance
    # ------------------------------------------------------------------
    def confirm_applied(
        self, stream_id: StreamId, parameter: str, value: Any
    ) -> None:
        """Fold a sensor acknowledgement into the believed configuration."""
        state = self._streams.get(stream_id)
        if state is None:
            return
        state.config = state.config.with_parameter(parameter, value)
        if state.pending.get(parameter) == value:
            del state.pending[parameter]

    def believed_config(self, stream_id: StreamId) -> StreamConfig:
        state = self._streams.get(stream_id)
        if state is None:
            raise RegistrationError(f"unknown stream {stream_id}")
        return state.config

    def overview(self) -> dict[StreamId, StreamConfig]:
        """The approximate configuration overview (Section 6)."""
        return {sid: state.config for sid, state in self._streams.items()}

    def pending_parameters(self, stream_id: StreamId) -> dict[str, Any]:
        """Changes issued toward the sensor but not yet acknowledged."""
        state = self._streams.get(stream_id)
        return dict(state.pending) if state is not None else {}

    def standing_demands(self, stream_id: StreamId) -> list[Demand]:
        state = self._streams.get(stream_id)
        if state is None:
            return []
        return sorted(
            state.demands.values(), key=lambda d: (d.consumer, d.parameter)
        )

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    def rpc_request_update(self, *args, **kwargs) -> Decision:
        return self.request_update(*args, **kwargs)

    def rpc_overview(self) -> dict[StreamId, StreamConfig]:
        return self.overview()

    def rpc_release_demands(self, consumer: str, stream_id=None):
        return self.release_demands(consumer, stream_id)
