"""Data streams as a first-class abstraction (Sections 2 and 5).

Garnet's defining design choice is that *streams*, not sensors or
physical artefacts, are the unit of management: "by emphasising the
importance and flexibility of the data streams, we facilitate ease of
separation of the data from the object of interest" (Section 2).

:class:`StreamDescriptor` is the middleware's bookkeeping record for one
stream — its advertised metadata, observed statistics and configuration
overview. :class:`StreamRegistry` is the shared catalogue that the
Dispatching Service, pub/sub broker, Orphanage and Resource Manager all
consult.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.streamid import StreamId
from repro.errors import RegistrationError


@dataclass(slots=True)
class StreamStatistics:
    """Running statistics maintained per stream by the fixed network."""

    messages: int = 0
    bytes: int = 0
    duplicates_dropped: int = 0
    first_seen_at: float | None = None
    last_seen_at: float | None = None
    last_sequence: int | None = None

    def observe(self, time: float, payload_bytes: int, sequence: int) -> None:
        self.messages += 1
        self.bytes += payload_bytes
        if self.first_seen_at is None:
            self.first_seen_at = time
        self.last_seen_at = time
        self.last_sequence = sequence

    @property
    def mean_rate(self) -> float:
        """Observed messages/second over the stream's lifetime (0 if unknown)."""
        if (
            self.first_seen_at is None
            or self.last_seen_at is None
            or self.messages < 2
        ):
            return 0.0
        span = self.last_seen_at - self.first_seen_at
        if span <= 0:
            return 0.0
        return (self.messages - 1) / span


@dataclass(slots=True)
class StreamDescriptor:
    """Everything the middleware knows about one data stream."""

    stream_id: StreamId
    kind: str = ""
    """Free-form advertised type tag, e.g. ``"water.level"``; consumers
    discover streams by matching on it (the payload itself stays opaque)."""

    publisher: str = ""
    """Endpoint name of the publishing consumer for derived streams;
    empty for physical sensor streams."""

    encrypted: bool = False
    attributes: dict[str, Any] = field(default_factory=dict)
    stats: StreamStatistics = field(default_factory=StreamStatistics)

    @property
    def is_derived(self) -> bool:
        return self.stream_id.is_derived


class StreamRegistry:
    """The shared catalogue of known streams.

    Streams enter the registry two ways, matching Section 4.2: they are
    *advertised* ahead of time (with metadata), or they are *detected*
    when un-configured data first arrives ("permits un-configured data
    streams to be detected") — in which case a bare descriptor is created
    and the Orphanage takes custody of the data until someone subscribes.
    """

    def __init__(self) -> None:
        self._streams: dict[StreamId, StreamDescriptor] = {}

    def __len__(self) -> int:
        return len(self._streams)

    def __contains__(self, stream_id: StreamId) -> bool:
        return stream_id in self._streams

    def advertise(
        self,
        stream_id: StreamId,
        kind: str = "",
        publisher: str = "",
        encrypted: bool = False,
        attributes: dict[str, Any] | None = None,
    ) -> StreamDescriptor:
        """Register a stream with metadata; re-advertising updates metadata."""
        stream_id.validate()
        descriptor = self._streams.get(stream_id)
        if descriptor is None:
            descriptor = StreamDescriptor(stream_id=stream_id)
            self._streams[stream_id] = descriptor
        descriptor.kind = kind or descriptor.kind
        descriptor.publisher = publisher or descriptor.publisher
        descriptor.encrypted = encrypted or descriptor.encrypted
        if attributes:
            descriptor.attributes.update(attributes)
        return descriptor

    def detect(self, stream_id: StreamId) -> StreamDescriptor:
        """Record a stream first seen as arriving data (no metadata)."""
        descriptor = self._streams.get(stream_id)
        if descriptor is None:
            descriptor = StreamDescriptor(stream_id=stream_id)
            self._streams[stream_id] = descriptor
        return descriptor

    def get(self, stream_id: StreamId) -> StreamDescriptor:
        try:
            return self._streams[stream_id]
        except KeyError as exc:
            raise RegistrationError(f"unknown stream {stream_id}") from exc

    def find(self, stream_id: StreamId) -> StreamDescriptor | None:
        return self._streams.get(stream_id)

    def remove(self, stream_id: StreamId) -> None:
        if self._streams.pop(stream_id, None) is None:
            raise RegistrationError(f"unknown stream {stream_id}")

    def all_streams(self) -> list[StreamDescriptor]:
        """All descriptors, in stable (sensor id, stream index) order."""
        return [
            self._streams[key] for key in sorted(self._streams.keys())
        ]

    def match(
        self,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
        predicate: Any = None,
    ) -> list[StreamDescriptor]:
        """Discovery query over advertised metadata (Section 3).

        ``kind`` supports a trailing ``*`` wildcard (``"water.*"``);
        ``predicate`` is an optional callable over the descriptor for
        queries the simple fields cannot express.
        """
        results = []
        for descriptor in self.all_streams():
            if sensor_id is not None and descriptor.stream_id.sensor_id != sensor_id:
                continue
            if derived is not None and descriptor.is_derived != derived:
                continue
            if kind is not None and not _kind_matches(kind, descriptor.kind):
                continue
            if predicate is not None and not predicate(descriptor):
                continue
            results.append(descriptor)
        return results


def _kind_matches(pattern: str, kind: str) -> bool:
    if pattern.endswith("*"):
        return kind.startswith(pattern[:-1])
    return kind == pattern
