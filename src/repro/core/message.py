"""The Garnet data message and its bit-exact Figure 2 codec.

Wire layout (big-endian, bit offsets as printed in Figure 2):

```
bit #    0         8                 40         56           72
         +---------+-----------------+----------+------------+----------
         | Msg     | Stream ID       | Sequence | Payload    | PAYLOAD
         | Header  | (24+8 bits)     | (16 bit) | Size (16)  | (opaque)
         +---------+-----------------+----------+------------+----------
```

Optional fields announced by header flag bits sit between the fixed
header and the payload, in this fixed order:

1. ``ACK`` → 16-bit stream-update-request acknowledgement id;
2. ``RELAYED`` → 8-bit hop count;
3. ``EXTENDED`` → TLV block: 8-bit entry count, then per entry an 8-bit
   type, 8-bit length and that many value bytes.

Section 4.3 notes that "for simplicity, we do not indicate the usual
checksums associated with the data messages" — the checksums exist in the
implementation but not the figure. :class:`MessageCodec` therefore appends
a trailing CRC-16 by default and the whole deployment shares one codec
configuration (checksums cannot be auto-detected from the bytes).

The payload is opaque: the codec moves bytes and never interprets them
(Section 4.3, "this provides a basic level of security").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.core.flags import (
    ExtensionType,
    HeaderFlags,
    PROTOCOL_VERSION,
    pack_header,
    unpack_header,
)
from repro.core.streamid import StreamId
from repro.errors import ChecksumError, CodecError, TruncatedMessageError
from repro.util.bitfields import check_range, read_uint, write_uint
from repro.util.crc import crc16_ccitt, crc16_ccitt_reference

FIXED_HEADER_BYTES = 9
MAX_SEQUENCE = (1 << 16) - 1
MAX_PAYLOAD_BYTES = (1 << 16) - 1
MAX_EXTENSION_VALUE_BYTES = 255
MAX_EXTENSIONS = 255
CHECKSUM_BYTES = 2

# Precompiled layout of the 9-byte fixed header (Figure 2): header byte,
# 32-bit stream word, 16-bit sequence, 16-bit payload size — all
# big-endian. One C-level pack/unpack replaces four Python-level
# ``write_uint``/``read_uint`` calls on the hot path.
_FIXED_HEADER = struct.Struct(">BIHH")

_F_ACK = int(HeaderFlags.ACK)
_F_FUSED = int(HeaderFlags.FUSED)
_F_RELAYED = int(HeaderFlags.RELAYED)
_F_EXTENDED = int(HeaderFlags.EXTENDED)
_F_ENCRYPTED = int(HeaderFlags.ENCRYPTED)
_VERSION_BYTE = PROTOCOL_VERSION << 5

# decode_prefix builds messages with __new__ + object.__setattr__: the
# frozen-dataclass __init__ routes every field through the same
# object.__setattr__ anyway, so this is the identical end state minus
# the argument re-binding — measurably faster on the decode hot path.
_NEW_MESSAGE = None  # bound after DataMessage is defined
_SET_FIELD = object.__setattr__

# Decoded StreamIds interned by wire word: a deployment has few distinct
# streams, so nearly every decode is a dict hit instead of a NamedTuple
# construction. Cleared wholesale if adversarial input floods it.
_STREAM_ID_CACHE: dict[int, StreamId] = {}
_STREAM_ID_CACHE_MAX = 4096


@dataclass(frozen=True, slots=True)
class DataMessage:
    """One message of a Garnet data stream (Section 4.3).

    Instances are immutable; derive variants with :func:`dataclasses.replace`
    or the ``with_*`` helpers.
    """

    stream_id: StreamId
    sequence: int
    payload: bytes = b""
    fused: bool = False
    encrypted: bool = False
    ack_request_id: int | None = None
    hop_count: int | None = None
    extensions: tuple[tuple[int, bytes], ...] = field(default_factory=tuple)
    version: int = PROTOCOL_VERSION

    @property
    def flags(self) -> HeaderFlags:
        """The header flag bits implied by the populated optional fields."""
        flags = HeaderFlags.NONE
        if self.ack_request_id is not None:
            flags |= HeaderFlags.ACK
        if self.fused:
            flags |= HeaderFlags.FUSED
        if self.hop_count is not None:
            flags |= HeaderFlags.RELAYED
        if self.extensions:
            flags |= HeaderFlags.EXTENDED
        if self.encrypted:
            flags |= HeaderFlags.ENCRYPTED
        return flags

    @property
    def is_relayed(self) -> bool:
        return self.hop_count is not None

    def with_ack(self, request_id: int) -> "DataMessage":
        """A copy acknowledging a stream update request (Section 4.3)."""
        return replace(self, ack_request_id=request_id)

    def with_relay_hop(self) -> "DataMessage":
        """A copy tagged as having travelled one more wireless hop (§8)."""
        hops = 1 if self.hop_count is None else self.hop_count + 1
        return replace(self, hop_count=hops)

    def with_extension(self, ext_type: int, value: bytes) -> "DataMessage":
        return replace(self, extensions=self.extensions + ((int(ext_type), value),))

    def with_replaced_extension(
        self, ext_type: int, value: bytes
    ) -> "DataMessage":
        """A copy where ``ext_type``'s (single) entry is replaced/added."""
        wanted = int(ext_type)
        kept = tuple(
            (etype, existing)
            for etype, existing in self.extensions
            if etype != wanted
        )
        return replace(self, extensions=kept + ((wanted, value),))

    def find_extension(self, ext_type: int) -> bytes | None:
        """The value of the first extension of ``ext_type``, if present."""
        wanted = int(ext_type)
        for etype, value in self.extensions:
            if etype == wanted:
                return value
        return None

    def find_extensions(self, ext_type: int) -> list[bytes]:
        """Every extension value of ``ext_type``, in wire order.

        Some types legitimately repeat — a message can carry several
        REQUEST_STATUS acknowledgements at once.
        """
        wanted = int(ext_type)
        return [
            value for etype, value in self.extensions if etype == wanted
        ]


_NEW_MESSAGE = DataMessage.__new__


class MessageCodec:
    """Encodes/decodes :class:`DataMessage` per the Figure 2 layout.

    Parameters
    ----------
    checksum:
        Append/verify a trailing CRC-16 (the checksums Section 4.3 elides
        from the figure). All parties in a deployment must agree.
    """

    def __init__(self, checksum: bool = True) -> None:
        self._checksum = checksum

    @property
    def uses_checksum(self) -> bool:
        return self._checksum

    def encoded_size(self, message: DataMessage) -> int:
        """The exact on-wire size of ``message`` in bytes."""
        size = FIXED_HEADER_BYTES + len(message.payload)
        if message.ack_request_id is not None:
            size += 2
        if message.hop_count is not None:
            size += 1
        if message.extensions:
            size += 1 + sum(2 + len(value) for _, value in message.extensions)
        if self._checksum:
            size += CHECKSUM_BYTES
        return size

    def encode(self, message: DataMessage) -> bytes:
        """Serialise ``message``; raises :class:`CodecError` on bad fields.

        This is the precompiled-``struct`` fast path. It produces output
        byte-identical to :meth:`encode_reference` (the validating
        field-by-field implementation, kept as the executable spec and
        property-tested against this one); any message whose fields fail
        the fast path's cheap range checks is re-encoded through the
        reference path so error types and messages stay identical too.
        """
        payload = message.payload
        extensions = message.extensions
        ack = message.ack_request_id
        hops = message.hop_count
        sensor_id, stream_index = message.stream_id
        sequence = message.sequence
        if (
            message.version != PROTOCOL_VERSION
            or sensor_id.__class__ is not int
            or stream_index.__class__ is not int
            or sequence.__class__ is not int
            or not 0 <= sensor_id <= 0xFFFFFF
            or not 0 <= stream_index <= 0xFF
            or not 0 <= sequence <= 0xFFFF
            or len(payload) > MAX_PAYLOAD_BYTES
            or len(extensions) > MAX_EXTENSIONS
        ):
            return self.encode_reference(message)
        flags = 0
        if message.fused:
            flags |= _F_FUSED
        if message.encrypted:
            flags |= _F_ENCRYPTED
        payload_size = len(payload)
        if ack is None and hops is None and not extensions:
            # Leanest (and overwhelmingly common) shape: no optional
            # fields, so the message is header + payload + CRC and we
            # can concatenate immutable bytes instead of filling a
            # preallocated bytearray.
            body = _FIXED_HEADER.pack(
                _VERSION_BYTE | flags,
                (sensor_id << 8) | stream_index,
                sequence,
                payload_size,
            ) + payload
            if self._checksum:
                return body + crc16_ccitt(body).to_bytes(2, "big")
            return body
        size = FIXED_HEADER_BYTES + payload_size
        if ack is not None:
            if ack.__class__ is not int or not 0 <= ack <= 0xFFFF:
                return self.encode_reference(message)
            flags |= _F_ACK
            size += 2
        if hops is not None:
            if hops.__class__ is not int or not 0 <= hops <= 0xFF:
                return self.encode_reference(message)
            flags |= _F_RELAYED
            size += 1
        if extensions:
            flags |= _F_EXTENDED
            size += 1 + sum(2 + len(value) for _, value in extensions)
        if self._checksum:
            size += CHECKSUM_BYTES

        buffer = bytearray(size)
        _FIXED_HEADER.pack_into(
            buffer,
            0,
            _VERSION_BYTE | flags,
            (sensor_id << 8) | stream_index,
            sequence,
            payload_size,
        )
        offset = FIXED_HEADER_BYTES
        if ack is not None:
            buffer[offset] = ack >> 8
            buffer[offset + 1] = ack & 0xFF
            offset += 2
        if hops is not None:
            buffer[offset] = hops
            offset += 1
        if extensions:
            buffer[offset] = len(extensions)
            offset += 1
            for ext_type, value in extensions:
                length = len(value)
                if (
                    ext_type.__class__ is not int
                    or not 0 <= ext_type <= 0xFF
                    or length > MAX_EXTENSION_VALUE_BYTES
                ):
                    return self.encode_reference(message)
                buffer[offset] = ext_type
                buffer[offset + 1] = length
                offset += 2
                buffer[offset : offset + length] = value
                offset += length
        buffer[offset : offset + payload_size] = payload
        offset += payload_size
        if self._checksum:
            crc = crc16_ccitt(buffer[:offset])
            buffer[offset] = crc >> 8
            buffer[offset + 1] = crc & 0xFF
        return bytes(buffer)

    def encode_reference(self, message: DataMessage) -> bytes:
        """The validating field-by-field encoder (reference semantics)."""
        if len(message.payload) > MAX_PAYLOAD_BYTES:
            raise CodecError(
                f"payload of {len(message.payload)} bytes exceeds the "
                f"16-bit size field maximum of {MAX_PAYLOAD_BYTES}"
            )
        if len(message.extensions) > MAX_EXTENSIONS:
            raise CodecError(
                f"{len(message.extensions)} extensions exceed the maximum "
                f"of {MAX_EXTENSIONS}"
            )
        buffer = bytearray()
        buffer.append(pack_header(message.version, message.flags))
        write_uint(buffer, message.stream_id.pack(), 4, "stream_id")
        write_uint(buffer, message.sequence, 2, "sequence")
        write_uint(buffer, len(message.payload), 2, "payload_size")
        if message.ack_request_id is not None:
            write_uint(buffer, message.ack_request_id, 2, "ack_request_id")
        if message.hop_count is not None:
            write_uint(buffer, message.hop_count, 1, "hop_count")
        if message.extensions:
            buffer.append(len(message.extensions))
            for ext_type, value in message.extensions:
                check_range("extension_type", ext_type, 8)
                if len(value) > MAX_EXTENSION_VALUE_BYTES:
                    raise CodecError(
                        f"extension value of {len(value)} bytes exceeds "
                        f"{MAX_EXTENSION_VALUE_BYTES}"
                    )
                buffer.append(ext_type)
                buffer.append(len(value))
                buffer.extend(value)
        buffer.extend(message.payload)
        if self._checksum:
            write_uint(
                buffer, crc16_ccitt_reference(bytes(buffer)), 2, "checksum"
            )
        return bytes(buffer)

    def decode(self, data: bytes) -> DataMessage:
        """Parse one message; raises on truncation, bad CRC or trailing bytes."""
        message, consumed = self.decode_prefix(data)
        if consumed != len(data):
            raise CodecError(
                f"{len(data) - consumed} unexpected trailing bytes after message"
            )
        return message

    def decode_prefix(self, data: bytes) -> tuple[DataMessage, int]:
        """Parse one message from the front of ``data``.

        Returns ``(message, bytes_consumed)`` so callers can unpack
        back-to-back messages from one buffer.

        Fast path: one precompiled-``struct`` unpack for the fixed
        header and ``memoryview``-based slicing, so ``data`` may be any
        bytes-like object (bytes, bytearray, memoryview) and only the
        payload and extension values are copied out. Truncated inputs
        are re-parsed through :meth:`decode_prefix_reference` so the
        error carries the same field-level diagnostics.
        """
        if type(data) is bytes:
            # bytes supports the same indexing/slicing the parse below
            # needs, and slices of it are already the bytes objects the
            # message wants — skip the memoryview entirely.
            view = data
            length = len(data)
        else:
            view = data if type(data) is memoryview else memoryview(data)
            length = view.nbytes
        if length < FIXED_HEADER_BYTES:
            return self.decode_prefix_reference(data)
        header_byte, stream_word, sequence, payload_size = (
            _FIXED_HEADER.unpack_from(view, 0)
        )
        version = header_byte >> 5
        if version != PROTOCOL_VERSION:
            raise CodecError(
                f"unsupported protocol version {version} "
                f"(expected {PROTOCOL_VERSION})"
            )
        flags = header_byte & 0x1F
        offset = FIXED_HEADER_BYTES

        ack_request_id: int | None = None
        if flags & _F_ACK:
            if offset + 2 > length:
                return self.decode_prefix_reference(data)
            ack_request_id = (view[offset] << 8) | view[offset + 1]
            offset += 2
        hop_count: int | None = None
        if flags & _F_RELAYED:
            if offset + 1 > length:
                return self.decode_prefix_reference(data)
            hop_count = view[offset]
            offset += 1
        extensions: tuple[tuple[int, bytes], ...] = ()
        if flags & _F_EXTENDED:
            if offset + 1 > length:
                return self.decode_prefix_reference(data)
            count = view[offset]
            offset += 1
            if count == 0:
                raise CodecError("EXTENDED flag set but extension count is 0")
            parsed = []
            for index in range(count):
                if offset + 2 > length:
                    return self.decode_prefix_reference(data)
                ext_type = view[offset]
                end = offset + 2 + view[offset + 1]
                offset += 2
                if end > length:
                    raise TruncatedMessageError(
                        f"extension[{index}] value truncated"
                    )
                parsed.append((ext_type, bytes(view[offset:end])))
                offset = end
            extensions = tuple(parsed)

        payload_end = offset + payload_size
        if payload_end > length:
            raise TruncatedMessageError(
                f"payload of {payload_size} bytes truncated at offset {offset}"
            )
        payload = bytes(view[offset:payload_end])
        offset = payload_end

        if self._checksum:
            if offset + 2 > length:
                return self.decode_prefix_reference(data)
            stated = (view[offset] << 8) | view[offset + 1]
            computed = crc16_ccitt(
                data[:offset] if type(data) is bytes else bytes(view[:offset])
            )
            if stated != computed:
                raise ChecksumError(
                    f"CRC mismatch: stated 0x{stated:04x}, "
                    f"computed 0x{computed:04x}"
                )
            offset += 2

        stream_id = _STREAM_ID_CACHE.get(stream_word)
        if stream_id is None:
            if len(_STREAM_ID_CACHE) >= _STREAM_ID_CACHE_MAX:
                _STREAM_ID_CACHE.clear()
            stream_id = _STREAM_ID_CACHE[stream_word] = StreamId(
                stream_word >> 8, stream_word & 0xFF
            )
        message = _NEW_MESSAGE(DataMessage)
        _SET_FIELD(message, "stream_id", stream_id)
        _SET_FIELD(message, "sequence", sequence)
        _SET_FIELD(message, "payload", payload)
        _SET_FIELD(message, "fused", bool(flags & _F_FUSED))
        _SET_FIELD(message, "encrypted", bool(flags & _F_ENCRYPTED))
        _SET_FIELD(message, "ack_request_id", ack_request_id)
        _SET_FIELD(message, "hop_count", hop_count)
        _SET_FIELD(message, "extensions", extensions)
        _SET_FIELD(message, "version", version)
        return message, offset

    def decode_reference(self, data: bytes) -> DataMessage:
        """Reference-path twin of :meth:`decode` (for property tests)."""
        message, consumed = self.decode_prefix_reference(data)
        if consumed != len(data):
            raise CodecError(
                f"{len(data) - consumed} unexpected trailing bytes after message"
            )
        return message

    def decode_prefix_reference(self, data: bytes) -> tuple[DataMessage, int]:
        """The validating field-by-field decoder (reference semantics)."""
        header_byte, offset = read_uint(data, 0, 1, "header")
        version, flags = unpack_header(header_byte)
        if version != PROTOCOL_VERSION:
            raise CodecError(
                f"unsupported protocol version {version} "
                f"(expected {PROTOCOL_VERSION})"
            )
        stream_word, offset = read_uint(data, offset, 4, "stream_id")
        sequence, offset = read_uint(data, offset, 2, "sequence")
        payload_size, offset = read_uint(data, offset, 2, "payload_size")

        ack_request_id: int | None = None
        if flags & HeaderFlags.ACK:
            ack_request_id, offset = read_uint(data, offset, 2, "ack_request_id")
        hop_count: int | None = None
        if flags & HeaderFlags.RELAYED:
            hop_count, offset = read_uint(data, offset, 1, "hop_count")
        extensions: list[tuple[int, bytes]] = []
        if flags & HeaderFlags.EXTENDED:
            count, offset = read_uint(data, offset, 1, "extension_count")
            if count == 0:
                raise CodecError("EXTENDED flag set but extension count is 0")
            for index in range(count):
                ext_type, offset = read_uint(
                    data, offset, 1, f"extension[{index}].type"
                )
                length, offset = read_uint(
                    data, offset, 1, f"extension[{index}].length"
                )
                end = offset + length
                if end > len(data):
                    raise TruncatedMessageError(
                        f"extension[{index}] value truncated"
                    )
                extensions.append((ext_type, bytes(data[offset:end])))
                offset = end

        payload_end = offset + payload_size
        if payload_end > len(data):
            raise TruncatedMessageError(
                f"payload of {payload_size} bytes truncated at offset {offset}"
            )
        payload = bytes(data[offset:payload_end])
        offset = payload_end

        if self._checksum:
            stated, new_offset = read_uint(data, offset, 2, "checksum")
            computed = crc16_ccitt_reference(bytes(data[:offset]))
            if stated != computed:
                raise ChecksumError(
                    f"CRC mismatch: stated 0x{stated:04x}, "
                    f"computed 0x{computed:04x}"
                )
            offset = new_offset

        message = DataMessage(
            stream_id=StreamId.from_word(stream_word),
            sequence=sequence,
            payload=payload,
            fused=bool(flags & HeaderFlags.FUSED),
            encrypted=bool(flags & HeaderFlags.ENCRYPTED),
            ack_request_id=ack_request_id,
            hop_count=hop_count,
            extensions=tuple(extensions),
            version=version,
        )
        return message, offset


def make_request_status_extension(request_id: int, status: int) -> bytes:
    """Encode a :data:`ExtensionType.REQUEST_STATUS` extension value."""
    check_range("request_id", request_id, 16)
    check_range("status", status, 8)
    return request_id.to_bytes(2, "big") + bytes([status])


def parse_request_status_extension(value: bytes) -> tuple[int, int]:
    """Decode a REQUEST_STATUS extension into ``(request_id, status)``."""
    if len(value) != 3:
        raise CodecError(
            f"REQUEST_STATUS extension must be 3 bytes, got {len(value)}"
        )
    return int.from_bytes(value[:2], "big"), value[2]


__all__ = [
    "CHECKSUM_BYTES",
    "DataMessage",
    "ExtensionType",
    "FIXED_HEADER_BYTES",
    "MAX_EXTENSIONS",
    "MAX_EXTENSION_VALUE_BYTES",
    "MAX_PAYLOAD_BYTES",
    "MAX_SEQUENCE",
    "MessageCodec",
    "make_request_status_extension",
    "parse_request_status_extension",
]
