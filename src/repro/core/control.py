"""Stream update requests: the control messages of Garnet's return path.

Section 4.2 describes the pathway: a consumer's request is vetted by the
Resource Manager, then "the Actuation Service next processes the request
with timestamps, and checksums, before forwarding to the message
replicator", whose transmitters broadcast it toward the target sensor.

The paper does not print the control wire format; this layout mirrors the
data format's conventions (big-endian fixed header + opaque parameter
block) and carries exactly the fields Section 4.2 names:

```
byte 0        : control header — 0b110 marker + 3-bit version (a frame's
                top bits distinguish control from data on a shared radio)
bytes 1-2     : 16-bit request id (ephemeral, Section 7 compares it to a
                RETRI transaction identifier)
bytes 3-6     : 32-bit target StreamID
byte 7        : command code
bytes 8-15    : 64-bit timestamp, microseconds of virtual time
bytes 16-17   : 16-bit parameter block length
...           : parameter block (command-specific)
last 2 bytes  : CRC-16 (always present — the Actuation Service adds it)
```
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.streamid import StreamId
from repro.errors import ChecksumError, CodecError
from repro.util.bitfields import check_range, read_uint, write_uint
from repro.util.crc import crc16_ccitt

PROTOCOL_VERSION = 1
_CONTROL_MARKER = 0b110 << 5
_MARKER_MASK = 0b111 << 5

CONTROL_FIXED_HEADER_BYTES = 18
MAX_REQUEST_ID = (1 << 16) - 1
MAX_PARAMS_BYTES = (1 << 16) - 1


class FrameKind(enum.Enum):
    """What a raw radio frame contains, judged from its first byte."""

    DATA = "data"
    CONTROL = "control"
    UNKNOWN = "unknown"


def peek_frame_kind(data: bytes) -> FrameKind:
    """Classify a frame without decoding it.

    Receive-capable sensors share one radio for both directions and use
    this to route incoming bytes to the right decoder.
    """
    if not data:
        return FrameKind.UNKNOWN
    top = data[0] & _MARKER_MASK
    if top == _CONTROL_MARKER:
        return FrameKind.CONTROL
    if (data[0] >> 5) == PROTOCOL_VERSION:
        return FrameKind.DATA
    return FrameKind.UNKNOWN


class StreamUpdateCommand(enum.IntEnum):
    """Commands a consumer may direct at a sensor's stream (Section 4.2)."""

    SET_RATE = 1
    """Change the sampling rate. Params: 32-bit rate in milli-hertz."""

    SET_MODE = 2
    """Switch operating mode (e.g. low-power vs. high-fidelity). Params: 1 byte."""

    ENABLE_STREAM = 3
    """Start producing the target internal stream. No params."""

    DISABLE_STREAM = 4
    """Stop producing the target internal stream. No params."""

    SET_PRECISION = 5
    """Change the payload quantisation. Params: 1 byte (bits per sample)."""

    PING = 6
    """Solicit an acknowledgement without changing configuration. No params."""


@dataclass(frozen=True, slots=True)
class StreamUpdateRequest:
    """A decoded control message addressed to one data stream's source."""

    request_id: int
    target: StreamId
    command: StreamUpdateCommand
    params: bytes = b""
    timestamp_us: int = 0
    version: int = PROTOCOL_VERSION

    def describe(self) -> str:
        return (
            f"request#{self.request_id} {self.command.name} -> {self.target}"
        )


class ControlCodec:
    """Encoder/decoder for :class:`StreamUpdateRequest` frames.

    Unlike :class:`repro.core.message.MessageCodec`, the CRC-16 is not
    optional: Section 4.2 states the Actuation Service always adds
    checksums to control messages.
    """

    def encode(self, request: StreamUpdateRequest) -> bytes:
        if request.version != PROTOCOL_VERSION:
            raise CodecError(
                f"unsupported control version {request.version}"
            )
        if len(request.params) > MAX_PARAMS_BYTES:
            raise CodecError(
                f"parameter block of {len(request.params)} bytes exceeds "
                f"{MAX_PARAMS_BYTES}"
            )
        buffer = bytearray()
        buffer.append(_CONTROL_MARKER | (request.version & 0b11111))
        write_uint(buffer, request.request_id, 2, "request_id")
        write_uint(buffer, request.target.pack(), 4, "target")
        write_uint(buffer, int(request.command), 1, "command")
        write_uint(buffer, request.timestamp_us, 8, "timestamp_us")
        write_uint(buffer, len(request.params), 2, "params_length")
        buffer.extend(request.params)
        write_uint(buffer, crc16_ccitt(bytes(buffer)), 2, "checksum")
        return bytes(buffer)

    def decode(self, data: bytes) -> StreamUpdateRequest:
        header, offset = read_uint(data, 0, 1, "control_header")
        if header & _MARKER_MASK != _CONTROL_MARKER:
            raise CodecError(
                f"byte 0x{header:02x} is not a control frame marker"
            )
        version = header & 0b11111
        if version != PROTOCOL_VERSION:
            raise CodecError(f"unsupported control version {version}")
        request_id, offset = read_uint(data, offset, 2, "request_id")
        target_word, offset = read_uint(data, offset, 4, "target")
        command_code, offset = read_uint(data, offset, 1, "command")
        timestamp_us, offset = read_uint(data, offset, 8, "timestamp_us")
        params_length, offset = read_uint(data, offset, 2, "params_length")
        params_end = offset + params_length
        if params_end + 2 > len(data):
            raise CodecError("control frame truncated")
        params = bytes(data[offset:params_end])
        stated, final = read_uint(data, params_end, 2, "checksum")
        computed = crc16_ccitt(bytes(data[:params_end]))
        if stated != computed:
            raise ChecksumError(
                f"control CRC mismatch: stated 0x{stated:04x}, "
                f"computed 0x{computed:04x}"
            )
        if final != len(data):
            raise CodecError(
                f"{len(data) - final} unexpected trailing bytes after frame"
            )
        try:
            command = StreamUpdateCommand(command_code)
        except ValueError as exc:
            raise CodecError(f"unknown command code {command_code}") from exc
        return StreamUpdateRequest(
            request_id=request_id,
            target=StreamId.from_word(target_word),
            command=command,
            params=params,
            timestamp_us=timestamp_us,
            version=version,
        )


# ----------------------------------------------------------------------
# Command-specific parameter codecs
# ----------------------------------------------------------------------

def encode_rate_params(rate_hz: float) -> bytes:
    """SET_RATE parameters: the rate in milli-hertz as a 32-bit integer."""
    if rate_hz < 0:
        raise CodecError(f"rate must be non-negative, got {rate_hz}")
    millihertz = round(rate_hz * 1000.0)
    check_range("rate_millihertz", millihertz, 32)
    return millihertz.to_bytes(4, "big")


def decode_rate_params(params: bytes) -> float:
    if len(params) != 4:
        raise CodecError(f"SET_RATE params must be 4 bytes, got {len(params)}")
    return int.from_bytes(params, "big") / 1000.0


def encode_mode_params(mode: int) -> bytes:
    """SET_MODE parameters: a single mode byte."""
    check_range("mode", mode, 8)
    return bytes([mode])


def decode_mode_params(params: bytes) -> int:
    if len(params) != 1:
        raise CodecError(f"SET_MODE params must be 1 byte, got {len(params)}")
    return params[0]


def encode_precision_params(bits: int) -> bytes:
    """SET_PRECISION parameters: bits per sample, 1..32."""
    if not 1 <= bits <= 32:
        raise CodecError(f"precision bits must be in [1, 32], got {bits}")
    return bytes([bits])


def decode_precision_params(params: bytes) -> int:
    if len(params) != 1:
        raise CodecError(
            f"SET_PRECISION params must be 1 byte, got {len(params)}"
        )
    bits = params[0]
    if not 1 <= bits <= 32:
        raise CodecError(f"precision bits must be in [1, 32], got {bits}")
    return bits
