"""GarnetSession: one consumer's complete connection to the middleware.

The broker, dispatcher, Resource Manager and fixed network each expose a
narrow, service-shaped API; an application previously had to thread a
token and an endpoint name through all of them in the right order. A
session folds that choreography into one object obtained from
:meth:`Garnet.connect(token) <repro.core.middleware.Garnet.connect>`:

>>> session = deployment.connect("dashboard")          # doctest: +SKIP
>>> session.on_data(lambda arrival: ...)               # doctest: +SKIP
>>> session.subscribe(kind="temperature.*")            # doctest: +SKIP
>>> session.request_update(stream, SET_RATE, 0.5)      # doctest: +SKIP

Beyond convenience, the session is the client half of the middleware's
**crash-recovery protocol** (:mod:`repro.faults`): it remembers every
subscription it installed, heartbeats the broker on a periodic task to
keep its registration lease alive, and when a heartbeat comes back
``False`` — the broker restarted from a crash with empty state, or the
lease lapsed — it re-registers, re-installs its subscriptions, and
replays any messages that fell into the Orphanage while its routes were
gone. Recoveries surface as ``resilience.*`` metrics.

:class:`~repro.core.consumer.Consumer` is implemented on top: the
session doubles as the ``runtime`` object injected at attach time (it is
a superset of the old ``ConsumerRuntime`` surface).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.cluster.link import SequenceWindow
from repro.core.control import StreamUpdateCommand
from repro.core.dispatching import INBOX as DISPATCH_INBOX
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import StreamArrival
from repro.core.message import DataMessage
from repro.core.resource import Decision
from repro.core.security import Token
from repro.core.streamid import StreamId
from repro.core.streams import StreamDescriptor
from repro.errors import SessionError, StoreError, SubscriptionError
from repro.obs.stats import RegistryBackedStats
from repro.simnet.kernel import PeriodicTask
from repro.util.ids import WrappingCounter

DataCallback = Callable[[StreamArrival], None]

#: The replay vocabulary of :meth:`GarnetSession.subscribe`.
REPLAY_MODES = ("none", "orphans", "history")


class SessionStats(RegistryBackedStats):
    """Per-session counters (prefixed ``session.<name>``)."""

    deliveries: int = 0
    published: int = 0
    heartbeats: int = 0
    heartbeat_failures: int = 0
    recoveries: int = 0
    resubscriptions: int = 0
    orphans_replayed: int = 0
    history_replayed: int = 0
    history_duplicates_dropped: int = 0
    queries: int = 0


class GarnetSession:
    """A consumer-side handle over registration, pub/sub and control.

    Obtain one from :meth:`Garnet.connect`; do not construct directly.
    The session owns its fixed-network inbox and broker registration and
    releases both on :meth:`close`.
    """

    def __init__(
        self,
        deployment: Any,
        name: str,
        token: Token,
        heartbeat_period: float | None = None,
        node: Any | None = None,
    ) -> None:
        if not name:
            raise SessionError("session name must be non-empty")
        self._deployment = deployment
        self._name = name
        self._token = token
        # The cluster BrokerNode this session is homed on (None on
        # single-broker deployments): its broker takes registrations and
        # its dispatch inbox takes publishes.
        self._node = node
        self._closed = False
        self._callbacks: list[DataCallback] = []
        # pattern per live subscription id — the re-subscription ledger
        # recovery replays after a broker restart.
        self._subscriptions: dict[int, SubscriptionPattern] = {}
        # Per-stream sequence windows primed by history replay: a live
        # delivery whose sequence the replay already served is dropped,
        # which is the gap-free/duplicate-free handover guarantee of
        # ``subscribe(replay='history')``.
        self._history_windows: dict[StreamId, SequenceWindow] = {}
        self._publisher_id: int | None = None
        self._publish_sequences: dict[int, WrappingCounter] = {}
        self.stats = SessionStats(prefix=f"session.{name}")
        metrics = deployment.metrics()
        self.stats.bind(metrics)
        # Deployment-wide recovery counters (shared across sessions).
        self._recoveries_counter = metrics.counter(
            "resilience.session_recoveries",
            help="sessions that re-registered after broker state loss",
        )
        self._resubscriptions_counter = metrics.counter(
            "resilience.session_resubscriptions",
            help="subscriptions re-installed by session recovery",
        )
        self._orphan_replay_counter = metrics.counter(
            "resilience.orphans_replayed",
            help="orphaned messages replayed to recovering sessions",
        )
        self.network.register_inbox(self.endpoint, self._deliver)
        self.broker.register_consumer(token, self.endpoint)
        self._heartbeat_task: PeriodicTask | None = None
        if heartbeat_period is not None:
            self._heartbeat_task = PeriodicTask(
                self.network.sim, heartbeat_period, self.heartbeat
            )

    # ------------------------------------------------------------------
    # Runtime surface (superset of the legacy ConsumerRuntime)
    # ------------------------------------------------------------------
    @property
    def network(self):
        return self._deployment.network

    @property
    def broker(self):
        if self._node is not None:
            return self._node.broker
        return self._deployment.broker

    @property
    def home_broker(self) -> str | None:
        """The cluster broker this session is homed on (None off-cluster)."""
        return self._node.name if self._node is not None else None

    @property
    def control(self):
        return self._deployment.control

    @property
    def metrics(self):
        return self._deployment.metrics()

    def allocate_publisher_id(self) -> int:
        return self._deployment._publisher_ids.allocate()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def token(self) -> Token:
        return self._token

    @property
    def endpoint(self) -> str:
        return f"consumer.{self._name}"

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def quarantined(self) -> bool:
        """True while QoS delivery has parked this session as a slow
        consumer (:class:`repro.qos.DeliveryManager`). Always False when
        per-consumer delivery queues are disabled."""
        delivery = self._deployment.qos.delivery
        return delivery is not None and delivery.is_quarantined(self.endpoint)

    @property
    def subscription_ids(self) -> tuple[int, ...]:
        return tuple(self._subscriptions)

    def _require_open(self) -> None:
        if self._closed:
            raise SessionError(f"session {self._name!r} is closed")

    # ------------------------------------------------------------------
    # Data delivery
    # ------------------------------------------------------------------
    def on_data(self, callback: DataCallback) -> None:
        """Register a callback for every delivered :class:`StreamArrival`."""
        if not callable(callback):
            raise SessionError(f"data callback must be callable: {callback!r}")
        self._callbacks.append(callback)

    def _deliver(self, arrival: StreamArrival) -> None:
        if self._history_windows:
            window = self._history_windows.get(arrival.message.stream_id)
            if window is not None and not window.add(
                arrival.message.sequence
            ):
                # Already served by a history replay (it was in flight
                # to the dispatcher when we read the store).
                self.stats.history_duplicates_dropped += 1
                return
        self.stats.deliveries += 1
        for callback in list(self._callbacks):
            callback(arrival)

    # ------------------------------------------------------------------
    # Discovery & subscription
    # ------------------------------------------------------------------
    def discover(
        self,
        kind: str | None = None,
        sensor_id: int | None = None,
        derived: bool | None = None,
    ) -> list[StreamDescriptor]:
        """Query the stream catalogue by advertised metadata."""
        self._require_open()
        return self.broker.discover(
            self._token, kind=kind, sensor_id=sensor_id, derived=derived
        )

    def subscribe(
        self,
        pattern: SubscriptionPattern | None = None,
        *,
        stream_id: StreamId | None = None,
        sensor_id: int | None = None,
        stream_index: int | None = None,
        kind: str | None = None,
        derived: bool | None = None,
        replay: str = "none",
    ) -> int:
        """Subscribe by explicit pattern or by pattern fields.

        ``session.subscribe(kind="temperature.*")`` and
        ``session.subscribe(SubscriptionPattern(kind="temperature.*"))``
        are equivalent; mixing both forms is an error.

        ``replay`` selects what catches the subscriber up on data that
        arrived *before* the subscription existed:

        - ``'none'`` (default) — live deliveries only, the historical
          behaviour.
        - ``'orphans'`` — the Orphanage's bounded in-memory backlog for
          matching streams is replayed into this session and released
          (what crash recovery has always done, now on demand).
        - ``'history'`` — the durable stream store replays every
          retained record for matching streams, in order, before live
          delivery continues; the handover is gap-free and
          duplicate-free (messages in flight during the replay are
          deduped by sequence). Requires ``store_enabled=True``.
        """
        self._require_open()
        if replay not in REPLAY_MODES:
            raise SubscriptionError(
                f"unknown replay mode {replay!r}; expected one of "
                f"{', '.join(REPLAY_MODES)}"
            )
        fields_given = any(
            value is not None
            for value in (stream_id, sensor_id, stream_index, kind, derived)
        )
        if pattern is not None and fields_given:
            raise SubscriptionError(
                "pass either a SubscriptionPattern or pattern fields, not both"
            )
        if pattern is None:
            pattern = SubscriptionPattern(
                stream_id=stream_id,
                sensor_id=sensor_id,
                stream_index=stream_index,
                kind=kind,
                derived=derived,
            )
        if replay == "history" and self._deployment.store is None:
            raise SubscriptionError(
                "subscribe(replay='history') requires store_enabled=True"
            )
        subscription_id = self.broker.subscribe(
            self._token, self.endpoint, pattern
        )
        self._subscriptions[subscription_id] = pattern
        if replay == "orphans":
            self._replay_orphans((pattern,))
        elif replay == "history":
            self._replay_history(pattern)
        return subscription_id

    def unsubscribe(self, subscription_id: int) -> None:
        self._require_open()
        self.broker.unsubscribe(self._token, subscription_id)
        self._subscriptions.pop(subscription_id, None)

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------
    def request_update(
        self,
        stream_id: StreamId,
        command: StreamUpdateCommand,
        value: Any = None,
        priority: int = 0,
    ) -> Decision:
        """Resource Manager approval + actuation, as this session."""
        self._require_open()
        if self._node is not None:
            # Observability only: control requests are cluster-global,
            # but count how many target streams owned elsewhere.
            self._deployment.cluster.note_control_request(
                stream_id, self._node.name
            )
        return self.control.request_update(
            consumer=self._name,
            token=self._token,
            stream_id=stream_id,
            command=command,
            value=value,
            priority=priority,
        )

    def release_demands(self, stream_id: StreamId | None = None) -> None:
        self._require_open()
        self.control.release_demands(self._name, stream_id)

    # ------------------------------------------------------------------
    # Publication (multi-level consumption)
    # ------------------------------------------------------------------
    def publish(
        self,
        stream_index: int,
        payload: bytes,
        kind: str = "",
        fused: bool = False,
        encrypted: bool = False,
        extensions: tuple[tuple[int, bytes], ...] = (),
    ) -> StreamId:
        """Publish one message on this session's derived stream."""
        self._require_open()
        stream_id = StreamId(self.ensure_publisher_id(), stream_index)
        counter = self._publish_sequences.get(stream_index)
        if counter is None:
            counter = WrappingCounter(16)
            self._publish_sequences[stream_index] = counter
            if kind:
                self.broker.advertise(
                    self._token, stream_id, kind=kind, encrypted=encrypted
                )
        message = DataMessage(
            stream_id=stream_id,
            sequence=counter.next(),
            payload=payload,
            fused=fused,
            encrypted=encrypted,
            extensions=extensions,
        )
        inbox = (
            self._node.dispatch_inbox
            if self._node is not None
            else DISPATCH_INBOX
        )
        self.network.send(
            inbox,
            StreamArrival(
                message=message,
                received_at=self.network.sim.now,
                receiver_id=-1,
            ),
        )
        self.stats.published += 1
        return stream_id

    def ensure_publisher_id(self) -> int:
        """This session's virtual-sensor id, allocated on first use.

        Ordinarily :meth:`publish` allocates lazily; the live transport
        broker calls this at handshake time so remote clients can build
        their own :class:`StreamId` values for datagram publishes.
        """
        if self._publisher_id is None:
            self._publisher_id = self.allocate_publisher_id()
        return self._publisher_id

    def adopt_publisher_id(self, value: int, *, reserved: bool = False) -> int:
        """Claim a specific publisher id (live-transport session resume).

        A broker restarted with persisted session state must hand a
        resuming client the id its published streams already carry;
        reserving it keeps the pool from re-allocating it to anyone
        else. ``reserved=True`` skips the pool claim for callers that
        already hold the reservation (the live broker reserves every
        persisted session's id at startup). Raises
        :class:`SessionError` when this session already holds a
        different id.
        """
        if self._publisher_id is not None:
            if self._publisher_id != value:
                raise SessionError(
                    f"session {self._name!r} already publishes as "
                    f"{self._publisher_id}, cannot adopt {value}"
                )
            return value
        if not reserved:
            self._deployment._publisher_ids.reserve(value)
        self._publisher_id = value
        return value

    @property
    def publisher_id(self) -> int | None:
        return self._publisher_id

    # ------------------------------------------------------------------
    # Liveness & recovery
    # ------------------------------------------------------------------
    def heartbeat(self) -> bool:
        """Renew the broker lease; recover if the broker forgot us.

        Returns True when the session's registration is intact (renewed
        or just repaired); False when the broker is down and recovery
        must wait for a future heartbeat.
        """
        if self._closed:
            return False
        if not self.broker.up:
            self.stats.heartbeat_failures += 1
            return False
        self.stats.heartbeats += 1
        if self.broker.heartbeat(self._token, self.endpoint):
            return True
        self._recover()
        return True

    def _recover(self) -> None:
        """Re-register, re-subscribe, and replay orphaned backlog."""
        self.stats.recoveries += 1
        self._recoveries_counter.inc()
        self.broker.register_consumer(self._token, self.endpoint)
        old = self._subscriptions
        self._subscriptions = {}
        for pattern in old.values():
            subscription_id = self.broker.subscribe(
                self._token, self.endpoint, pattern
            )
            self._subscriptions[subscription_id] = pattern
            self.stats.resubscriptions += 1
            self._resubscriptions_counter.inc()
        self._replay_orphans()

    def _replay_orphans(
        self, patterns: tuple[SubscriptionPattern, ...] | None = None
    ) -> int:
        """Pull matching Orphanage backlogs into this session's inbox.

        While the session's routes were missing, its streams' data fell
        through to the Orphanage; on recovery, any orphaned stream a
        current subscription matches is replayed and released.
        ``patterns`` narrows the match set — ``subscribe(replay=
        'orphans')`` passes just the new pattern; recovery passes None
        (= every live subscription).
        """
        if patterns is None:
            patterns = tuple(self._subscriptions.values())
        registry = self._deployment.registry
        orphanages = self._deployment.orphanages()
        replayed = 0
        seen: set[StreamId] = set()
        for orphanage in orphanages:
            for orphan_stream in list(orphanage.orphan_streams()):
                if orphan_stream in seen:
                    continue
                seen.add(orphan_stream)
                if not self._stream_wanted(orphan_stream, patterns, registry):
                    continue
                # An ownership handoff can leave copies of one stream's
                # backlog in several nodes' Orphanages; replay from the
                # deepest copy and release them all.
                holders = [
                    candidate
                    for candidate in orphanages
                    if orphan_stream in candidate.orphan_streams()
                ]
                best = max(
                    holders,
                    key=lambda held: held.report(
                        orphan_stream
                    ).messages_retained,
                )
                count = best.replay(orphan_stream, self.endpoint)
                for holder in holders:
                    holder.discard(orphan_stream)
                replayed += count
                self.stats.orphans_replayed += count
                self._orphan_replay_counter.inc(count)
        if replayed:
            self._deployment.invalidate_routes()
        return replayed

    @staticmethod
    def _stream_wanted(
        stream_id: StreamId,
        patterns: tuple[SubscriptionPattern, ...],
        registry: Any,
    ) -> bool:
        """Does any pattern match this stream (by descriptor or exact id)?"""
        descriptor = registry.find(stream_id)
        if descriptor is None:
            return any(
                pattern.stream_id == stream_id for pattern in patterns
            )
        return any(pattern.matches(descriptor) for pattern in patterns)

    def _replay_history(self, pattern: SubscriptionPattern) -> int:
        """Replay the durable store's retained records for one pattern.

        Records are delivered synchronously (the subscription is already
        installed, so anything published *during* the replay lands after
        it), merged across matching streams in received-at order, and
        every replayed sequence primes the per-stream dedupe window so a
        live copy that was already in flight is dropped by
        :meth:`_deliver` rather than double-delivered.
        """
        store = self._deployment.store
        registry = self._deployment.registry
        codec = self._deployment.codec
        patterns = (pattern,)
        records = []
        for stream_id in store.streams():
            if self._stream_wanted(stream_id, patterns, registry):
                records.extend(store.read(stream_id))
        # Stable sort: within one stream the store's append order is
        # preserved even when received_at ties.
        records.sort(key=lambda record: (record.received_at, record.stream_id))
        now = self.network.sim.now
        window_size = self._deployment.config.store_dedupe_window
        replayed = 0
        for record in records:
            message = codec.decode(record.frame)
            window = self._history_windows.get(record.stream_id)
            if window is None:
                window = SequenceWindow(window_size)
                self._history_windows[record.stream_id] = window
            if not window.add(message.sequence):
                continue
            arrival = StreamArrival(
                message=message,
                received_at=record.received_at,
                receiver_id=record.receiver_id,
                delivered_at=now,
            )
            replayed += 1
            self.stats.deliveries += 1
            for callback in list(self._callbacks):
                callback(arrival)
        store.stats.replays += 1
        store.stats.records_replayed += replayed
        self.stats.history_replayed += replayed
        return replayed

    # ------------------------------------------------------------------
    # Historical queries (requires store_enabled=True)
    # ------------------------------------------------------------------
    def query(
        self,
        stream_id: StreamId,
        start: float | None = None,
        end: float | None = None,
        limit: int | None = None,
    ) -> list[StreamArrival]:
        """Read one stream's retained history as decoded arrivals.

        ``start``/``end`` bound ``received_at`` inclusively (virtual
        time); ``limit`` keeps the earliest N matches. Raises
        :class:`StoreError` when the deployment has no store.
        """
        self._require_open()
        store = self._deployment.store
        if store is None:
            raise StoreError(
                "session.query() requires store_enabled=True on the "
                "deployment"
            )
        codec = self._deployment.codec
        records = store.read(stream_id, start=start, end=end, limit=limit)
        store.stats.queries += 1
        store.stats.records_queried += len(records)
        self.stats.queries += 1
        return [
            StreamArrival(
                message=codec.decode(record.frame),
                received_at=record.received_at,
                receiver_id=record.receiver_id,
                delivered_at=self.network.sim.now,
            )
            for record in records
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release demands, registration and the inbox. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.stop()
            self._heartbeat_task = None
        self.control.release_demands(self._name)
        if self.broker.up:
            try:
                self.broker.deregister_consumer(self._token, self.endpoint)
            except Exception:
                # Lease may already have been reaped; the endpoint is
                # gone either way.
                pass
        if self.network.has_inbox(self.endpoint):
            self.network.unregister_inbox(self.endpoint)
        self._subscriptions.clear()
        self._deployment._release_session(self)
