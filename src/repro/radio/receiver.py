"""A single fixed receiver at the wireless/fixed network boundary.

Each receiver independently picks up sensor transmissions in its zone,
decodes them (dropping frames that fail the CRC — the wireless medium is
allowed to corrupt nothing in this model, but replayed traces may), and
forwards two things into the fixed network:

- a :class:`~repro.core.envelopes.Reception` to the Filtering Service
  (the data path of Figure 1), and
- a :class:`~repro.core.envelopes.LocationObservation` to the Location
  Service — "location information which is inferred by the Receivers"
  (Section 4.2).

Control frames heard on the shared medium (they are broadcast toward
sensors) are counted and ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.control import FrameKind, peek_frame_kind
from repro.core.envelopes import LocationObservation, Reception
from repro.core.filtering import INBOX as FILTERING_INBOX
from repro.core.location import OBSERVATION_INBOX
from repro.core.message import MessageCodec
from repro.errors import CodecError
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.geometry import Circle, Point
from repro.simnet.wireless import RadioFrame


@dataclass(slots=True)
class ReceiverStats:
    frames: int = 0
    data_messages: int = 0
    control_overheard: int = 0
    corrupt: int = 0
    unknown: int = 0


class Receiver:
    """One antenna of the receiver array; a wireless-medium listener."""

    def __init__(
        self,
        receiver_id: int,
        position: Point,
        reception_range: float,
        network: FixedNetwork,
        codec: MessageCodec,
        filtering_inbox: str = FILTERING_INBOX,
        location_inbox: str = OBSERVATION_INBOX,
    ) -> None:
        if reception_range <= 0:
            raise ValueError("reception_range must be positive")
        self.receiver_id = receiver_id
        self._position = position
        self.reception_range = reception_range
        self._network = network
        self._codec = codec
        self._filtering_inbox = filtering_inbox
        self._location_inbox = location_inbox
        self.stats = ReceiverStats()

    @property
    def position(self) -> Point:
        return self._position

    def zone(self) -> Circle:
        """This receiver's effective reception area."""
        return Circle(self._position, self.reception_range)

    def on_radio_receive(self, frame: RadioFrame) -> None:
        self.stats.frames += 1
        kind = peek_frame_kind(frame.payload)
        if kind is FrameKind.CONTROL:
            self.stats.control_overheard += 1
            return
        if kind is FrameKind.UNKNOWN:
            self.stats.unknown += 1
            return
        try:
            message = self._codec.decode(frame.payload)
        except CodecError:
            self.stats.corrupt += 1
            return
        self.stats.data_messages += 1
        self._network.send(
            self._filtering_inbox,
            Reception(
                message=message,
                receiver_id=self.receiver_id,
                rssi=frame.rssi,
                received_at=frame.received_at,
            ),
        )
        self._network.send(
            self._location_inbox,
            LocationObservation(
                sensor_id=message.stream_id.sensor_id,
                receiver_id=self.receiver_id,
                rssi=frame.rssi,
                observed_at=frame.received_at,
            ),
        )
