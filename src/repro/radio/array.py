"""Receiver and transmitter arrays with controlled coverage overlap.

The arrays are laid out on grids over the deployment area. The key
dial for experiment E2 is the **overlap factor**: each grid cell's radio
range is the cell's circumradius multiplied by ``overlap``, so ``overlap
= 1`` just covers the cell and larger values make every point audible to
several receivers — improving reception at the cost of duplicate
deliveries, exactly the trade described in Section 4.2.
"""

from __future__ import annotations

import math

from repro.core.location import LocationService
from repro.core.message import MessageCodec
from repro.errors import ConfigurationError
from repro.radio.receiver import Receiver
from repro.radio.transmitter import Transmitter
from repro.simnet.fixednet import FixedNetwork
from repro.simnet.geometry import Circle, Rect, grid_positions
from repro.simnet.wireless import WirelessMedium


def _grid_range(area: Rect, rows: int, cols: int, overlap: float) -> float:
    """Radio range giving the requested coverage overlap for a grid."""
    cell_w = area.width / cols
    cell_h = area.height / rows
    circumradius = math.hypot(cell_w, cell_h) / 2.0
    return circumradius * overlap


class ReceiverArray:
    """A grid of receivers feeding the Filtering and Location Services."""

    def __init__(
        self,
        area: Rect,
        rows: int,
        cols: int,
        medium: WirelessMedium,
        network: FixedNetwork,
        codec: MessageCodec,
        overlap: float = 1.5,
        location_service: LocationService | None = None,
        first_receiver_id: int = 0,
    ) -> None:
        if overlap <= 0:
            raise ConfigurationError(f"overlap must be positive: {overlap}")
        reception_range = _grid_range(area, rows, cols, overlap)
        self.receivers: list[Receiver] = []
        for offset, position in enumerate(grid_positions(area, rows, cols)):
            receiver = Receiver(
                receiver_id=first_receiver_id + offset,
                position=position,
                reception_range=reception_range,
                network=network,
                codec=codec,
            )
            self.receivers.append(receiver)
            medium.attach(receiver, reception_range, static=True)
            if location_service is not None:
                location_service.register_receiver(
                    receiver.receiver_id, position
                )

    def __len__(self) -> int:
        return len(self.receivers)

    @property
    def reception_range(self) -> float:
        return self.receivers[0].reception_range if self.receivers else 0.0

    def coverage_multiplicity(self, point) -> int:
        """How many receivers can hear a transmission at ``point``."""
        return sum(
            1 for receiver in self.receivers if receiver.zone().contains(point)
        )

    def total_frames(self) -> int:
        return sum(r.stats.frames for r in self.receivers)

    def total_data_messages(self) -> int:
        return sum(r.stats.data_messages for r in self.receivers)


class TransmitterArray:
    """A grid of transmitters the Message Replicator selects among."""

    def __init__(
        self,
        area: Rect,
        rows: int,
        cols: int,
        medium: WirelessMedium,
        overlap: float = 1.5,
        first_transmitter_id: int = 0,
    ) -> None:
        if overlap <= 0:
            raise ConfigurationError(f"overlap must be positive: {overlap}")
        tx_range = _grid_range(area, rows, cols, overlap)
        self.transmitters: list[Transmitter] = []
        for offset, position in enumerate(grid_positions(area, rows, cols)):
            self.transmitters.append(
                Transmitter(
                    transmitter_id=first_transmitter_id + offset,
                    position=position,
                    tx_range=tx_range,
                    medium=medium,
                )
            )

    def __len__(self) -> int:
        return len(self.transmitters)

    def transmitter(self, transmitter_id: int) -> Transmitter:
        for candidate in self.transmitters:
            if candidate.transmitter_id == transmitter_id:
                return candidate
        raise ConfigurationError(f"unknown transmitter {transmitter_id}")

    def set_online(self, transmitter_id: int, online: bool) -> None:
        """Take one antenna out of (or back into) service."""
        self.transmitter(transmitter_id).online = online

    def online_transmitters(self) -> list[Transmitter]:
        return [t for t in self.transmitters if t.online]

    def nearest_online(self, point) -> Transmitter | None:
        """The in-service transmitter closest to ``point`` (None if none)."""
        online = self.online_transmitters()
        if not online:
            return None
        return min(
            online, key=lambda t: point.distance_to(t.position)
        )

    def select_covering(self, target: Circle) -> list[Transmitter]:
        """Transmitters whose footprint intersects the target area."""
        return [
            transmitter
            for transmitter in self.transmitters
            if transmitter.footprint().intersects(target)
        ]

    def broadcast_to_area(self, frame: bytes, target: Circle) -> int:
        """Broadcast ``frame`` from every transmitter covering ``target``.

        Returns the number of transmitters used; falls back to flooding
        from all transmitters when none covers the area (a conservative
        answer beats silently dropping a control message).
        """
        selected = self.select_covering(target)
        if not selected:
            selected = self.transmitters
        for transmitter in selected:
            transmitter.broadcast(frame)
        return len(selected)

    def broadcast_all(self, frame: bytes) -> int:
        """Flood ``frame`` from every transmitter (unknown target location)."""
        for transmitter in self.transmitters:
            transmitter.broadcast(frame)
        return len(self.transmitters)

    def total_broadcasts(self) -> int:
        return sum(t.stats.broadcasts for t in self.transmitters)
