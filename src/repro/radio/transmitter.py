"""A single fixed transmitter broadcasting control frames to sensors.

Section 4.2: "Based on the location area, the appropriate set of
Transmitters broadcast the request, whereupon it may be received by the
sensor node." The transmitter is deliberately dumb: it pushes bytes onto
the wireless medium with its configured power/footprint; all targeting
intelligence lives in the Message Replicator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.geometry import Circle, Point
from repro.simnet.wireless import WirelessMedium


@dataclass(slots=True)
class TransmitterStats:
    broadcasts: int = 0
    bytes_sent: int = 0


class Transmitter:
    """One antenna of the transmitter array."""

    def __init__(
        self,
        transmitter_id: int,
        position: Point,
        tx_range: float,
        medium: WirelessMedium,
        channel: int = 0,
    ) -> None:
        if tx_range <= 0:
            raise ValueError("tx_range must be positive")
        self.transmitter_id = transmitter_id
        self._position = position
        self.tx_range = tx_range
        self._medium = medium
        self._channel = channel
        self.stats = TransmitterStats()
        self.online = True
        """False while a fault has taken this antenna out of service; the
        Message Replicator fails over to an online alternate."""

    @property
    def position(self) -> Point:
        return self._position

    def footprint(self) -> Circle:
        """The area this transmitter's broadcasts can reach."""
        return Circle(self._position, self.tx_range)

    def broadcast(self, frame: bytes) -> int:
        """Push ``frame`` onto the medium; returns deliveries scheduled."""
        self.stats.broadcasts += 1
        self.stats.bytes_sent += len(frame)
        return self._medium.broadcast(
            self._position, frame, self.tx_range, channel=self._channel
        )
