"""Receiver and transmitter arrays: the fixed network's radio edge.

Section 4.2: receivers "are arranged such that their effective receiving
areas may overlap. Such coverage improves data reception but causes
potential duplication of data messages"; transmitters broadcast control
messages into "the expected location area of the target sensor".
"""

from repro.radio.array import ReceiverArray, TransmitterArray
from repro.radio.receiver import Receiver
from repro.radio.transmitter import Transmitter

__all__ = ["Receiver", "ReceiverArray", "Transmitter", "TransmitterArray"]
