"""Synthetic spatio-temporal scalar fields.

Sensors sample a physical field at their (possibly moving) position.
Because Garnet treats payloads as opaque bytes (Section 4.3), *any*
field exercises the middleware identically; these fields exist so the
examples and experiments produce data with realistic spatial and
temporal correlation — flood waves propagate, hotspots move, days cycle
— which in turn gives the consumer-side logic (thresholds, fusion,
state machines) something honest to react to.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Protocol

from repro.simnet.geometry import Point


class ScalarField(Protocol):
    """A scalar physical quantity over space and time."""

    def value(self, time: float, position: Point) -> float:
        ...


class UniformDiurnalField:
    """Spatially uniform with a daily sinusoid plus linear trend.

    The classic temperature field for habitat monitoring.
    """

    def __init__(
        self,
        mean: float,
        daily_amplitude: float,
        day_length: float = 86_400.0,
        trend_per_second: float = 0.0,
    ) -> None:
        if day_length <= 0:
            raise ValueError("day_length must be positive")
        self._mean = mean
        self._amplitude = daily_amplitude
        self._day = day_length
        self._trend = trend_per_second

    def value(self, time: float, position: Point) -> float:
        phase = 2.0 * math.pi * (time / self._day)
        return (
            self._mean
            + self._amplitude * math.sin(phase)
            + self._trend * time
        )


class GradientField:
    """A static linear gradient: value rises along a direction vector.

    Gives spatially distinguishable readings, so fusing sensors at
    different positions produces genuinely different inputs.
    """

    def __init__(
        self, base: float, gradient_per_metre: Point
    ) -> None:
        self._base = base
        self._gradient = gradient_per_metre

    def value(self, time: float, position: Point) -> float:
        return (
            self._base
            + position.x * self._gradient.x
            + position.y * self._gradient.y
        )


class GaussianPlumeField:
    """A moving Gaussian hotspot over a quiet background.

    Models a target crossing a surveilled area (acoustic/seismic
    intensity) or a contaminant plume. The hotspot's centre at time t is
    supplied by a callable, typically a mobility model's ``position_at``.
    """

    def __init__(
        self,
        center_at,
        peak: float,
        sigma: float,
        background: float = 0.0,
    ) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self._center_at = center_at
        self._peak = peak
        self._sigma = sigma
        self._background = background

    def value(self, time: float, position: Point) -> float:
        center = self._center_at(time)
        distance_sq = (
            (position.x - center.x) ** 2 + (position.y - center.y) ** 2
        )
        return self._background + self._peak * math.exp(
            -distance_sq / (2.0 * self._sigma * self._sigma)
        )


class RiverStageField:
    """Water level along a river, with flood waves moving downstream.

    The river is a polyline; a position's stage is determined by its
    chainage (distance along the river of the nearest point on the
    polyline). Flood waves are Gaussian pulses in chainage whose centres
    advance at the wave celerity — the physics that makes an upstream
    gauge's rise *predict* a downstream rise, which is exactly the
    structure the Super Coordinator's anticipation exploits
    (Section 6.1).
    """

    def __init__(
        self,
        course: Sequence[Point],
        base_stage: float = 1.0,
        celerity: float = 2.0,
    ) -> None:
        if len(course) < 2:
            raise ValueError("a river needs at least two course points")
        if celerity <= 0:
            raise ValueError("celerity must be positive")
        self._course = list(course)
        self._base = base_stage
        self._celerity = celerity
        self._cumulative = [0.0]
        for a, b in zip(self._course, self._course[1:]):
            self._cumulative.append(self._cumulative[-1] + a.distance_to(b))
        self._length = self._cumulative[-1]
        # (start_time, start_chainage, amplitude, sigma)
        self._waves: list[tuple[float, float, float, float]] = []

    @property
    def length(self) -> float:
        """Total course length in metres."""
        return self._length

    def add_flood_wave(
        self,
        start_time: float,
        amplitude: float,
        sigma: float = 200.0,
        start_chainage: float = 0.0,
    ) -> None:
        """Inject a flood pulse entering at ``start_chainage`` at
        ``start_time`` and travelling downstream at the celerity."""
        if amplitude < 0 or sigma <= 0:
            raise ValueError("amplitude must be >= 0 and sigma > 0")
        self._waves.append((start_time, start_chainage, amplitude, sigma))

    def chainage_of(self, position: Point) -> float:
        """Distance along the course of the nearest course point.

        Piecewise projection onto each segment, taking the global
        minimum-distance segment.
        """
        best_chainage = 0.0
        best_distance = float("inf")
        for i, (a, b) in enumerate(
            zip(self._course, self._course[1:])
        ):
            seg = b - a
            seg_len_sq = seg.x * seg.x + seg.y * seg.y
            if seg_len_sq == 0.0:
                t = 0.0
            else:
                t = (
                    (position.x - a.x) * seg.x
                    + (position.y - a.y) * seg.y
                ) / seg_len_sq
                t = min(1.0, max(0.0, t))
            nearest = Point(a.x + seg.x * t, a.y + seg.y * t)
            distance = position.distance_to(nearest)
            if distance < best_distance:
                best_distance = distance
                best_chainage = self._cumulative[i] + a.distance_to(nearest)
        return best_chainage

    def stage_at_chainage(self, time: float, chainage: float) -> float:
        stage = self._base
        for start_time, start_chainage, amplitude, sigma in self._waves:
            if time < start_time:
                continue
            wave_center = start_chainage + self._celerity * (
                time - start_time
            )
            offset = chainage - wave_center
            stage += amplitude * math.exp(
                -(offset * offset) / (2.0 * sigma * sigma)
            )
        return stage

    def value(self, time: float, position: Point) -> float:
        return self.stage_at_chainage(time, self.chainage_of(position))

    def arrival_time(self, chainage: float, wave_index: int = 0) -> float:
        """When wave ``wave_index``'s centre reaches ``chainage``."""
        start_time, start_chainage, _, _ = self._waves[wave_index]
        return start_time + (chainage - start_chainage) / self._celerity


class FieldSampler:
    """Adapts a :class:`ScalarField` to the sensor Sampler protocol."""

    def __init__(self, field: ScalarField) -> None:
        self._field = field

    def sample(self, time: float, position: Point) -> float:
        return self._field.value(time, position)
