"""Scenario workloads: the environments the paper motivates.

- :mod:`repro.workloads.fields` — synthetic spatio-temporal physical
  fields standing in for the real environments the paper's sensors
  measured (payloads are opaque to the middleware, so any field with
  realistic structure exercises the same code paths);
- :mod:`repro.workloads.watercourse` — the "management of a complex
  water course" scenario of Section 6.1, driving experiment E6;
- :mod:`repro.workloads.habitat` — habitat monitoring (Section 1 and
  the Section 7 comparison with Mainwaring et al.);
- :mod:`repro.workloads.tracking` — military-reconnaissance-style
  target tracking (Section 1) with location hints and derived streams.
"""

from repro.workloads.fields import (
    FieldSampler,
    GaussianPlumeField,
    GradientField,
    RiverStageField,
    ScalarField,
    UniformDiurnalField,
)
from repro.workloads.scenario import ScenarioBase

__all__ = [
    "FieldSampler",
    "GaussianPlumeField",
    "GradientField",
    "RiverStageField",
    "ScalarField",
    "ScenarioBase",
    "UniformDiurnalField",
]
