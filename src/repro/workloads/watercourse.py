"""The complex-water-course scenario of Section 6.1.

"We are actively developing suitable models which could be applied to the
management of a complex water course. In such a scenario, the ability of
the super coordinator to anticipate changes to water bodies and preempt
actuation requests is expected to be significant."

The build:

- a river crosses the deployment area; its stage is a
  :class:`~repro.workloads.fields.RiverStageField` with flood waves
  injected on a regular schedule, so the hydrology is periodic — the
  structure the coordinator's Markov model learns;
- **stage gauges** (sophisticated, actuatable sensors) sit at even
  chainages along the course, sampling at a low base rate;
- **drifters** (simple, transmit-only sensors) float downstream along
  the course — mobile sources whose positions must be inferred (and can
  be hinted, since any consumer knowing river geometry can place them);
- one **flood watcher** consumer per gauge classifies its stage into
  ``normal`` / ``rising`` / ``flood`` with hysteresis and reports
  transitions to the Super Coordinator;
- coordinator state actions raise a gauge's sampling rate on (observed
  or predicted) ``rising`` and drop it again on ``normal``.

Experiment E6 builds this scenario twice — reactive and predictive — and
compares, per flood wave per gauge, the interval between the watcher
entering ``rising`` and the higher rate being acknowledged by the gauge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import GarnetConfig
from repro.core.consumer import Consumer
from repro.core.control import StreamUpdateCommand
from repro.core.envelopes import StreamArrival
from repro.core.resource import StreamConfig
from repro.core.security import Permission
from repro.core.streamid import StreamId
from repro.errors import CodecError
from repro.sensors.node import SensorStreamSpec
from repro.sensors.sampling import SampleCodec
from repro.simnet.geometry import Point, Rect
from repro.simnet.mobility import PathFollower
from repro.workloads.fields import FieldSampler, RiverStageField
from repro.workloads.scenario import ScenarioBase

STAGE_RANGE = (0.0, 8.0)
BASE_RATE = 0.2
ALERT_RATE = 2.0
RISING_THRESHOLD = 1.8
FLOOD_THRESHOLD = 2.8
HYSTERESIS = 0.2


class FloodWatcher(Consumer):
    """Classifies one gauge's stage; reports transitions upstream.

    States: ``normal`` → ``rising`` → ``flood`` → ``rising`` → ``normal``
    with hysteresis so noise does not chatter at a threshold.
    """

    def __init__(
        self, name: str, stream_id: StreamId, codec: SampleCodec
    ) -> None:
        super().__init__(name)
        self._stream_id = stream_id
        self._codec = codec
        self.state = "normal"
        self.transitions: list[tuple[float, str]] = []
        self.decode_failures = 0

    def on_start(self) -> None:
        self.subscribe(stream_id=self._stream_id)
        self.report_state(self.state)

    def on_data(self, arrival: StreamArrival) -> None:
        if not arrival.message.payload:
            return  # ack-flush messages carry no sample
        try:
            sample = self._codec.decode(arrival.message.payload)
        except CodecError:
            self.decode_failures += 1
            return
        new_state = self._classify(sample.value)
        if new_state != self.state:
            self.state = new_state
            self.transitions.append((self.now, new_state))
            self.report_state(new_state, {"stage": sample.value})

    def _classify(self, stage: float) -> str:
        if self.state == "normal":
            if stage >= FLOOD_THRESHOLD:
                return "flood"
            if stage >= RISING_THRESHOLD:
                return "rising"
            return "normal"
        if self.state == "rising":
            if stage >= FLOOD_THRESHOLD:
                return "flood"
            if stage < RISING_THRESHOLD - HYSTERESIS:
                return "normal"
            return "rising"
        # flood
        if stage < FLOOD_THRESHOLD - HYSTERESIS:
            return "rising" if stage >= RISING_THRESHOLD else "normal"
        return "flood"


@dataclass(slots=True)
class ActuationRecord:
    time: float
    stream_id: StreamId
    parameter: str | None
    value: object
    success: bool


@dataclass(slots=True)
class WatercourseReport:
    """Per-run results consumed by experiment E6."""

    mode: str
    rising_entries: list[tuple[float, str]] = field(default_factory=list)
    rate_raises: list[ActuationRecord] = field(default_factory=list)
    spurious_high_rate_time: float = 0.0
    predictive_actions: int = 0
    correct_predictions: int = 0
    wrong_predictions: int = 0

    def detection_to_actuation_latencies(
        self, lead_window: float = 120.0, lag_window: float = 60.0
    ) -> list[float]:
        """Per fresh flood detection, the delay until the high-rate ack.

        Detections are ``normal -> rising`` transitions only (recede
        transitions keep the already-raised rate). Each is matched with
        the nearest successful rate raise on its gauge within
        ``[-lead_window, +lag_window]`` seconds; negative latencies mean
        the predictive coordinator had the rate raised before the state
        was even reported.
        """
        latencies: list[float] = []
        raises = sorted(self.rate_raises, key=lambda r: r.time)
        for entered_at, watcher in self.rising_entries:
            gauge_stream = _gauge_stream_of(watcher)
            candidates = [
                r
                for r in raises
                if r.stream_id == gauge_stream
                and r.success
                and entered_at - lead_window
                <= r.time
                <= entered_at + lag_window
            ]
            if candidates:
                best = min(candidates, key=lambda r: abs(r.time - entered_at))
                latencies.append(best.time - entered_at)
                raises.remove(best)
        return latencies


def _watcher_name(gauge_index: int, stream_id: StreamId) -> str:
    return f"watcher-{gauge_index}@{stream_id.sensor_id}.{stream_id.stream_index}"


def _gauge_stream_of(watcher_name: str) -> StreamId:
    _, _, address = watcher_name.partition("@")
    sensor, _, index = address.partition(".")
    return StreamId(int(sensor), int(index))


class WatercourseScenario(ScenarioBase):
    """Builds the full water-course deployment.

    Parameters
    ----------
    gauges:
        Stage gauges along the course.
    drifters:
        Floating transmit-only sensors carried downstream.
    predictive:
        Run the Super Coordinator in its anticipatory mode.
    wave_period / wave_count:
        Flood schedule; regular by design so prediction has structure
        to learn.
    """

    def __init__(
        self,
        gauges: int = 4,
        drifters: int = 2,
        predictive: bool = False,
        wave_period: float = 300.0,
        wave_count: int = 6,
        first_wave_at: float = 60.0,
        seed: int = 0,
    ) -> None:
        area = Rect(0.0, 0.0, 2000.0, 2000.0)
        config = GarnetConfig(
            area=area,
            receiver_rows=4,
            receiver_cols=4,
            transmitter_rows=2,
            transmitter_cols=2,
            predictive_coordinator=predictive,
            prediction_confidence=0.6,
            prediction_lead_fraction=0.8,
        )
        super().__init__(config=config, seed=seed)
        self.mode = "predictive" if predictive else "reactive"
        self.codec = SampleCodec(*STAGE_RANGE)
        self.report = WatercourseReport(mode=self.mode)

        # The river: a gentle diagonal with a bend.
        self.river = RiverStageField(
            course=[
                Point(100.0, 300.0),
                Point(800.0, 700.0),
                Point(1300.0, 1200.0),
                Point(1900.0, 1600.0),
            ],
            base_stage=1.0,
            celerity=2.0,
        )
        self.wave_times = [
            first_wave_at + i * wave_period for i in range(wave_count)
        ]
        # Sigma is chosen well under the inter-wave spacing (celerity x
        # period) so the stage genuinely recedes to normal between waves.
        for t in self.wave_times:
            self.river.add_flood_wave(t, amplitude=2.5, sigma=100.0)

        deployment = self.deployment
        deployment.define_sensor_type(
            "stage_gauge",
            {
                "rate_limits": "rate >= 0.05 and rate <= 10",
                "precision": "precision >= 8 and precision <= 24",
            },
            default_config=StreamConfig(rate=BASE_RATE),
        )
        deployment.define_sensor_type(
            "drifter",
            {"rate_limits": "rate >= 0.05 and rate <= 2"},
            default_config=StreamConfig(rate=0.5),
            actuatable=False,
        )

        # Gauges at even chainage along the course.
        self.gauge_nodes = []
        self.gauge_streams: list[StreamId] = []
        course_points = self._even_course_points(gauges)
        for position in course_points:
            node = deployment.add_sensor(
                "stage_gauge",
                [
                    SensorStreamSpec(
                        0,
                        FieldSampler(self.river),
                        self.codec,
                        config=StreamConfig(rate=BASE_RATE),
                        kind="water.stage",
                    )
                ],
                mobility=position,
            )
            self.gauge_nodes.append(node)
            self.gauge_streams.append(node.stream_ids()[0])

        # Drifters floating the course.
        self.drifter_nodes = []
        for i in range(drifters):
            mobility = PathFollower(
                self.river._course, speed=1.5 + 0.3 * i, loop=True
            )
            node = deployment.add_sensor(
                "drifter",
                [
                    SensorStreamSpec(
                        0,
                        FieldSampler(self.river),
                        self.codec,
                        config=StreamConfig(rate=0.5),
                        kind="water.drifter",
                    )
                ],
                mobility=mobility,
                receive_capable=False,
            )
            self.drifter_nodes.append(node)

        # One watcher per gauge.
        self.watchers: list[FloodWatcher] = []
        for index, stream_id in enumerate(self.gauge_streams):
            watcher = FloodWatcher(
                _watcher_name(index, stream_id), stream_id, self.codec
            )
            deployment.add_consumer(
                watcher, permissions=Permission.trusted_consumer()
            )
            self.watchers.append(watcher)

        self._wire_coordinator()
        deployment.control.add_actuation_observer(self._on_actuation)

    # ------------------------------------------------------------------
    def _even_course_points(self, count: int) -> list[Point]:
        follower = PathFollower(self.river._course, speed=1.0)
        length = self.river.length
        return [
            follower.position_at(length * (i + 0.5) / count)
            for i in range(count)
        ]

    def _wire_coordinator(self) -> None:
        deployment = self.deployment
        coordinator = deployment.coordinator
        system_token = deployment.issue_token(
            "coordinator", Permission.trusted_consumer()
        )

        def set_rate(consumer: str, rate: float) -> None:
            stream_id = _gauge_stream_of(consumer)
            deployment.control.request_update(
                consumer="coordinator",
                stream_id=stream_id,
                command=StreamUpdateCommand.SET_RATE,
                value=rate,
                priority=10,
                token=system_token,
            )

        coordinator.register_state_action(
            "rising", lambda consumer: set_rate(consumer, ALERT_RATE)
        )
        coordinator.register_state_action(
            "flood", lambda consumer: set_rate(consumer, ALERT_RATE)
        )
        coordinator.register_state_action(
            "normal", lambda consumer: set_rate(consumer, BASE_RATE)
        )

    def _on_actuation(self, stream_id, parameter, value, success) -> None:
        record = ActuationRecord(
            time=self.sim.now,
            stream_id=stream_id,
            parameter=parameter,
            value=value,
            success=success,
        )
        if parameter == "rate" and value == ALERT_RATE:
            self.report.rate_raises.append(record)

    # ------------------------------------------------------------------
    def run(self, duration: float) -> WatercourseReport:  # type: ignore[override]
        self.deployment.run(duration)
        self._collect()
        return self.report

    def _collect(self) -> None:
        for watcher in self.watchers:
            previous = "normal"
            for time, state in watcher.transitions:
                if state == "rising" and previous == "normal":
                    self.report.rising_entries.append((time, watcher.name))
                previous = state
        coordinator_stats = self.deployment.coordinator.stats
        self.report.predictive_actions = coordinator_stats.predictive_actions
        self.report.correct_predictions = (
            coordinator_stats.correct_predictions
        )
        self.report.wrong_predictions = coordinator_stats.wrong_predictions
        self.report.rising_entries.sort()
