"""Habitat monitoring: heterogeneous sensors, queries, and the Orphanage.

The paper motivates WSNs with environmental monitoring (Section 1) and
compares against the Great Duck Island-style deployment of Mainwaring et
al. (Section 7). This scenario reproduces the setting over Garnet:

- a population of **simple motes** (transmit-only — no actuation, the
  degenerate sensors Garnet must accommodate) reporting temperature;
- a few **weather stations** (sophisticated, two streams: temperature
  and humidity) that *can* be reconfigured;
- a **gateway consumer** that ingests everything into the
  database-centric baseline's :class:`SensorDatabase`, so E9 can compare
  what each access model supports on identical data;
- humidity streams deliberately left unsubscribed at first, landing in
  the **Orphanage**; a late "ecologist" consumer subscribes afterwards
  and replays the retained backlog — the paper's un-configured-data
  story end to end.
"""

from __future__ import annotations

from repro.baselines.database_centric import SensorDatabase
from repro.core.config import GarnetConfig
from repro.core.consumer import Consumer
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import StreamArrival
from repro.core.operators import CollectingConsumer, WindowAggregator
from repro.core.resource import StreamConfig
from repro.errors import CodecError
from repro.sensors.node import SensorStreamSpec
from repro.sensors.sampling import GaussianNoiseSampler, SampleCodec
from repro.simnet.geometry import Point, Rect
from repro.workloads.fields import (
    FieldSampler,
    GradientField,
    UniformDiurnalField,
)
from repro.workloads.scenario import ScenarioBase

TEMP_RANGE = (-10.0, 45.0)
HUMIDITY_RANGE = (0.0, 100.0)


class GatewayConsumer(Consumer):
    """Bridges Garnet streams into the database-centric baseline."""

    def __init__(
        self, name: str, database: SensorDatabase, codec: SampleCodec
    ) -> None:
        super().__init__(name)
        self._database = database
        self._codec = codec
        self.decode_failures = 0

    def on_start(self) -> None:
        self.subscribe(SubscriptionPattern(kind="habitat.temperature"))

    def on_data(self, arrival: StreamArrival) -> None:
        if not arrival.message.payload:
            return
        try:
            sample = self._codec.decode(arrival.message.payload)
        except CodecError:
            self.decode_failures += 1
            return
        self._database.insert(
            str(arrival.message.stream_id),
            sample.time_seconds,
            sample.value,
        )


class HabitatScenario(ScenarioBase):
    """Builds the habitat-monitoring deployment."""

    def __init__(
        self,
        motes: int = 12,
        stations: int = 3,
        day_length: float = 600.0,
        seed: int = 0,
    ) -> None:
        area = Rect(0.0, 0.0, 500.0, 500.0)
        config = GarnetConfig(
            area=area,
            receiver_rows=3,
            receiver_cols=3,
            orphanage_backlog=512,
        )
        super().__init__(config=config, seed=seed)
        self.temp_codec = SampleCodec(*TEMP_RANGE)
        self.humidity_codec = SampleCodec(*HUMIDITY_RANGE)
        self.temperature_field = UniformDiurnalField(
            mean=18.0, daily_amplitude=8.0, day_length=day_length
        )
        self.humidity_field = GradientField(
            base=55.0, gradient_per_metre=Point(0.02, 0.01)
        )
        deployment = self.deployment

        deployment.define_sensor_type(
            "mote",
            {"rate_limits": "rate <= 1"},
            default_config=StreamConfig(rate=0.5, precision=12),
            actuatable=False,
        )
        deployment.define_sensor_type(
            "weather_station",
            {
                "rate_limits": "rate >= 0.1 and rate <= 5",
                "modes": "mode in {0, 1, 2}",
            },
            default_config=StreamConfig(rate=1.0, mode=0),
        )

        noise_rng = self.sim.fork_rng()
        self.mote_nodes = []
        for position in self.scatter_positions(motes):
            sampler = GaussianNoiseSampler(
                FieldSampler(self.temperature_field), 0.4, noise_rng
            )
            node = deployment.add_sensor(
                "mote",
                [
                    SensorStreamSpec(
                        0,
                        sampler,
                        self.temp_codec,
                        config=StreamConfig(rate=0.5, precision=12),
                        kind="habitat.temperature",
                    )
                ],
                mobility=position,
                receive_capable=False,
            )
            self.mote_nodes.append(node)

        self.station_nodes = []
        for position in self.scatter_positions(stations):
            node = deployment.add_sensor(
                "weather_station",
                [
                    SensorStreamSpec(
                        0,
                        FieldSampler(self.temperature_field),
                        self.temp_codec,
                        config=StreamConfig(rate=1.0),
                        kind="habitat.temperature",
                    ),
                    SensorStreamSpec(
                        1,
                        FieldSampler(self.humidity_field),
                        self.humidity_codec,
                        config=StreamConfig(rate=0.5),
                        kind="habitat.humidity",
                    ),
                ],
                mobility=position,
            )
            self.station_nodes.append(node)

        # Applications.
        self.database = SensorDatabase()
        self.gateway = GatewayConsumer(
            "gateway", self.database, self.temp_codec
        )
        deployment.add_consumer(self.gateway)

        self.climatologist = WindowAggregator(
            "climatologist",
            SubscriptionPattern(kind="habitat.temperature"),
            window=10,
            aggregate="mean",
            input_codec=self.temp_codec,
            output_codec=self.temp_codec,
            output_kind="habitat.temperature.smoothed",
        )
        deployment.add_consumer(self.climatologist)

        self.ecologist: CollectingConsumer | None = None

    # ------------------------------------------------------------------
    def orphaned_humidity_messages(self) -> int:
        """Humidity data held by the Orphanage (nobody subscribed yet)."""
        total = 0
        for stream_id in self.deployment.orphanage.orphan_streams():
            report = self.deployment.orphanage.report(stream_id)
            if report is not None and stream_id.stream_index == 1:
                total += report.messages_seen
        return total

    def admit_ecologist(self, replay: bool = True) -> CollectingConsumer:
        """The late subscriber to humidity data; optionally replays the
        Orphanage backlog so no retained data is lost."""
        if self.ecologist is not None:
            return self.ecologist
        self.ecologist = CollectingConsumer(
            "ecologist",
            SubscriptionPattern(kind="habitat.humidity"),
            self.humidity_codec,
        )
        self.deployment.add_consumer(self.ecologist)
        if replay:
            orphanage = self.deployment.orphanage
            for stream_id in list(orphanage.orphan_streams()):
                if stream_id.stream_index == 1:
                    orphanage.replay(stream_id, self.ecologist.endpoint)
                    orphanage.discard(stream_id)
        self.deployment.dispatcher.invalidate_routes()
        return self.ecologist
