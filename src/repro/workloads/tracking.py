"""Target tracking: the military-reconnaissance workload of Section 1.

A target crosses the surveilled area; a grid of acoustic sensors reports
the received intensity of a Gaussian plume centred on the target. The
consumer graph is genuinely multi-level (Section 6's hierarchy):

1. **TrackerConsumer** (level 1) subscribes to every acoustic stream,
   keeps the latest intensity per sensor, estimates the target position
   as the intensity-weighted centroid of the hottest sensors, and
   publishes a derived ``track`` stream;
2. **AlertConsumer** (level 2) subscribes to the derived track stream
   only, raising an alert state with the Super Coordinator whenever the
   estimate enters a restricted zone;
3. on alert, a coordinator action boosts the sampling rate of the
   sensors nearest the estimate — closing the full sense → infer →
   actuate loop the architecture exists for.

The tracker also demonstrates location hints (Section 5): it knows where
its *mobile patrol sensor* is (it computes the patrol route), so it
feeds that knowledge to the Location Service, improving estimates for a
sensor whose radio-only localisation is poor.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.core.config import GarnetConfig
from repro.core.consumer import Consumer
from repro.core.control import StreamUpdateCommand
from repro.core.dispatching import SubscriptionPattern
from repro.core.envelopes import StreamArrival
from repro.core.resource import StreamConfig
from repro.core.security import Permission
from repro.core.streamid import StreamId
from repro.errors import CodecError
from repro.sensors.node import SensorStreamSpec
from repro.sensors.sampling import SampleCodec
from repro.simnet.geometry import Circle, Point, Rect, grid_positions
from repro.simnet.mobility import PathFollower
from repro.workloads.fields import FieldSampler, GaussianPlumeField
from repro.workloads.scenario import ScenarioBase

INTENSITY_RANGE = (0.0, 100.0)
TRACK_STRUCT = struct.Struct(">ddd")  # x, y, confidence


@dataclass(slots=True)
class TrackPoint:
    time: float
    x: float
    y: float
    confidence: float


class TrackerConsumer(Consumer):
    """Level-1 consumer: fuses acoustic intensities into a track stream."""

    def __init__(
        self,
        name: str,
        codec: SampleCodec,
        sensor_positions: dict[int, Point],
        detection_threshold: float = 5.0,
        top_k: int = 4,
    ) -> None:
        super().__init__(name)
        self._codec = codec
        self._positions = sensor_positions
        self._threshold = detection_threshold
        self._top_k = top_k
        self._latest: dict[int, float] = {}
        self.track: list[TrackPoint] = []
        self.decode_failures = 0

    def on_start(self) -> None:
        self.subscribe(SubscriptionPattern(kind="acoustic.intensity"))

    def on_data(self, arrival: StreamArrival) -> None:
        if not arrival.message.payload:
            return
        try:
            sample = self._codec.decode(arrival.message.payload)
        except CodecError:
            self.decode_failures += 1
            return
        sensor_id = arrival.message.stream_id.sensor_id
        if sensor_id not in self._positions:
            return
        self._latest[sensor_id] = sample.value
        self._re_estimate(sample.time_seconds)

    def _re_estimate(self, time: float) -> None:
        hot = sorted(
            (
                (value, sensor_id)
                for sensor_id, value in self._latest.items()
                if value >= self._threshold
            ),
            reverse=True,
        )[: self._top_k]
        if len(hot) < 2:
            return
        total = sum(value for value, _ in hot)
        x = sum(self._positions[sid].x * v for v, sid in hot) / total
        y = sum(self._positions[sid].y * v for v, sid in hot) / total
        spread = math.sqrt(
            sum(
                v
                * (
                    (self._positions[sid].x - x) ** 2
                    + (self._positions[sid].y - y) ** 2
                )
                for v, sid in hot
            )
            / total
        )
        point = TrackPoint(time=time, x=x, y=y, confidence=spread)
        self.track.append(point)
        self.publish(
            0,
            TRACK_STRUCT.pack(x, y, spread),
            kind="tracking.track",
            fused=True,
        )

    def estimate_error(self, truth_at) -> list[float]:
        """Distance between each track point and ground truth."""
        return [
            Point(p.x, p.y).distance_to(truth_at(p.time))
            for p in self.track
        ]


class AlertConsumer(Consumer):
    """Level-2 consumer: watches the derived track for zone intrusions."""

    def __init__(self, name: str, restricted: Circle) -> None:
        super().__init__(name)
        self._restricted = restricted
        self.state = "clear"
        self.alerts: list[float] = []
        self.last_estimate: Point | None = None

    def on_start(self) -> None:
        self.subscribe(SubscriptionPattern(kind="tracking.track"))
        self.report_state(self.state)

    def on_data(self, arrival: StreamArrival) -> None:
        x, y, _ = TRACK_STRUCT.unpack(arrival.message.payload)
        self.last_estimate = Point(x, y)
        inside = self._restricted.contains(self.last_estimate)
        new_state = "intrusion" if inside else "clear"
        if new_state != self.state:
            self.state = new_state
            if new_state == "intrusion":
                self.alerts.append(self.now)
            self.report_state(new_state, {"x": x, "y": y})


class TrackingScenario(ScenarioBase):
    """Builds the reconnaissance deployment."""

    def __init__(
        self,
        grid: int = 4,
        target_speed: float = 6.0,
        patrol: bool = True,
        seed: int = 0,
    ) -> None:
        area = Rect(0.0, 0.0, 800.0, 800.0)
        config = GarnetConfig(
            area=area, receiver_rows=3, receiver_cols=3
        )
        super().__init__(config=config, seed=seed)
        self.codec = SampleCodec(*INTENSITY_RANGE)
        deployment = self.deployment

        # The target crosses the area diagonally, with a dog-leg.
        self.target = PathFollower(
            [
                Point(0.0, 100.0),
                Point(400.0, 450.0),
                Point(800.0, 650.0),
            ],
            speed=target_speed,
        )
        self.intensity_field = GaussianPlumeField(
            center_at=self.target.position_at,
            peak=90.0,
            sigma=120.0,
            background=0.5,
        )

        deployment.define_sensor_type(
            "acoustic",
            {"rate_limits": "rate >= 0.1 and rate <= 10"},
            default_config=StreamConfig(rate=1.0),
        )

        self.sensor_positions: dict[int, Point] = {}
        self.sensor_nodes = []
        for position in grid_positions(area, grid, grid):
            node = deployment.add_sensor(
                "acoustic",
                [
                    SensorStreamSpec(
                        0,
                        FieldSampler(self.intensity_field),
                        self.codec,
                        config=StreamConfig(rate=1.0),
                        kind="acoustic.intensity",
                    )
                ],
                mobility=position,
            )
            self.sensor_nodes.append(node)
            self.sensor_positions[node.sensor_id] = position

        # Optional mobile patrol sensor whose position the tracker knows.
        self.patrol_node = None
        self.patrol_route = None
        if patrol:
            self.patrol_route = PathFollower(
                [
                    Point(100.0, 700.0),
                    Point(700.0, 700.0),
                    Point(700.0, 100.0),
                    Point(100.0, 100.0),
                ],
                speed=4.0,
                loop=True,
            )
            self.patrol_node = deployment.add_sensor(
                "acoustic",
                [
                    SensorStreamSpec(
                        0,
                        FieldSampler(self.intensity_field),
                        self.codec,
                        config=StreamConfig(rate=1.0),
                        kind="acoustic.intensity",
                    )
                ],
                mobility=self.patrol_route,
            )
            self.sensor_positions[self.patrol_node.sensor_id] = Point(
                100.0, 700.0
            )

        # Consumer graph.
        self.tracker = TrackerConsumer(
            "tracker", self.codec, self.sensor_positions
        )
        deployment.add_consumer(
            self.tracker, permissions=Permission.trusted_consumer()
        )
        self.alerting = AlertConsumer(
            "alerting", Circle(Point(400.0, 450.0), 150.0)
        )
        deployment.add_consumer(
            self.alerting, permissions=Permission.trusted_consumer()
        )
        self._wire_coordinator()
        if patrol:
            self._start_patrol_hints()

    # ------------------------------------------------------------------
    def _wire_coordinator(self) -> None:
        deployment = self.deployment
        token = deployment.issue_token(
            "coordinator", Permission.trusted_consumer()
        )

        def boost_nearby(consumer: str) -> None:
            estimate = self.alerting.last_estimate
            if estimate is None:
                return
            nearest = sorted(
                self.sensor_positions.items(),
                key=lambda item: item[1].distance_to(estimate),
            )[:3]
            for sensor_id, _ in nearest:
                deployment.control.request_update(
                    consumer="coordinator",
                    stream_id=StreamId(sensor_id, 0),
                    command=StreamUpdateCommand.SET_RATE,
                    value=5.0,
                    priority=10,
                    token=token,
                )

        deployment.coordinator.register_state_action(
            "intrusion", boost_nearby
        )

    def _start_patrol_hints(self) -> None:
        """The tracker hints the patrol sensor's (known) position."""
        assert self.patrol_node is not None and self.patrol_route is not None
        node = self.patrol_node
        route = self.patrol_route

        def hint() -> None:
            position = route.position_at(self.sim.now)
            self.sensor_positions[node.sensor_id] = position
            self.tracker.supply_hint(
                node.sensor_id, position.x, position.y, 15.0
            )

        from repro.simnet.kernel import PeriodicTask

        self._hint_task = PeriodicTask(self.sim, 5.0, hint, start_delay=1.0)

    # ------------------------------------------------------------------
    def truth_at(self, time: float) -> Point:
        return self.target.position_at(time)

    def tracking_errors(self) -> list[float]:
        return self.tracker.estimate_error(self.truth_at)
