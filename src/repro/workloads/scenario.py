"""Common plumbing for scenario workloads."""

from __future__ import annotations

import random

from repro.core.config import GarnetConfig
from repro.core.middleware import Garnet
from repro.sensors.node import SensorNode, SensorStreamSpec
from repro.sensors.sampling import SampleCodec
from repro.simnet.geometry import Point, Rect
from repro.simnet.mobility import MobilityModel
from repro.workloads.fields import FieldSampler, ScalarField


class ScenarioBase:
    """A deployment plus the handles a scenario's experiment needs.

    Subclasses populate ``self.deployment`` and whatever scenario-
    specific attributes their experiment reads, then callers drive
    ``run(duration)``.
    """

    def __init__(
        self, config: GarnetConfig | None = None, seed: int = 0
    ) -> None:
        self.deployment = Garnet(config=config, seed=seed)
        self.seed = seed

    @property
    def sim(self):
        return self.deployment.sim

    def run(self, duration: float) -> None:
        self.deployment.run(duration)

    # ------------------------------------------------------------------
    # Deployment helpers shared by the concrete scenarios
    # ------------------------------------------------------------------
    def scatter_positions(
        self, count: int, area: Rect | None = None
    ) -> list[Point]:
        """Uniformly random positions, deterministic under the seed."""
        area = area or self.deployment.config.area
        rng = random.Random(f"scatter/{self.seed}")
        return [
            Point(
                rng.uniform(area.x_min, area.x_max),
                rng.uniform(area.y_min, area.y_max),
            )
            for _ in range(count)
        ]

    def add_field_sensor(
        self,
        type_name: str,
        field: ScalarField,
        codec: SampleCodec,
        kind: str,
        mobility: MobilityModel | Point,
        rate: float = 1.0,
        receive_capable: bool = True,
        stream_index: int = 0,
    ) -> SensorNode:
        """Deploy one single-stream sensor sampling ``field``."""
        from repro.core.resource import StreamConfig

        spec = SensorStreamSpec(
            stream_index=stream_index,
            sampler=FieldSampler(field),
            codec=codec,
            config=StreamConfig(rate=rate),
            kind=kind,
        )
        return self.deployment.add_sensor(
            type_name,
            [spec],
            mobility=mobility,
            receive_capable=receive_capable,
        )
